"""Tests for simulated workers and the crowdsourcing simulator."""

import numpy as np
import pytest

from repro import (
    CrowdSimulator,
    EAIAssigner,
    MaxEntropyAssigner,
    SimulatedWorker,
    TDHModel,
    Vote,
    make_birthplaces,
)
from repro.crowd import make_amt_panel, make_human_panel, make_worker_pool


@pytest.fixture(scope="module")
def dataset():
    return make_birthplaces(size=120, seed=7)


class TestSimulatedWorker:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            SimulatedWorker("w", p_exact=1.5)
        with pytest.raises(ValueError):
            SimulatedWorker("w", p_exact=0.8, p_generalize=0.4)

    def test_perfect_worker_always_correct(self, dataset):
        worker = SimulatedWorker("w", p_exact=1.0)
        rng = np.random.default_rng(0)
        from repro.eval.metrics import effective_truth

        for obj in dataset.objects[:30]:
            answer = worker.answer(dataset, obj, rng)
            expected = effective_truth(dataset, obj, dataset.gold[obj])
            if expected is not None:
                assert answer == expected

    def test_answers_are_candidates(self, dataset):
        worker = SimulatedWorker("w", p_exact=0.0)
        rng = np.random.default_rng(0)
        for obj in dataset.objects[:30]:
            assert worker.answer(dataset, obj, rng) in dataset.candidates(obj)

    def test_empirical_accuracy_matches_p(self, dataset):
        worker = SimulatedWorker("w", p_exact=0.8)
        rng = np.random.default_rng(1)
        from repro.eval.metrics import effective_truth

        hits = trials = 0
        for _ in range(10):
            for obj in dataset.objects:
                expected = effective_truth(dataset, obj, dataset.gold[obj])
                if expected is None or len(dataset.candidates(obj)) < 2:
                    continue
                trials += 1
                hits += worker.answer(dataset, obj, rng) == expected
        # p_exact plus the chance of a random hit keeps this near ~0.85.
        assert hits / trials > 0.75

    def test_generalizing_worker_answers_ancestors(self, dataset):
        worker = SimulatedWorker("w", p_exact=0.0, p_generalize=1.0)
        rng = np.random.default_rng(2)
        hierarchy = dataset.hierarchy
        from repro.eval.metrics import effective_truth

        generalized = 0
        for obj in dataset.objects:
            truth = effective_truth(dataset, obj, dataset.gold[obj])
            if truth is None:
                continue
            answer = worker.answer(dataset, obj, rng)
            if hierarchy.is_ancestor(answer, truth):
                generalized += 1
        assert generalized > 0


class TestPanels:
    def test_pool_size_and_ids(self):
        pool = make_worker_pool(10, seed=3)
        assert len(pool) == 10
        assert len({w.worker_id for w in pool}) == 10

    def test_pool_p_within_band(self):
        pool = make_worker_pool(50, pi_p=0.75, spread=0.05, seed=3)
        assert all(0.70 <= w.p_exact <= 0.80 for w in pool)

    def test_pool_seeded_reproducible(self):
        p1 = make_worker_pool(5, seed=9)
        p2 = make_worker_pool(5, seed=9)
        assert [w.p_exact for w in p1] == [w.p_exact for w in p2]

    def test_human_panel_better_than_default(self):
        humans = make_human_panel(10, seed=1)
        default = make_worker_pool(10, seed=1)
        assert np.mean([w.p_exact for w in humans]) > np.mean(
            [w.p_exact for w in default]
        )
        assert all(w.p_generalize > 0 for w in humans)

    def test_amt_panel_mixed_quality(self):
        panel = make_amt_panel(20, seed=2)
        ps = [w.p_exact for w in panel]
        assert min(ps) < 0.5 < max(ps)


class TestSimulator:
    def test_history_round_zero_is_no_crowdsourcing(self, dataset):
        sim = CrowdSimulator(
            dataset, TDHModel(max_iter=15, tol=1e-4), MaxEntropyAssigner(),
            make_worker_pool(5, seed=3), seed=5,
        )
        history = sim.run(rounds=2, tasks_per_worker=2)
        assert history.records[0].round == 0
        assert history.records[0].answers_collected == 0

    def test_input_dataset_not_mutated(self, dataset):
        before = dataset.num_answers
        sim = CrowdSimulator(
            dataset, TDHModel(max_iter=10, tol=1e-4), MaxEntropyAssigner(),
            make_worker_pool(3, seed=3), seed=5,
        )
        sim.run(rounds=2, tasks_per_worker=2)
        assert dataset.num_answers == before

    def test_answers_accumulate(self, dataset):
        sim = CrowdSimulator(
            dataset, TDHModel(max_iter=10, tol=1e-4), MaxEntropyAssigner(),
            make_worker_pool(4, seed=3), seed=5,
        )
        history = sim.run(rounds=3, tasks_per_worker=2)
        assert sim.dataset.num_answers == sum(
            r.answers_collected for r in history.records
        )

    def test_accuracy_improves_with_good_workers(self, dataset):
        sim = CrowdSimulator(
            dataset, TDHModel(max_iter=15, tol=1e-4), EAIAssigner(),
            make_worker_pool(8, pi_p=0.95, seed=3), seed=5,
        )
        history = sim.run(rounds=8, tasks_per_worker=5)
        assert history.final.accuracy >= history.records[0].accuracy

    def test_works_with_non_tdh_model(self, dataset):
        sim = CrowdSimulator(
            dataset, Vote(), MaxEntropyAssigner(), make_worker_pool(3, seed=3), seed=5
        )
        history = sim.run(rounds=2, tasks_per_worker=2)
        assert len(history.records) == 3

    def test_estimated_improvement_recorded_for_eai(self, dataset):
        sim = CrowdSimulator(
            dataset, TDHModel(max_iter=10, tol=1e-4), EAIAssigner(),
            make_worker_pool(3, seed=3), seed=5,
        )
        history = sim.run(rounds=2, tasks_per_worker=2)
        assert all(
            r.estimated_improvement is not None for r in history.records[1:]
        )

    def test_series_and_at_round(self, dataset):
        sim = CrowdSimulator(
            dataset, Vote(), MaxEntropyAssigner(), make_worker_pool(2, seed=3), seed=5
        )
        history = sim.run(rounds=3, tasks_per_worker=1)
        assert len(history.series("accuracy")) == 4
        assert history.at_round(2).round == 2
        with pytest.raises(KeyError):
            history.at_round(99)

    def test_evaluate_every(self, dataset):
        sim = CrowdSimulator(
            dataset, Vote(), MaxEntropyAssigner(), make_worker_pool(2, seed=3), seed=5
        )
        history = sim.run(rounds=4, tasks_per_worker=1, evaluate_every=2)
        assert [r.round for r in history.records] == [0, 2, 4]

    def test_seeded_runs_reproducible(self, dataset):
        def run():
            sim = CrowdSimulator(
                dataset, TDHModel(max_iter=10, tol=1e-4), MaxEntropyAssigner(),
                make_worker_pool(3, seed=3), seed=5,
            )
            return sim.run(rounds=2, tasks_per_worker=2).series("accuracy")

        assert run() == run()

"""Tests for the numeric evaluation measures (Table 6)."""

import pytest

from repro.eval import evaluate_numeric


class TestEvaluateNumeric:
    def test_perfect(self):
        report = evaluate_numeric({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0})
        assert report.mae == 0.0
        assert report.relative_error == 0.0
        assert report.num_objects == 2

    def test_mae(self):
        report = evaluate_numeric({"a": 1.5, "b": 2.0}, {"a": 1.0, "b": 3.0})
        assert report.mae == pytest.approx((0.5 + 1.0) / 2)

    def test_relative_error(self):
        report = evaluate_numeric({"a": 2.0}, {"a": 1.0})
        assert report.relative_error == pytest.approx(1.0)

    def test_zero_truth_guarded_by_epsilon(self):
        report = evaluate_numeric({"a": 0.1}, {"a": 0.0}, epsilon=0.1)
        assert report.relative_error == pytest.approx(1.0)

    def test_negative_truths(self):
        report = evaluate_numeric({"a": -1.0}, {"a": -2.0})
        assert report.mae == 1.0
        assert report.relative_error == pytest.approx(0.5)

    def test_missing_estimates_skipped(self):
        report = evaluate_numeric({"a": 1.0}, {"a": 1.0, "b": 5.0})
        assert report.num_objects == 1

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            evaluate_numeric({}, {"a": 1.0})

    def test_as_row(self):
        report = evaluate_numeric({"a": 1.0}, {"a": 1.0})
        assert set(report.as_row()) == {"MAE", "R/E"}

"""Deeper behavioural tests: each algorithm's distinguishing mechanism."""

import numpy as np
import pytest

from repro import (
    Accu,
    Docs,
    GuessLca,
    Hierarchy,
    Mdc,
    Record,
    TDHModel,
    TruthDiscoveryDataset,
)


def flat_hierarchy(*values):
    h = Hierarchy()
    for v in values:
        h.add_edge(v, h.root)
    return h


class TestAccuMechanism:
    def test_n_false_values_controls_vote_strength(self):
        """Larger assumed false-value count -> stronger votes -> sharper
        confidences for the same accuracy."""
        h = flat_hierarchy("A", "B")
        records = []
        for i in range(10):
            records.append(Record(f"o{i}", "s1", "A"))
            records.append(Record(f"o{i}", "s2", "A"))
            records.append(Record(f"o{i}", "s3", "B"))
        ds = TruthDiscoveryDataset(h, records)
        soft = Accu(max_iter=5, n_false_values=1, detect_dependence=False).fit(ds)
        sharp = Accu(max_iter=5, n_false_values=100, detect_dependence=False).fit(ds)
        soft_conf = soft.confidence("o0")["A"]
        sharp_conf = sharp.confidence("o0")["A"]
        assert sharp_conf > soft_conf

    def test_accuracy_clamped(self, small_birthplaces):
        result = Accu(max_iter=8).fit(small_birthplaces)
        assert all(0.01 <= a <= 0.99 for a in result.source_accuracy.values())


class TestDocsMechanism:
    def test_per_domain_quality_separation(self):
        """A source accurate in one domain and wrong in another must get
        different per-domain accuracies — DOCS's core claim."""
        h = Hierarchy()
        h.add_path(["USA", "NY"])
        h.add_path(["USA", "LA"])
        h.add_path(["UK", "London"])
        h.add_path(["UK", "Leeds"])
        records = []
        for i in range(12):
            # Domain USA: 'mixed' agrees with two reliable sources.
            records.append(Record(f"us{i}", "r1", "NY"))
            records.append(Record(f"us{i}", "r2", "NY"))
            records.append(Record(f"us{i}", "mixed", "NY"))
            # Domain UK: 'mixed' contradicts them.
            records.append(Record(f"uk{i}", "r1", "London"))
            records.append(Record(f"uk{i}", "r2", "London"))
            records.append(Record(f"uk{i}", "mixed", "Leeds"))
        ds = TruthDiscoveryDataset(h, records)
        result = Docs(max_iter=15).fit(ds)
        accuracy = result.domain_accuracy
        usa = accuracy[("mixed", "USA")]
        uk = accuracy[("mixed", "UK")]
        assert usa > uk + 0.2

    def test_domain_uses_majority_candidate(self):
        h = Hierarchy()
        h.add_path(["USA", "NY"])
        h.add_path(["UK", "London"])
        ds = TruthDiscoveryDataset(
            h,
            [
                Record("o", "s1", "London"),
                Record("o", "s2", "London"),
                Record("o", "s3", "NY"),
            ],
        )
        assert Docs().object_domain(ds, "o") == "UK"


class TestMdcMechanism:
    def test_difficulty_higher_for_contested_objects(self):
        """Objects where reliable claimants disagree should come out harder
        (lower inverse difficulty) than unanimous ones."""
        h = flat_hierarchy("A", "B", "C")
        records = []
        for i in range(10):  # easy: unanimous
            for s in range(4):
                records.append(Record(f"easy{i}", f"s{s}", "A"))
        for i in range(10):  # hard: 2-2 split
            records.append(Record(f"hard{i}", "s0", "B"))
            records.append(Record(f"hard{i}", "s1", "B"))
            records.append(Record(f"hard{i}", "s2", "C"))
            records.append(Record(f"hard{i}", "s3", "C"))
        ds = TruthDiscoveryDataset(h, records)
        result = Mdc(max_iter=15).fit(ds)
        easy = np.mean([result.inverse_difficulty[f"easy{i}"] for i in range(10)])
        hard = np.mean([result.inverse_difficulty[f"hard{i}"] for i in range(10)])
        assert easy > hard


class TestLcaMechanism:
    def test_guess_distribution_shapes_wrong_answers(self):
        """GuessLCA spreads dishonest mass by popularity: a claim for a
        popular value is weaker evidence than one for a rare value."""
        h = flat_hierarchy("popular", "rare", "other")
        records = []
        # Background popularity: 'popular' claimed widely on other objects.
        for i in range(20):
            records.append(Record(f"bg{i}", "s1", "popular"))
            records.append(Record(f"bg{i}", "s2", "popular"))
        # Target object: one claim each for popular and rare.
        records.append(Record("target", "s3", "popular"))
        records.append(Record("target", "s4", "rare"))
        ds = TruthDiscoveryDataset(h, records)
        result = GuessLca(max_iter=15).fit(ds)
        confidence = result.confidence("target")
        # Both sources look equally honest; the guess distribution penalises
        # the popular value (easier to guess), so 'rare' should not lose badly.
        assert confidence["rare"] >= confidence["popular"] * 0.5


class TestTdhMechanism:
    def test_alpha_skew_shifts_phi_estimates(self, small_birthplaces):
        """A prior favouring case 3 should raise the estimated wrong-claim
        probability for every source."""
        neutral = TDHModel(alpha=(3, 3, 2), max_iter=15, tol=1e-4).fit(
            small_birthplaces
        )
        cynical = TDHModel(alpha=(2, 2, 6), max_iter=15, tol=1e-4).fit(
            small_birthplaces
        )
        neutral_wrong = np.mean(
            [neutral.source_trustworthiness(s)[2] for s in small_birthplaces.sources]
        )
        cynical_wrong = np.mean(
            [cynical.source_trustworthiness(s)[2] for s in small_birthplaces.sources]
        )
        assert cynical_wrong > neutral_wrong

    def test_popularity_concentrates_worker_wrong_mass(self):
        """With Pop3, a worker echoing the popular wrong value is explained by
        case 3 more cheaply than an off-distribution wrong value."""
        from repro.inference._structures import build_structure

        h = flat_hierarchy("truth", "popular_wrong", "rare_wrong")
        records = [Record("o", f"s{i}", "popular_wrong") for i in range(8)]
        records += [Record("o", f"t{i}", "truth") for i in range(2)]
        records.append(Record("o", "u0", "rare_wrong"))
        ds = TruthDiscoveryDataset(h, records)
        structure = build_structure(ds, "o")
        psi = np.array([0.6, 0.2, 0.2])
        L = structure.worker_likelihood(psi)
        truth_col = structure.index["truth"]
        pop = structure.index["popular_wrong"]
        rare = structure.index["rare_wrong"]
        assert L[pop, truth_col] > L[rare, truth_col]

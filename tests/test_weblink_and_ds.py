"""Tests for the link-analysis family (Sums/AverageLog/Investment/Pooled/
TruthFinder) and the crowd classics (Dawid-Skene, ZenCrowd)."""

import numpy as np
import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.eval import evaluate
from repro.inference import (
    AverageLog,
    DawidSkene,
    Investment,
    PooledInvestment,
    Sums,
    TruthFinder,
    ZenCrowd,
)

ALL_EXTRA = [
    Sums,
    AverageLog,
    Investment,
    PooledInvestment,
    TruthFinder,
    DawidSkene,
    ZenCrowd,
]


@pytest.fixture(params=ALL_EXTRA, ids=lambda cls: cls.name)
def algorithm(request):
    return request.param(max_iter=15)


class TestCommonContract:
    def test_fits_all_objects(self, algorithm, table1_dataset):
        result = algorithm.fit(table1_dataset)
        assert set(result.confidences) == set(table1_dataset.objects)

    def test_confidences_normalise(self, algorithm, table1_dataset):
        result = algorithm.fit(table1_dataset)
        for obj in table1_dataset.objects:
            confidence = result.confidence(obj)
            assert sum(confidence.values()) == pytest.approx(1.0, abs=1e-6)

    def test_truth_is_candidate(self, algorithm, table1_dataset):
        result = algorithm.fit(table1_dataset)
        for obj in table1_dataset.objects:
            assert result.truth(obj) in table1_dataset.candidates(obj)

    def test_deterministic(self, algorithm, table1_dataset):
        assert (
            algorithm.fit(table1_dataset).truths()
            == algorithm.fit(table1_dataset).truths()
        )

    def test_unanimous_claims_win(self, algorithm):
        h = Hierarchy()
        for v in ("A", "B"):
            h.add_edge(v, h.root)
        records = [Record(f"o{i}", f"s{j}", "A") for i in range(4) for j in range(3)]
        records.append(Record("o0", "s9", "B"))
        ds = TruthDiscoveryDataset(h, records)
        truths = algorithm.fit(ds).truths()
        assert truths["o1"] == "A"

    def test_better_than_random_on_birthplaces(self, algorithm, small_birthplaces):
        result = algorithm.fit(small_birthplaces)
        report = evaluate(small_birthplaces, result.truths())
        assert report.accuracy > 0.5, algorithm.name


class TestLinkAnalysisSpecifics:
    def test_sums_trust_normalised(self, small_birthplaces):
        result = Sums(max_iter=10).fit(small_birthplaces)
        trust = result.trust
        assert max(trust.values()) == pytest.approx(1.0)
        assert all(t >= 0.0 for t in trust.values())

    def test_averagelog_rewards_volume(self):
        """Two equally-accurate sources: the one with more claims gets more
        trust under AverageLog (the log(n) factor)."""
        h = Hierarchy()
        for v in ("A", "B"):
            h.add_edge(v, h.root)
        records = []
        for i in range(20):
            records.append(Record(f"o{i}", "busy", "A"))
            records.append(Record(f"o{i}", "anchor", "A"))
        records.append(Record("o0", "light", "A"))
        ds = TruthDiscoveryDataset(h, records)
        result = AverageLog(max_iter=10).fit(ds)
        assert result.trust["busy"] > result.trust["light"]

    def test_investment_growth_parameter(self, small_birthplaces):
        mild = Investment(growth=1.0, max_iter=10).fit(small_birthplaces)
        sharp = Investment(growth=1.6, max_iter=10).fit(small_birthplaces)
        # Higher growth sharpens beliefs toward majority values.
        mild_entropy = np.mean(
            [(-v * np.log(np.maximum(v, 1e-12))).sum() for v in mild.confidences.values()]
        )
        sharp_entropy = np.mean(
            [(-v * np.log(np.maximum(v, 1e-12))).sum() for v in sharp.confidences.values()]
        )
        assert sharp_entropy <= mild_entropy + 0.05

    def test_truthfinder_hierarchy_reinforcement(self, table1_dataset):
        """A specific claim lends implied support to its candidate ancestors."""
        result = TruthFinder(max_iter=15).fit(table1_dataset)
        confidence = result.confidence("Statue of Liberty")
        # NY (ancestor of the claimed Liberty Island) outranks the unrelated LA.
        assert confidence["NY"] > confidence["LA"]


class TestCrowdClassics:
    def test_zencrowd_reliability_estimates(self, small_birthplaces):
        result = ZenCrowd(max_iter=10).fit(small_birthplaces)
        reliability = result.reliability
        assert all(0.0 < r < 1.0 for r in reliability.values())
        # The generator's most accurate source should rank above the least.
        assert reliability["source_2"] > reliability["source_7"]

    def test_dawid_skene_close_to_lfc(self, small_birthplaces):
        """DS and LFC share the confusion-matrix core; their accuracy should
        land in the same neighbourhood."""
        from repro import Lfc

        ds_report = evaluate(
            small_birthplaces, DawidSkene(max_iter=10).fit(small_birthplaces).truths()
        )
        lfc_report = evaluate(
            small_birthplaces, Lfc(max_iter=10).fit(small_birthplaces).truths()
        )
        assert abs(ds_report.accuracy - lfc_report.accuracy) < 0.1

"""Tests for the I/O layer (CSV / JSON round-trips in the paper's format)."""

import io

import pytest

from repro import Answer, Record, TruthDiscoveryDataset
from repro.io import (
    FormatError,
    dataset_from_json,
    dataset_to_json,
    load_dataset_csv,
    load_dataset_file,
    read_answers_csv,
    read_gold_csv,
    read_hierarchy_csv,
    read_records_csv,
    save_dataset,
    write_answers_csv,
    write_hierarchy_csv,
    write_records_csv,
    write_truths_csv,
)


class TestCsvReaders:
    def test_read_records(self):
        text = "object,source,value\no1,s1,NY\no1,s2,LA\n"
        records = read_records_csv(io.StringIO(text))
        assert records == [Record("o1", "s1", "NY"), Record("o1", "s2", "LA")]

    def test_read_records_bad_header(self):
        with pytest.raises(FormatError, match="header"):
            read_records_csv(io.StringIO("obj,src,val\na,b,c\n"))

    def test_read_records_bad_row(self):
        with pytest.raises(FormatError, match="line 2"):
            read_records_csv(io.StringIO("object,source,value\na,b\n"))

    def test_read_records_empty_file(self):
        with pytest.raises(FormatError, match="empty"):
            read_records_csv(io.StringIO(""))

    def test_read_records_skips_blank_lines(self):
        text = "object,source,value\no1,s1,NY\n\n"
        assert len(read_records_csv(io.StringIO(text))) == 1

    def test_read_answers(self):
        text = "object,worker,value\no1,w1,NY\n"
        assert read_answers_csv(io.StringIO(text)) == [Answer("o1", "w1", "NY")]

    def test_read_gold(self):
        text = "object,value\no1,NY\no2,LA\n"
        assert read_gold_csv(io.StringIO(text)) == {"o1": "NY", "o2": "LA"}

    def test_read_hierarchy_with_inferred_root(self):
        text = "child,parent\nUSA,Earth\nNY,USA\nNYC,NY\n"
        h = read_hierarchy_csv(io.StringIO(text))
        assert h.root == "Earth"
        assert h.ancestors("NYC") == ["NY", "USA"]

    def test_read_hierarchy_with_explicit_root(self):
        text = "child,parent\nUSA,Earth\nUK,Earth\n"
        h = read_hierarchy_csv(io.StringIO(text), root="Earth")
        assert set(h.children("Earth")) == {"USA", "UK"}

    def test_read_hierarchy_ambiguous_root(self):
        text = "child,parent\nNY,USA\nLondon,UK\n"
        with pytest.raises(FormatError, match="cannot infer"):
            read_hierarchy_csv(io.StringIO(text))

    def test_read_hierarchy_no_edges(self):
        with pytest.raises(FormatError, match="no edges"):
            read_hierarchy_csv(io.StringIO("child,parent\n"))


class TestCsvRoundTrip:
    def test_records_round_trip(self, table1_dataset):
        buffer = io.StringIO()
        write_records_csv(table1_dataset, buffer)
        buffer.seek(0)
        records = read_records_csv(buffer)
        assert set(records) == set(table1_dataset.iter_records())

    def test_hierarchy_round_trip(self, table1_dataset):
        buffer = io.StringIO()
        write_hierarchy_csv(table1_dataset.hierarchy, buffer)
        buffer.seek(0)
        rebuilt = read_hierarchy_csv(buffer, root=table1_dataset.hierarchy.root)
        original = table1_dataset.hierarchy
        assert set(rebuilt.non_root_nodes()) == set(original.non_root_nodes())
        for node in original.non_root_nodes():
            assert rebuilt.parent(node) == original.parent(node)

    def test_answers_round_trip(self, table1_dataset):
        ds = table1_dataset.copy()
        ds.add_answer(Answer("Big Ben", "w1", "London"))
        buffer = io.StringIO()
        write_answers_csv(ds, buffer)
        buffer.seek(0)
        assert read_answers_csv(buffer) == [Answer("Big Ben", "w1", "London")]

    def test_truths_writer(self):
        buffer = io.StringIO()
        write_truths_csv({"o1": "NY"}, buffer)
        assert buffer.getvalue().splitlines() == ["object,value", "o1,NY"]

    def test_load_dataset_csv_end_to_end(self, table1_dataset, tmp_path):
        records_path = tmp_path / "records.csv"
        hierarchy_path = tmp_path / "hierarchy.csv"
        write_records_csv(table1_dataset, records_path)
        write_hierarchy_csv(table1_dataset.hierarchy, hierarchy_path)
        gold_path = tmp_path / "gold.csv"
        write_truths_csv(table1_dataset.gold, gold_path)

        rebuilt = load_dataset_csv(
            records_path, hierarchy_path, gold=gold_path,
            root=table1_dataset.hierarchy.root, name="rebuilt",
        )
        assert set(rebuilt.objects) == set(table1_dataset.objects)
        assert rebuilt.gold == table1_dataset.gold
        # Inference works on the reloaded dataset.
        from repro import TDHModel

        result = TDHModel().fit(rebuilt)
        assert result.truth("Statue of Liberty") == "Liberty Island"


class TestJsonBundle:
    def test_round_trip(self, table1_dataset):
        ds = table1_dataset.copy()
        ds.add_answer(Answer("Big Ben", "w1", "London"))
        rebuilt = dataset_from_json(dataset_to_json(ds))
        assert set(rebuilt.objects) == set(ds.objects)
        assert rebuilt.records_for("Big Ben") == ds.records_for("Big Ben")
        assert rebuilt.answers_for("Big Ben") == {"w1": "London"}
        assert rebuilt.gold == ds.gold

    def test_invalid_json(self):
        with pytest.raises(FormatError, match="invalid JSON"):
            dataset_from_json("{not json")

    def test_missing_keys(self):
        with pytest.raises(FormatError, match="missing"):
            dataset_from_json("{}")

    def test_file_round_trip(self, table1_dataset, tmp_path):
        path = tmp_path / "bundle.json"
        save_dataset(table1_dataset, path)
        rebuilt = load_dataset_file(path)
        assert set(rebuilt.objects) == set(table1_dataset.objects)

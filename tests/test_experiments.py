"""Smoke tests for the experiment harness — every table/figure module runs at
a tiny scale and returns data with the expected shape."""

import pytest

import repro.experiments.common as common
from repro.experiments import (
    EXPERIMENTS,
    fig1_tendency,
    fig5_reliability,
    fig6_assignment,
    fig7_estimation,
    fig11_worker_quality,
    fig12_runtime,
    fig13_scaling,
    fig14_human,
    fig17_amt,
    table3_inference,
    table4_combos,
    table5_multitruth,
    table6_numeric,
)

TINY = common.ExperimentScale(
    birthplaces_size=80,
    heritages_size=60,
    heritages_sources=80,
    rounds=3,
    workers=4,
    tasks_per_worker=2,
    em_iterations=8,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(common, "FAST", TINY)


class TestRegistry:
    def test_all_experiments_registered(self):
        # 14 paper tables/figures + the extended table-3 comparison.
        assert len(EXPERIMENTS) == 15

    def test_every_experiment_has_run_and_main(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.main)


class TestFig1:
    def test_rows_per_dataset(self):
        results = fig1_tendency.run()
        assert set(results) == {"BirthPlaces", "Heritages"}
        for rows in results.values():
            assert rows
            for row in rows:
                assert 0.0 <= row["Accuracy"] <= row["GenAccuracy"] <= 1.0


class TestTable3:
    def test_all_algorithms_reported(self):
        results = table3_inference.run()
        for rows in results.values():
            assert {r["Algorithm"] for r in rows} == set(
                common.inference_factories(TINY)
            )

    def test_subset_selection(self):
        results = table3_inference.run(algorithms=["TDH", "VOTE"])
        for rows in results.values():
            assert len(rows) == 2


class TestFig5:
    def test_seven_sources_with_estimates(self):
        rows = fig5_reliability.run()
        assert len(rows) == 7
        for row in rows:
            assert 0.0 <= row["phi_s1"] <= 1.0
            assert 0.0 <= row["t(s)"] <= 1.0 + 1e-9


class TestFig6:
    def test_series_lengths(self):
        results = fig6_assignment.run()
        for data in results.values():
            rounds = data["rounds"]
            assert rounds[0] == 0
            for combo in ("TDH+EAI", "TDH+QASCA", "TDH+ME"):
                assert len(data[combo]) == len(rounds)


class TestFig7:
    def test_estimates_recorded(self):
        results = fig7_estimation.run()
        for per_assigner in results.values():
            for data in per_assigner.values():
                assert len(data["actual_pp"]) == len(data["estimated_pp"])
                assert data["mean_abs_error_pp"] >= 0.0


class TestTable4:
    def test_impossible_cells_dashed(self):
        results = table4_combos.run()
        for rows in results.values():
            by_algo = {r["Algorithm"]: r for r in rows}
            assert by_algo["VOTE"]["EAI"] == "-"
            assert by_algo["TDH"]["MB"] == "-"
            assert isinstance(by_algo["TDH"]["EAI"], float)


class TestFig8:
    def test_metrics_and_cost_saving(self):
        results = fig8_cost.run()
        for data in results.values():
            assert set(data["accuracy"]) == {
                f"{i}+{a}" for i, a in common.HEADLINE_COMBOS
            }
            assert 0.0 <= data["cost_saving"] <= 1.0


# fig8 import at module scope
from repro.experiments import fig8_cost  # noqa: E402


class TestFig11:
    def test_accuracy_grows_with_pi(self):
        results = fig11_worker_quality.run(pi_values=(0.55, 0.95))
        for data in results.values():
            series = data["TDH+EAI"]
            assert len(series) == 2
            assert series[1] >= series[0] - 0.05  # allow small noise


class TestFig12:
    def test_all_combos_timed(self):
        results = fig12_runtime.run(rounds=1)
        for rows in results.values():
            assert len(rows) == len(fig12_runtime.FIG12_COMBOS)
            for row in rows:
                assert row["Total(s)"] >= 0.0


class TestFig13:
    def test_pruning_identical_and_counted(self):
        results = fig13_scaling.run(factors=(1, 2))
        for rows in results.values():
            for row in rows:
                assert row["EAI evals (filtered)"] <= row["EAI evals (all)"]


class TestFig14:
    def test_human_panel_metrics(self):
        results = fig14_human.run(rounds=2)
        for data in results.values():
            for metric in ("accuracy", "gen_accuracy", "avg_distance"):
                assert set(data[metric]) == {
                    f"{i}+{a}" for i, a in fig14_human.COMBOS
                }


class TestFig17:
    def test_heritages_only(self):
        results = fig17_amt.run(rounds=2)
        assert set(results) == {"Heritages"}


class TestTable5:
    def test_single_and_multi_rows(self):
        results = table5_multitruth.run()
        for rows in results.values():
            kinds = {r["Kind"] for r in rows}
            assert kinds == {"Single", "Multi"}
            for row in rows:
                assert 0.0 <= row["Precision"] <= 1.0
                assert 0.0 <= row["Recall"] <= 1.0


class TestTable6:
    def test_three_attributes_six_algorithms(self):
        results = table6_numeric.run()
        assert set(results) == {"change_rate", "open_price", "eps"}
        for rows in results.values():
            assert {r["Algorithm"] for r in rows} == {
                "TDH", "LCA", "CRH", "VOTE", "CATD", "MEAN",
            }


class TestFormatting:
    def test_format_table_renders_floats_and_dashes(self):
        text = common.format_table(
            [{"A": 0.5, "B": "-"}], ["A", "B"], title="T"
        )
        assert "T" in text and "0.5000" in text and "-" in text

    def test_format_series(self):
        text = common.format_series({"x": [1.0, 2.0]}, [0, 1])
        assert "Round" in text and "1.0000" in text

"""Sharded parallel E/M: object-range shards must change *nothing*.

The contract under test (see :mod:`repro.data.sharding`) is stronger than
the 1e-8 engine-parity bar: for every shard count K and every backend, the
sharded columnar fits produce **bitwise-identical** confidences, truths,
iteration counts and per-claimant state, because per-object work never
crosses a shard boundary and cross-shard reductions run globally on
concatenated per-claim arrays in the original order. K=7 on a ~100-object
hierarchical dataset guarantees shard boundaries that split hierarchy
subtrees (objects whose candidate ancestors live in the same tree but whose
neighbours land in other shards).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.workers import make_worker_pool
from repro.data.model import Answer, Record, TruthDiscoveryDataset
from repro.data.sharding import (
    ColumnarShard,
    ColumnarShards,
    ParallelExecutor,
    parallel_plan,
    resolve_jobs,
)
from repro.datasets import make_birthplaces, make_heritages
from repro.hierarchy.tree import Hierarchy
from repro.inference import Crh, DawidSkene, Lfc, TDHModel, ZenCrowd

ALGORITHMS = {
    "TDH": lambda **kw: TDHModel(max_iter=10, use_columnar=True, **kw),
    "DS": lambda **kw: DawidSkene(max_iter=10, use_columnar=True, **kw),
    "ZENCROWD": lambda **kw: ZenCrowd(max_iter=10, use_columnar=True, **kw),
    "LFC": lambda **kw: Lfc(max_iter=10, use_columnar=True, **kw),
    "CRH": lambda **kw: Crh(max_iter=10, use_columnar=True, **kw),
}


def _with_answers(dataset, n_workers=5, per_worker=30, seed=0):
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    for worker in make_worker_pool(n_workers, seed=3):
        picks = rng.choice(len(objects), size=min(per_worker, len(objects)), replace=False)
        for i in picks:
            obj = objects[int(i)]
            dataset.add_answer(Answer(obj, worker.worker_id, worker.answer(dataset, obj, rng)))
    return dataset


@pytest.fixture(scope="module")
def birthplaces():
    return _with_answers(make_birthplaces(size=300, seed=7))


@pytest.fixture(scope="module")
def heritages():
    # Hierarchical candidate sets (deep heritage taxonomy): with K=7 the
    # object ranges cut straight through hierarchy subtrees — the case the
    # ISSUE calls out — because consecutive objects share ancestor values.
    return make_heritages(size=110, n_sources=200, seed=11)


# ---------------------------------------------------------------------------
# shard views
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2, 7])
def test_shard_views_reassemble_the_encoding(birthplaces, k):
    col = birthplaces.columnar()
    shards = col.shards(k)
    assert isinstance(shards, ColumnarShards)
    assert col.shards(k) is shards  # cached per encoding
    assert shards[0].obj_lo == 0 and shards[-1].obj_hi == col.n_objects
    for prev, nxt in zip(shards, list(shards)[1:]):
        assert prev.obj_hi == nxt.obj_lo  # contiguous, gapless

    # Rebasing the local views back to global coordinates must reproduce
    # every claim-table array exactly.
    assert np.array_equal(
        np.concatenate([s.claim_slot + s.slot_lo for s in shards]), col.claim_slot
    )
    assert np.array_equal(
        np.concatenate([s.claim_obj + s.obj_lo for s in shards]), col.claim_obj
    )
    assert np.array_equal(
        np.concatenate([s.claim_claimant for s in shards]), col.claim_claimant
    )
    assert np.array_equal(
        np.concatenate([s.slot_vid for s in shards]), col.slot_vid
    )
    sizes = np.concatenate([s.sizes for s in shards])
    assert np.array_equal(sizes, col.sizes)

    # Pair slices cover the expansion without overlap, in order.
    shards.ensure_pairs()
    assert shards[0].pair_lo == 0
    assert shards[-1].pair_hi == len(col.pairs.pair_claim)
    assert np.array_equal(
        np.concatenate([s.pair_slot + s.slot_lo for s in shards]),
        col.pairs.pair_slot,
    )

    # Hierarchy CSR slices: local Go(v) entries rebased back equal the
    # global slot-level arrays (Euler/value-level tables are shared).
    hier = col.hierarchy
    assert np.array_equal(
        np.concatenate([s.slot_anc_slots + s.slot_lo for s in shards]),
        hier.slot_anc_slots,
    )
    assert sum(len(s.slot_anc_offsets) - 1 for s in shards) == col.n_slots
    assert shards[0].hierarchy is hier


def test_shard_boundary_splits_hierarchy_subtree():
    """Force a boundary through the middle of one hierarchy subtree: objects
    claiming ancestor/descendant values of the same chain land in different
    shards, and TDH still reproduces the unsharded fit bit for bit."""
    tree = Hierarchy()
    tree.add_path(["World", "Europe", "France", "Paris"])
    tree.add_path(["World", "Europe", "Germany", "Berlin"])
    tree.add_path(["World", "Asia", "Japan", "Tokyo"])
    records = []
    values = ["Europe", "France", "Paris", "Germany", "Berlin", "Asia", "Japan", "Tokyo"]
    for i in range(12):
        chain = ["Paris", "France", "Europe"] if i % 2 == 0 else ["Berlin", "Germany", "Europe"]
        for j, source in enumerate(["s0", "s1", "s2", "s3"]):
            records.append(Record(f"o{i}", source, chain[j % 3]))
        records.append(Record(f"o{i}", "s4", values[(i + 5) % len(values)]))
    dataset = TruthDiscoveryDataset(tree, records)

    col = dataset.columnar()
    shards = col.shards(5)
    # The split really does separate objects of the same subtree: some
    # boundary has candidate values in an ancestor-descendant relationship
    # across it (every object claims within the Europe chain).
    assert len(shards) > 1
    boundary_objs = [dataset.objects[s.obj_lo] for s in list(shards)[1:]]
    assert any(
        set(dataset.candidates(obj)) & {"Europe", "France", "Germany"}
        for obj in boundary_objs
    )

    base = TDHModel(max_iter=12, use_columnar=True).fit(dataset)
    sharded = TDHModel(max_iter=12, use_columnar=True, shards=5).fit(dataset)
    assert sharded.truths() == base.truths()
    for obj in dataset.objects:
        assert np.array_equal(sharded.confidences[obj], base.confidences[obj])


# ---------------------------------------------------------------------------
# bitwise parity of the sharded fits
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2, 7])
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_sharded_fit_bitwise_equal(birthplaces, heritages, algo, k):
    for dataset in (birthplaces, heritages):
        base = ALGORITHMS[algo]().fit(dataset)
        sharded = ALGORITHMS[algo](shards=k, n_jobs=1).fit(dataset)
        assert sharded.iterations == base.iterations
        assert sharded.converged == base.converged
        assert sharded.truths() == base.truths()
        for obj in dataset.objects:
            assert np.array_equal(
                sharded.confidences[obj], base.confidences[obj]
            ), f"{algo} K={k} diverges on {obj!r}"


def test_sharded_tdh_trust_state_bitwise_equal(birthplaces):
    base = TDHModel(max_iter=10, use_columnar=True).fit(birthplaces)
    sharded = TDHModel(max_iter=10, use_columnar=True, shards=7).fit(birthplaces)
    assert set(sharded.phi) == set(base.phi) and set(sharded.psi) == set(base.psi)
    for source, vec in base.phi.items():
        assert np.array_equal(sharded.phi[source], vec)
    for worker, vec in base.psi.items():
        assert np.array_equal(sharded.psi[worker], vec)
    # The EM state the EAI assigner consumes is equally untouched.
    for obj in birthplaces.objects:
        assert np.array_equal(sharded.numerators[obj], base.numerators[obj])
        assert sharded.denominators[obj] == base.denominators[obj]


def test_sharded_claimant_state_bitwise_equal(birthplaces):
    base_z = ZenCrowd(max_iter=10, use_columnar=True).fit(birthplaces)
    shard_z = ZenCrowd(max_iter=10, use_columnar=True, shards=7).fit(birthplaces)
    assert shard_z.reliability == base_z.reliability
    base_c = Crh(max_iter=10, use_columnar=True).fit(birthplaces)
    shard_c = Crh(max_iter=10, use_columnar=True, shards=7).fit(birthplaces)
    assert shard_c.source_weights == base_c.source_weights


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_backends_bitwise_equal(birthplaces, backend):
    if backend == "process":
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("process backend requires the fork start method")
    base = TDHModel(max_iter=8, use_columnar=True).fit(birthplaces)
    parallel = TDHModel(
        max_iter=8, use_columnar=True, n_jobs=2, shards=4, parallel_backend=backend
    ).fit(birthplaces)
    assert parallel.iterations == base.iterations
    for obj in birthplaces.objects:
        assert np.array_equal(parallel.confidences[obj], base.confidences[obj])


# ---------------------------------------------------------------------------
# executor mechanics and knob plumbing
# ---------------------------------------------------------------------------
def test_resolve_jobs_conventions():
    import os

    cores = os.cpu_count() or 1
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-1) == cores
    assert resolve_jobs(-cores - 5) == 1  # floored


def test_executor_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        ParallelExecutor(2, backend="fibers")


def test_executor_session_validates_consts_length(birthplaces):
    col = birthplaces.columnar()
    shards = col.shards(3)
    with pytest.raises(ValueError, match="consts"):
        ParallelExecutor(1).session(shards, [{}])


def test_parallel_plan_clamps_to_object_count():
    tree = Hierarchy()
    tree.add_path(["root", "a"])
    tree.add_path(["root", "b"])
    dataset = TruthDiscoveryDataset(
        tree, [Record("o1", "s1", "a"), Record("o1", "s2", "b"), Record("o2", "s1", "b")]
    )
    shards, executor = parallel_plan(dataset.columnar(), n_jobs=16)
    assert 1 <= len(shards) <= 2  # never more shards than objects
    assert executor.n_jobs == 16
    single = ColumnarShard(dataset.columnar(), 0, dataset.columnar().n_objects)
    assert single.n_claims == 3


def test_factories_and_cli_thread_jobs():
    from repro.experiments.common import FAST, inference_factories
    from repro.experiments.__main__ import build_parser

    factories = inference_factories(FAST, engine="columnar", n_jobs=3)
    for name in ("TDH", "LFC", "CRH"):
        assert factories[name]().n_jobs == 3
    args = build_parser().parse_args(["fig12", "--engine", "columnar", "--jobs", "4"])
    assert args.jobs == 4


# ---------------------------------------------------------------------------
# backend="auto" (1-core hosts / tiny workloads downgrade to serial)
# ---------------------------------------------------------------------------
def test_resolve_backend_passthrough_and_auto():
    from repro.data import sharding
    from repro.data.sharding import AUTO_MIN_PARALLEL_CLAIMS, resolve_backend

    assert resolve_backend("serial") == "serial"
    assert resolve_backend("thread", n_claims=1) == "thread"  # explicit wins
    assert resolve_backend("process", n_claims=1) == "process"
    # plenty of claims on a multicore machine -> thread
    if (sharding.os.cpu_count() or 1) > 1:
        assert resolve_backend("auto", AUTO_MIN_PARALLEL_CLAIMS) == "thread"
    # tiny workload -> serial regardless of cores
    assert resolve_backend("auto", AUTO_MIN_PARALLEL_CLAIMS - 1) == "serial"


def test_resolve_backend_serial_on_single_core(monkeypatch):
    from repro.data import sharding

    monkeypatch.setattr(sharding.os, "cpu_count", lambda: 1)
    assert sharding.resolve_backend("auto", 10**9) == "serial"
    monkeypatch.setattr(sharding.os, "cpu_count", lambda: None)
    assert sharding.resolve_backend("auto", 10**9) == "serial"


def test_auto_downgrade_is_logged_exactly_once(monkeypatch, caplog):
    import logging

    from repro.data import sharding

    monkeypatch.setattr(sharding, "_auto_downgrade_logged", False)
    with caplog.at_level(logging.INFO, logger="repro.data.sharding"):
        sharding.resolve_backend("auto", 10)
        sharding.resolve_backend("auto", 10)  # second downgrade: silent
    downgrades = [r for r in caplog.records if "downgraded to serial" in r.message]
    assert len(downgrades) == 1


def test_executor_and_plan_accept_auto(birthplaces):
    executor = ParallelExecutor(2, backend="auto")
    assert executor.backend in ("serial", "thread")
    col = birthplaces.columnar()
    shards, executor = parallel_plan(col, n_jobs=2, backend="auto")
    expected = "thread" if (col.n_claims >= 8192 and (resolve_jobs(-1) > 1)) else "serial"
    assert executor.backend == expected


def test_auto_is_the_em_models_default_and_stays_bitwise(birthplaces):
    for factory in (TDHModel, DawidSkene, ZenCrowd, Lfc):
        assert factory().parallel_backend == "auto"
    base = TDHModel(max_iter=8, use_columnar=True).fit(birthplaces)
    explicit = TDHModel(
        max_iter=8, use_columnar=True, n_jobs=2, parallel_backend="auto"
    ).fit(birthplaces)
    assert explicit.iterations == base.iterations
    for obj in birthplaces.objects:
        assert np.array_equal(explicit.confidences[obj], base.confidences[obj])

"""Unit tests for records, answers and TruthDiscoveryDataset."""

import pytest

from repro import Answer, Hierarchy, Record, TruthDiscoveryDataset
from repro.data import DatasetError


@pytest.fixture()
def hierarchy() -> Hierarchy:
    h = Hierarchy()
    h.add_path(["USA", "NY", "NYC"])
    h.add_path(["USA", "LA"])
    h.add_path(["UK", "London"])
    return h


@pytest.fixture()
def dataset(hierarchy) -> TruthDiscoveryDataset:
    records = [
        Record("o1", "s1", "NYC"),
        Record("o1", "s2", "NY"),
        Record("o1", "s3", "LA"),
        Record("o2", "s1", "London"),
        Record("o2", "s2", "London"),
        Record("o3", "s3", "USA"),
    ]
    return TruthDiscoveryDataset(hierarchy, records, gold={"o1": "NYC"})


class TestRecords:
    def test_objects_in_first_seen_order(self, dataset):
        assert dataset.objects == ["o1", "o2", "o3"]

    def test_sources(self, dataset):
        assert set(dataset.sources) == {"s1", "s2", "s3"}

    def test_num_records(self, dataset):
        assert dataset.num_records == 6

    def test_records_for(self, dataset):
        assert dataset.records_for("o1") == {"s1": "NYC", "s2": "NY", "s3": "LA"}

    def test_records_for_unknown_object_empty(self, dataset):
        assert dataset.records_for("nope") == {}

    def test_duplicate_source_claim_overwrites(self, dataset):
        dataset.add_record(Record("o1", "s1", "LA"))
        assert dataset.records_for("o1")["s1"] == "LA"
        assert dataset.num_records == 6  # still one claim per (o, s)

    def test_sources_of(self, dataset):
        assert set(dataset.sources_of("o1")) == {"s1", "s2", "s3"}

    def test_objects_of_source(self, dataset):
        assert dataset.objects_of_source("s1") == ["o1", "o2"]

    def test_iter_records_roundtrip(self, dataset):
        records = list(dataset.iter_records())
        assert len(records) == dataset.num_records
        assert Record("o1", "s2", "NY") in records

    def test_record_value_must_be_in_hierarchy(self, dataset):
        with pytest.raises(DatasetError, match="not in the hierarchy"):
            dataset.add_record(Record("o1", "s4", "Tokyo"))

    def test_root_claims_rejected(self, dataset, hierarchy):
        with pytest.raises(DatasetError, match="no information"):
            dataset.add_record(Record("o1", "s4", hierarchy.root))


class TestAnswers:
    def test_add_answer(self, dataset):
        dataset.add_answer(Answer("o1", "w1", "NYC"))
        assert dataset.answers_for("o1") == {"w1": "NYC"}
        assert dataset.workers == ["w1"]
        assert dataset.num_answers == 1

    def test_answer_must_be_candidate(self, dataset):
        with pytest.raises(DatasetError, match="not a candidate"):
            dataset.add_answer(Answer("o1", "w1", "London"))

    def test_answer_overwrite_same_worker(self, dataset):
        dataset.add_answer(Answer("o1", "w1", "NYC"))
        dataset.add_answer(Answer("o1", "w1", "NY"))
        assert dataset.answers_for("o1") == {"w1": "NY"}
        assert dataset.num_answers == 1

    def test_workers_of_and_objects_of_worker(self, dataset):
        dataset.add_answer(Answer("o1", "w1", "NYC"))
        dataset.add_answer(Answer("o2", "w1", "London"))
        assert dataset.workers_of("o1") == ["w1"]
        assert dataset.objects_of_worker("w1") == ["o1", "o2"]

    def test_iter_answers(self, dataset):
        dataset.add_answer(Answer("o1", "w1", "NY"))
        assert list(dataset.iter_answers()) == [Answer("o1", "w1", "NY")]


class TestCandidates:
    def test_candidates_in_first_claim_order(self, dataset):
        assert dataset.candidates("o1") == ["NYC", "NY", "LA"]

    def test_context_index(self, dataset):
        ctx = dataset.context("o1")
        assert ctx.index == {"NYC": 0, "NY": 1, "LA": 2}
        assert ctx.size == 3

    def test_ancestor_sets(self, dataset):
        ctx = dataset.context("o1")
        # NY is an ancestor of NYC and both are candidates.
        assert ctx.ancestor_sets[ctx.index["NYC"]] == [ctx.index["NY"]]
        assert ctx.descendant_sets[ctx.index["NY"]] == [ctx.index["NYC"]]
        assert ctx.ancestor_sets[ctx.index["LA"]] == []

    def test_has_hierarchy_flag(self, dataset):
        assert dataset.context("o1").has_hierarchy  # NYC under NY
        assert not dataset.context("o2").has_hierarchy  # single value

    def test_hierarchical_objects(self, dataset):
        assert dataset.hierarchical_objects == ["o1"]

    def test_context_for_unknown_object_raises(self, dataset):
        with pytest.raises(DatasetError, match="no records"):
            dataset.context("nope")

    def test_context_cache_invalidated_by_new_record(self, dataset):
        assert dataset.candidates("o2") == ["London"]
        dataset.add_record(Record("o2", "s3", "UK"))
        assert dataset.candidates("o2") == ["London", "UK"]
        assert dataset.context("o2").has_hierarchy


class TestUtilities:
    def test_copy_is_independent(self, dataset):
        clone = dataset.copy()
        clone.add_record(Record("o9", "s1", "LA"))
        assert "o9" not in dataset.objects
        assert "o9" in clone.objects

    def test_copy_without_answers(self, dataset):
        dataset.add_answer(Answer("o1", "w1", "NYC"))
        clone = dataset.copy(include_answers=False)
        assert clone.num_answers == 0
        assert clone.num_records == dataset.num_records

    def test_copy_shares_gold(self, dataset):
        clone = dataset.copy()
        assert clone.gold == {"o1": "NYC"}

    def test_scaled_duplicates_objects(self, dataset):
        scaled = dataset.scaled(3)
        assert len(scaled.objects) == 3 * len(dataset.objects)
        assert scaled.num_records == 3 * dataset.num_records
        # copies share claims and gold
        assert scaled.records_for(("o1", 1)) == dataset.records_for("o1")
        assert scaled.gold[("o1", 2)] == "NYC"

    def test_scaled_factor_one_is_plain_copy(self, dataset):
        scaled = dataset.scaled(1)
        assert scaled.objects == dataset.objects

    def test_scaled_invalid_factor(self, dataset):
        with pytest.raises(ValueError):
            dataset.scaled(0)

    def test_stats_keys(self, dataset):
        stats = dataset.stats()
        assert stats["objects"] == 3
        assert stats["sources"] == 3
        assert stats["records"] == 6
        assert stats["objects_in_OH"] == 1
        assert stats["mean_candidates"] == pytest.approx((3 + 1 + 1) / 3)


class TestVersionCounters:
    """The public mutation counters the serving layer stamps snapshots with."""

    def test_construction_counts_each_ingested_record(self, hierarchy):
        # The constructor routes records through add_record, so both
        # counters start at the ingested-record count, not at zero.
        ds = TruthDiscoveryDataset(hierarchy, [Record("o1", "s1", "NYC")])
        assert ds.version == 1
        assert ds.records_version == 1

    def test_answer_bumps_version_but_not_records_version(self, dataset):
        v0, r0 = dataset.version, dataset.records_version
        dataset.add_answer(Answer("o1", "w1", "NYC"))
        assert dataset.version == v0 + 1
        assert dataset.records_version == r0  # crowd rounds keep warm starts valid

    def test_record_bumps_both_counters(self, dataset):
        v0, r0 = dataset.version, dataset.records_version
        dataset.add_record(Record("o1", "s9", "NY"))
        assert dataset.version == v0 + 1
        assert dataset.records_version == r0 + 1

    def test_identical_record_readd_keeps_records_version(self, dataset):
        r0 = dataset.records_version
        dataset.add_record(Record("o1", "s1", "NYC"))  # same claim again
        assert dataset.records_version == r0

"""Tests for the JSON report exporter and the extended Table-3 experiment."""

import json

import pytest

import repro.experiments.common as common
from repro.experiments import table3_extended
from repro.experiments.report import export_json, run_experiments

TINY = common.ExperimentScale(
    birthplaces_size=60,
    heritages_size=50,
    heritages_sources=60,
    rounds=2,
    workers=3,
    tasks_per_worker=2,
    em_iterations=5,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(common, "FAST", TINY)


class TestExtendedTable3:
    def test_seventeen_algorithms(self):
        results = table3_extended.run()
        for rows in results.values():
            assert len(rows) == 17
            names = {r["Algorithm"] for r in rows}
            assert {"TDH", "SUMS", "TRUTHFINDER", "DS", "ZENCROWD"} <= names

    def test_rows_sorted_by_accuracy(self):
        results = table3_extended.run()
        for rows in results.values():
            accuracies = [r["Accuracy"] for r in rows]
            assert accuracies == sorted(accuracies, reverse=True)


class TestRunExperiments:
    def test_selected_subset(self):
        results = run_experiments(["fig1"])
        assert set(results) == {"fig1"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments(["nope"])


class TestExportJson:
    def test_report_written_and_parseable(self, tmp_path):
        path = tmp_path / "report.json"
        report = export_json(path, names=["fig1", "table3"])
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["scale"]["birthplaces_size"] == TINY.birthplaces_size
        assert set(loaded["results"]) == {"fig1", "table3"}
        assert loaded["results"] == json.loads(json.dumps(report["results"]))

    def test_report_includes_full_flag(self, tmp_path):
        path = tmp_path / "report.json"
        export_json(path, names=["fig1"])
        assert json.loads(path.read_text())["full"] is False

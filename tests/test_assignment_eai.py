"""Tests for EAI task assignment: the quality measure, the incremental EM,
Lemma 4.1 and Algorithm 1."""

import numpy as np
import pytest

from repro import Answer, EAIAssigner, TDHModel, make_birthplaces
from repro.crowd import make_worker_pool


@pytest.fixture(scope="module")
def fitted():
    dataset = make_birthplaces(size=150, seed=7)
    result = TDHModel(max_iter=25, tol=1e-4).fit(dataset)
    return dataset, result


@pytest.fixture()
def assigner():
    return EAIAssigner()


PSI = np.array([0.7, 0.2, 0.1])


class TestConditionalConfidence:
    def test_is_distribution(self, fitted, assigner):
        dataset, result = fitted
        obj = dataset.objects[0]
        n = len(result.confidences[obj])
        for answer_pos in range(n):
            cond = assigner.conditional_confidence(result, obj, PSI, answer_pos)
            assert np.all(cond >= 0)
            assert cond.sum() == pytest.approx(1.0, abs=1e-6)

    def test_answer_raises_answered_value(self, fitted, assigner):
        dataset, result = fitted
        for obj in dataset.objects[:20]:
            mu = result.confidences[obj]
            if len(mu) < 2:
                continue
            answer_pos = int(np.argmin(mu))
            cond = assigner.conditional_confidence(result, obj, PSI, answer_pos)
            assert cond[answer_pos] >= mu[answer_pos] - 1e-9

    def test_damped_by_claim_count(self, fitted, assigner):
        """Eq. (18): the shift is bounded by 1/(D+1) per coordinate."""
        dataset, result = fitted
        for obj in dataset.objects[:20]:
            mu = result.confidences[obj]
            denominator = result.denominators[obj]
            for answer_pos in range(len(mu)):
                cond = assigner.conditional_confidence(result, obj, PSI, answer_pos)
                assert np.max(np.abs(cond - mu)) <= 1.0 / (denominator + 1.0) + 1e-9


class TestAnswerDistribution:
    def test_is_distribution(self, fitted, assigner):
        dataset, result = fitted
        for obj in dataset.objects[:20]:
            dist = assigner.answer_distribution(result, obj, PSI)
            assert np.all(dist >= 0)
            assert dist.sum() == pytest.approx(1.0, abs=1e-6)

    def test_accurate_worker_likely_answers_mode(self, fitted, assigner):
        dataset, result = fitted
        sharp_psi = np.array([0.95, 0.04, 0.01])
        for obj in dataset.objects[:10]:
            mu = result.confidences[obj]
            if mu.max() < 0.9:
                continue
            dist = assigner.answer_distribution(result, obj, sharp_psi)
            assert int(np.argmax(dist)) == int(np.argmax(mu))


class TestEaiMeasure:
    def test_nonnegative_within_bound(self, fitted, assigner):
        dataset, result = fitted
        n_objects = len(result.confidences)
        for obj in dataset.objects[:30]:
            value = assigner.eai(result, obj, PSI)
            upper = assigner.ueai(result, obj)
            assert value <= upper + 1e-12, "Lemma 4.1 upper bound violated"
            assert value >= -1.0 / n_objects  # expectation of a max: tiny negatives only

    def test_settled_object_has_low_eai(self, fitted, assigner):
        """Objects with confident truths and many claims should score near 0."""
        dataset, result = fitted
        scores = {obj: assigner.eai(result, obj, PSI) for obj in dataset.objects}
        settled = [
            obj for obj in dataset.objects
            if result.confidences[obj].max() > 0.99
        ]
        if settled:
            uncertain_max = max(scores.values())
            for obj in settled[:5]:
                assert scores[obj] <= uncertain_max

    def test_ueai_formula(self, fitted, assigner):
        dataset, result = fitted
        obj = dataset.objects[0]
        mu = result.confidences[obj]
        expected = (1.0 - float(mu.max())) / (
            len(result.confidences) * (result.denominators[obj] + 1.0)
        )
        assert assigner.ueai(result, obj) == pytest.approx(expected)

    def test_evaluation_counter(self, fitted, assigner):
        dataset, result = fitted
        assigner.eai_evaluations = 0
        assigner.eai(result, dataset.objects[0], PSI)
        assert assigner.eai_evaluations == 1


class TestAlgorithm1:
    def test_respects_k(self, fitted, assigner):
        dataset, result = fitted
        workers = [w.worker_id for w in make_worker_pool(5, seed=1)]
        assignment = assigner.assign(dataset, result, workers, 3)
        assert set(assignment) == set(workers)
        assert all(len(tasks) <= 3 for tasks in assignment.values())

    def test_no_object_assigned_twice(self, fitted, assigner):
        dataset, result = fitted
        workers = [w.worker_id for w in make_worker_pool(5, seed=1)]
        assignment = assigner.assign(dataset, result, workers, 4)
        all_tasks = [obj for tasks in assignment.values() for obj in tasks]
        assert len(all_tasks) == len(set(all_tasks))

    def test_skips_already_answered(self, fitted, assigner):
        dataset, result = fitted
        dataset = dataset.copy()
        workers = ["w0"]
        first = assigner.assign(dataset, result, workers, 2)
        for obj in first["w0"]:
            value = dataset.candidates(obj)[0]
            dataset.add_answer(Answer(obj, "w0", value))
        second = assigner.assign(dataset, result, workers, 2)
        assert not set(first["w0"]) & set(second["w0"])

    def test_pruning_equivalence(self, fitted):
        """The Lemma-4.1 filter must not change the outcome (Fig 13 premise)."""
        dataset, result = fitted
        workers = [w.worker_id for w in make_worker_pool(8, seed=2)]
        pruned = EAIAssigner(use_pruning=True)
        brute = EAIAssigner(use_pruning=False)
        a1 = pruned.assign(dataset, result, workers, 5)
        a2 = brute.assign(dataset, result, workers, 5)
        assert a1 == a2

    def test_pruning_reduces_evaluations(self, fitted):
        dataset, result = fitted
        workers = [w.worker_id for w in make_worker_pool(8, seed=2)]
        pruned = EAIAssigner(use_pruning=True)
        brute = EAIAssigner(use_pruning=False)
        pruned.assign(dataset, result, workers, 5)
        brute.assign(dataset, result, workers, 5)
        assert pruned.eai_evaluations < brute.eai_evaluations

    def test_requires_tdh_result(self, fitted, assigner):
        from repro import Vote

        dataset, _ = fitted
        vote_result = Vote().fit(dataset)
        with pytest.raises(TypeError, match="TDHResult"):
            assigner.assign(dataset, vote_result, ["w0"], 1)

    def test_empty_worker_list(self, fitted, assigner):
        dataset, result = fitted
        assert assigner.assign(dataset, result, [], 5) == {}

    def test_zero_k(self, fitted, assigner):
        dataset, result = fitted
        assignment = assigner.assign(dataset, result, ["w0"], 0)
        assert assignment == {"w0": []}

    def test_assigns_best_objects_first(self, fitted, assigner):
        """The chosen set should dominate: every assigned object's EAI must be
        >= the best unassigned object's EAI for that worker."""
        dataset, result = fitted
        workers = ["w0"]
        psi = result.worker_psi("w0", assigner.default_psi)
        assignment = assigner.assign(dataset, result, workers, 5)
        chosen = set(assignment["w0"])
        chosen_scores = [assigner.eai(result, obj, psi) for obj in chosen]
        rest_scores = [
            assigner.eai(result, obj, psi)
            for obj in dataset.objects
            if obj not in chosen
        ]
        assert min(chosen_scores) >= max(rest_scores) - 1e-12

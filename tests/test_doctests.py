"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.datasets.registry
import repro.hierarchy.tree

MODULES = [
    repro.hierarchy.tree,
    repro.datasets.registry,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"

"""End-to-end integration tests across modules."""

import numpy as np
import pytest

from repro import (
    CrowdSimulator,
    EAIAssigner,
    MaxEntropyAssigner,
    QascaAssigner,
    TDHModel,
    Vote,
    load_dataset,
    make_worker_pool,
)
from repro.eval import evaluate, evaluate_multitruth, single_truth_as_sets


class TestFullPipeline:
    def test_public_api_workflow(self):
        """The README / DESIGN.md §6 workflow must run end to end."""
        ds = load_dataset("birthplaces", size=150, seed=7)
        model = TDHModel(max_iter=20, tol=1e-4)
        result = model.fit(ds)
        truths = result.truths()
        assert len(truths) == 150

        sim = CrowdSimulator(
            ds, TDHModel(max_iter=15, tol=1e-4), EAIAssigner(),
            make_worker_pool(6, pi_p=0.8, seed=1), seed=2,
        )
        history = sim.run(rounds=4, tasks_per_worker=4)
        assert history.final.accuracy >= history.records[0].accuracy - 0.02

    def test_crowdsourcing_beats_no_crowdsourcing(self):
        ds = load_dataset("birthplaces", size=200, seed=9)
        sim = CrowdSimulator(
            ds, TDHModel(max_iter=20, tol=1e-4), EAIAssigner(),
            make_worker_pool(10, pi_p=0.9, seed=1), seed=2,
        )
        history = sim.run(rounds=10, tasks_per_worker=5)
        assert history.final.accuracy > history.records[0].accuracy

    def test_tdh_eai_at_least_matches_tdh_me(self):
        """The paper's headline: EAI spends the budget better than ME."""
        ds = load_dataset("birthplaces", size=250, seed=13)
        finals = {}
        for assigner in (EAIAssigner(), MaxEntropyAssigner()):
            sim = CrowdSimulator(
                ds, TDHModel(max_iter=20, tol=1e-4), assigner,
                make_worker_pool(10, pi_p=0.75, seed=3), seed=5,
            )
            history = sim.run(rounds=10, tasks_per_worker=5)
            finals[assigner.name] = history.final.accuracy
        assert finals["EAI"] >= finals["ME"] - 0.01

    def test_multitruth_pipeline(self):
        ds = load_dataset("heritages", size=100, n_sources=120, seed=11)
        result = TDHModel(max_iter=20, tol=1e-4).fit(ds)
        sets = single_truth_as_sets(ds, result.truths())
        report = evaluate_multitruth(ds, sets)
        assert report.f1 > 0.5

    def test_vote_with_workers_in_simulator(self):
        ds = load_dataset("heritages", size=80, n_sources=100, seed=11)
        sim = CrowdSimulator(
            ds, Vote(), QascaAssigner(seed=1), make_worker_pool(5, seed=1), seed=2
        )
        history = sim.run(rounds=3, tasks_per_worker=3)
        assert len(history.records) == 4


class TestCrossAlgorithmConsistency:
    def test_all_algorithms_agree_on_unanimous_data(self):
        """When every source says the same thing, everyone must return it."""
        from repro import (
            Accu, Asums, Crh, Docs, GuessLca, Hierarchy, Lfc, Mdc, PopAccu,
            Record, TruthDiscoveryDataset,
        )

        h = Hierarchy()
        h.add_path(["X", "Y", "Z"])
        records = [
            Record(f"o{i}", f"s{j}", "Z") for i in range(5) for j in range(4)
        ]
        ds = TruthDiscoveryDataset(h, records)
        algorithms = [
            TDHModel(max_iter=10), Vote(), Accu(max_iter=5), PopAccu(max_iter=5),
            Lfc(max_iter=5), Crh(max_iter=5), GuessLca(max_iter=5),
            Asums(max_iter=5), Mdc(max_iter=5), Docs(max_iter=5),
        ]
        for algo in algorithms:
            truths = algo.fit(ds).truths()
            assert all(v == "Z" for v in truths.values()), algo.name

    def test_evaluation_consistent_across_reports(self):
        ds = load_dataset("birthplaces", size=120, seed=7)
        result = TDHModel(max_iter=15, tol=1e-4).fit(ds)
        report = evaluate(ds, result.truths())
        assert 0.0 <= report.accuracy <= report.gen_accuracy <= 1.0
        assert report.avg_distance >= 0.0

"""Self-healing: supervised restarts, quarantine, watchdog, compaction.

The second axis of the kill matrix (the first lives in
``tests/test_recovery.py``): the *same* injected faults, but instead of
proving that an out-of-process ``recover()`` restores the accepted prefix,
these tests prove the service heals **in-process** — the supervisor rolls
back, restarts, quarantines poison — and that the final drained truths
equal a cold fit of exactly the acknowledged writes, with dense epochs and
monotone stamps across every worker restart, and zero acknowledged writes
lost.

Also here: the ``FaultInjector`` repeatable-mode unit tests, the
``drain()``-raises-on-worker-death regression, degraded-read semantics,
the restart budget, the fit watchdog, journal-less (ledger) rollback, and
compaction crash-safety.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data.model import Answer, Record
from repro.datasets import make_heritages
from repro.inference import TDHModel
from repro.serving import (
    BatchQuarantined,
    FaultInjector,
    FitTimeout,
    InjectedFault,
    Overloaded,
    ServiceClosed,
    SupervisionPolicy,
    TruthService,
    WriteAheadJournal,
    recover,
    scan_journal,
)

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def _small():
    return make_heritages(size=24, n_sources=40, seed=2)


def _model():
    return TDHModel(max_iter=60, tol=1e-7, use_columnar=True, incremental=True)


def _cold():
    return TDHModel(max_iter=60, tol=1e-7, use_columnar=True)


def _seeded_answers(dataset, n, seed, n_workers=5, p_truth=0.7):
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    writes = []
    for i in range(n):
        obj = objects[int(rng.integers(len(objects)))]
        ctx = dataset.context(obj)
        truth = dataset.gold.get(obj)
        if truth is not None and truth in ctx.index and rng.random() < p_truth:
            value = truth
        else:
            value = ctx.values[int(rng.integers(len(ctx.values)))]
        writes.append(Answer(obj, f"sw{i % n_workers}", value))
    return writes


def _fast_policy(**overrides):
    base = dict(
        max_restarts=10,
        backoff_base=0.0,
        backoff_cap=0.0,
        quarantine_after=3,
        jitter=0.0,
        seed=3,
    )
    base.update(overrides)
    return SupervisionPolicy(**base)


def run(coro):
    return asyncio.run(coro)


async def _append(service, claim):
    if isinstance(claim, Record):
        return await service.append_claim(claim.object, claim.source, claim.value)
    return await service.append_answer(claim.object, claim.worker, claim.value)


# ---------------------------------------------------------------------------
# FaultInjector repeatable modes (unit level)
# ---------------------------------------------------------------------------
class TestRepeatableFaults:
    def test_one_shot_default_still_disarms(self):
        faults = FaultInjector().arm("worker.fit", hit=2)
        assert faults.check("worker.fit") is None
        with pytest.raises(InjectedFault):
            faults.check("worker.fit")
        assert not faults.armed("worker.fit")
        assert faults.check("worker.fit") is None  # hit 3: disarmed
        assert faults.fired == [("worker.fit", 2)]

    def test_hits_remaining_fires_every_check_then_disarms(self):
        faults = FaultInjector().arm("worker.apply", hit=2, hits_remaining=3)
        assert faults.check("worker.apply") is None  # hit 1: below hit
        for expected_hit in (2, 3, 4):  # the poison-batch shape
            with pytest.raises(InjectedFault):
                faults.check("worker.apply")
        assert not faults.armed("worker.apply")
        assert faults.check("worker.apply") is None  # hit 5: spent
        assert faults.fired == [("worker.apply", h) for h in (2, 3, 4)]

    def test_every_nth_skips_between_firings(self):
        faults = FaultInjector().arm("worker.publish", hit=1, every_nth=3)
        fired = []
        for hit in range(1, 8):
            try:
                faults.check("worker.publish")
            except InjectedFault:
                fired.append(hit)
        assert fired == [1, 4, 7]  # the flaky-site shape
        assert faults.armed("worker.publish")  # unbounded: never disarms

    def test_every_nth_bounded_by_hits_remaining(self):
        faults = FaultInjector().arm(
            "worker.fit", hit=2, every_nth=2, hits_remaining=2
        )
        fired = []
        for hit in range(1, 10):
            try:
                faults.check("worker.fit")
            except InjectedFault:
                fired.append(hit)
        assert fired == [2, 4]
        assert not faults.armed("worker.fit")

    def test_disarm_drops_a_plan(self):
        faults = FaultInjector().arm("worker.fit", hit=1, hits_remaining=5)
        faults.disarm("worker.fit")
        assert not faults.armed("worker.fit")
        assert faults.check("worker.fit") is None
        faults.disarm("worker.fit")  # idempotent on an empty slot

    def test_arm_validates_repeatable_params(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("worker.fit", hits_remaining=0)
        with pytest.raises(ValueError):
            FaultInjector().arm("worker.fit", every_nth=0)

    def test_compaction_sites_are_registered(self):
        assert "journal.compact" in FaultInjector.SITES
        assert "journal.compact.rename" in FaultInjector.SITES


# ---------------------------------------------------------------------------
# the healing kill matrix (the tentpole property)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("site", FaultInjector.SITES)
def test_healing_kill_matrix(tmp_path, site):
    """Every injection site × 3 repeated hits: the service heals in-process.

    Contract: after drain, ``get_truths`` equals a cold fit of exactly the
    acknowledged writes (quarantined batches excluded, their tickets
    resolved with ``BatchQuarantined``), epochs are dense, stamps monotone,
    the worker is alive again, and a recovery of the journal the run left
    behind agrees with the live service.
    """
    run(_healing_case(tmp_path, site))


async def _healing_case(tmp_path, site):
    faults = FaultInjector(seed=7)
    compaction_site = site.startswith("journal.compact")
    journal = WriteAheadJournal(
        tmp_path / "heal.wal",
        fsync="always",
        faults=faults,
        # Compaction sites are only reachable during a compaction; a 1-byte
        # threshold makes every checkpoint trigger one.
        auto_compact_bytes=1 if compaction_site else None,
    )
    dataset = _small()
    mirror = dataset.copy()
    service = TruthService(
        dataset,
        _model(),
        batch_max=3,
        journal=journal,
        faults=faults,
        supervision=_fast_policy(),
    )
    await service.start()
    # Arm *after* start so the repeated faults land under supervision (the
    # startup fit is deliberately unsupervised), targeting the very next
    # pass through the site.
    faults.arm(site, hit=faults.counts.get(site, 0) + 1, hits_remaining=3)
    writes = _seeded_answers(dataset, 12, seed=101)
    obj = dataset.objects[0]
    writes.append(Record(obj, "heal-src", dataset.candidates(obj)[0]))
    tickets = [await _append(service, claim) for claim in writes]
    await service.drain()

    acknowledged = []
    quarantined = 0
    for claim, ticket in zip(writes, tickets):
        try:
            epoch = await ticket
        except BatchQuarantined as exc:
            assert site in str(exc.cause) or exc.cause  # cause is carried
            quarantined += 1
        else:
            assert epoch >= 1
            acknowledged.append(claim)
    assert len(faults.fired) >= 1, f"site {site} was never reached"
    assert quarantined + len(acknowledged) == len(writes)

    # Zero acknowledged writes lost: the live truths are a cold fit of
    # exactly the acknowledged stream.
    for claim in acknowledged:
        if isinstance(claim, Record):
            mirror.add_record(claim)
        else:
            mirror.add_answer(claim)
    expected = _cold().fit(mirror).truths()
    live = {obj: r.value for obj, r in service.get_truths().items()}
    assert live == expected

    # Dense epochs and monotone stamps across every restart.
    history = service.history
    epochs = [snap.epoch for snap in history]
    assert epochs == list(range(epochs[0], epochs[0] + len(epochs)))
    versions = [snap.dataset_version for snap in history]
    assert versions == sorted(versions)

    # The service healed in-process: the worker is alive and writes flow.
    stats = service.stats()
    assert stats["worker_alive"] is True
    assert stats["closed"] is False
    probe = dataset.objects[1]
    ticket = await service.append_answer(
        probe, "heal-probe", dataset.candidates(probe)[0]
    )
    assert await ticket >= 1
    live = {obj: r.value for obj, r in service.get_truths().items()}

    # And the journal the whole ordeal left behind recovers to the same
    # truths — quarantine records replay, duplicates dedup, torn spans skip.
    service.crash()
    restored, report = await recover(journal.path, _cold(), run_worker=False)
    recovered = {obj: r.value for obj, r in restored.get_truths().items()}
    assert recovered == live
    if quarantined and not compaction_site:
        # The decision itself is journaled (frames may or may not exist on
        # disk for the poisoned batch — journal.append dies before writing).
        assert scan_journal(journal.path).quarantined_seqs
        assert report.batches_quarantined + report.writes_quarantined >= 0
    await restored.stop(drain=False)


def test_healing_without_journal_uses_the_ledger(tmp_path):
    """Journal-less supervised services roll back via the in-memory ledger."""

    async def main():
        faults = FaultInjector(seed=5)
        dataset = _small()
        mirror = dataset.copy()
        service = TruthService(
            dataset,
            _model(),
            batch_max=4,
            faults=faults,
            supervision=_fast_policy(),
        )
        await service.start()
        faults.arm(
            "worker.publish",
            hit=faults.counts["worker.publish"] + 1,
            hits_remaining=2,  # two crashes, then the retry heals: no quarantine
        )
        writes = _seeded_answers(dataset, 10, seed=33)
        tickets = [await _append(service, claim) for claim in writes]
        await service.drain()
        for claim, ticket in zip(writes, tickets):
            assert await ticket >= 1
            mirror.add_answer(claim)
        expected = _cold().fit(mirror).truths()
        live = {obj: r.value for obj, r in service.get_truths().items()}
        assert live == expected
        stats = service.stats()
        assert stats["worker_restarts"] >= 1
        assert stats["quarantines"] == 0
        await service.stop()

    run(main())


# ---------------------------------------------------------------------------
# quarantine semantics
# ---------------------------------------------------------------------------
def test_quarantine_resolves_tickets_and_stream_moves_on(tmp_path):
    async def main():
        faults = FaultInjector(seed=1)
        journal = WriteAheadJournal(tmp_path / "q.wal", faults=faults)
        dataset = _small()
        service = TruthService(
            dataset,
            _model(),
            batch_max=2,
            journal=journal,
            faults=faults,
            supervision=_fast_policy(quarantine_after=2),
        )
        await service.start()
        faults.arm(
            "worker.fit",
            hit=faults.counts["worker.fit"] + 1,
            hits_remaining=2,
        )
        a, b, c = dataset.objects[:3]
        poisoned = [
            await service.append_answer(a, "w0", dataset.candidates(a)[0]),
            await service.append_answer(b, "w1", dataset.candidates(b)[0]),
        ]
        await service.drain()
        for ticket in poisoned:
            with pytest.raises(BatchQuarantined) as err:
                await ticket
            assert err.value.seq == 0
            assert "InjectedFault" in err.value.cause
        stats = service.stats()
        assert stats["quarantines"] == 1
        assert stats["quarantined_writes"] == 2
        assert stats["worker_restarts"] >= 1
        # The quarantine decision is journaled for deterministic replay.
        scan = scan_journal(journal.path)
        assert scan.quarantined_seqs == [0]
        # The stream moves on: the next batch publishes at the next epoch.
        survivor = await service.append_answer(c, "w2", dataset.candidates(c)[0])
        epoch = await survivor
        assert epoch == service.latest.epoch >= 1
        await service.stop()

    run(main())


def test_crash_budget_resets_on_progress_but_exhausts_terminally(tmp_path):
    """`max_restarts` bounds *consecutive* crashes; exhaustion closes writes."""

    async def main():
        faults = FaultInjector(seed=2)
        dataset = _small()
        service = TruthService(
            dataset,
            _model(),
            batch_max=1,
            faults=faults,
            supervision=_fast_policy(max_restarts=2, quarantine_after=99),
        )
        await service.start()
        obj = dataset.objects[0]
        # One contained crash, then progress: the budget must reset.
        faults.arm("worker.fit", hit=faults.counts["worker.fit"] + 1)
        t1 = await service.append_answer(obj, "w0", dataset.candidates(obj)[0])
        assert await t1 >= 1
        assert service.stats()["worker_restarts"] == 1
        # Now an unbroken run of crashes (> max_restarts): the supervisor
        # gives up, failing the parked ticket with the crash itself.
        faults.arm(
            "worker.fit",
            hit=faults.counts["worker.fit"] + 1,
            hits_remaining=10,
        )
        t2 = await service.append_answer(obj, "w1", dataset.candidates(obj)[1])
        with pytest.raises(InjectedFault):
            await t2
        # Writes are refused terminally; reads still serve the snapshot.
        with pytest.raises(ServiceClosed):
            await service.append_answer(obj, "w2", dataset.candidates(obj)[0])
        assert service.get_truth(obj).value is not None
        await service.stop(drain=False)

    run(main())


# ---------------------------------------------------------------------------
# fit watchdog
# ---------------------------------------------------------------------------
def test_fit_watchdog_times_out_and_quarantines(tmp_path):
    async def main():
        faults = FaultInjector(seed=4)
        dataset = _small()
        service = TruthService(
            dataset,
            _model(),
            batch_max=2,
            faults=faults,
            supervision=_fast_policy(fit_timeout=0.08, quarantine_after=2),
        )
        await service.start()
        # A pure slowdown (delay, no exception) far past the timeout: the
        # watchdog must abandon the fit and treat it as a crash, twice,
        # then quarantine the batch that keeps hanging the fit.
        faults.arm(
            "worker.fit",
            hit=faults.counts["worker.fit"] + 1,
            delay=0.4,
            hits_remaining=2,
        )
        obj = dataset.objects[0]
        ticket = await service.append_answer(obj, "wd", dataset.candidates(obj)[0])
        await service.drain()
        with pytest.raises(BatchQuarantined) as err:
            await ticket
        assert "FitTimeout" in err.value.cause
        stats = service.stats()
        assert stats["fit_timeouts"] == 2
        assert stats["quarantines"] == 1
        # A fresh executor serves the next fit: the service still publishes.
        other = dataset.objects[1]
        t2 = await service.append_answer(other, "wd2", dataset.candidates(other)[0])
        assert await t2 >= 1
        await service.stop()

    run(main())


def test_fit_timeout_validation():
    with pytest.raises(ValueError):
        SupervisionPolicy(fit_timeout=0.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(max_restarts=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(backoff_base=2.0, backoff_cap=1.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(quarantine_after=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(jitter=-0.1)
    assert isinstance(FitTimeout(1.5), RuntimeError)


# ---------------------------------------------------------------------------
# degraded reads & write shedding
# ---------------------------------------------------------------------------
def test_degraded_reads_stay_live_and_writes_shed(tmp_path):
    """While the worker is down, reads serve the last snapshot with
    ``degraded`` stamps — never ``ServiceClosed`` — and writes beyond
    ``max_pending`` shed with a typed ``Overloaded``."""

    async def main():
        faults = FaultInjector(seed=6)
        dataset = _small()
        service = TruthService(
            dataset,
            _model(),
            batch_max=1,
            max_pending=1,
            faults=faults,
            supervision=_fast_policy(quarantine_after=99),
        )
        await service.start(run_worker=False)  # deterministic manual driving
        obj = dataset.objects[0]
        healthy = service.get_truth(obj)
        assert healthy.degraded is False and healthy.time_in_degraded == 0.0

        faults.arm("worker.fit", hit=faults.counts["worker.fit"] + 1)
        ticket = await service.append_answer(obj, "d0", dataset.candidates(obj)[0])
        await service.supervisor.step()  # contained crash: now degraded
        assert not ticket.done()  # the writer waits through the heal
        degraded = service.get_truth(obj)
        assert degraded.degraded is True
        assert degraded.time_in_degraded > 0.0
        assert degraded.epoch == healthy.epoch  # same last-published snapshot
        multi = service.get_truths([obj, dataset.objects[1]])
        assert all(r.degraded for r in multi.values())

        # Degraded writes queue within capacity...
        other = dataset.objects[1]
        queued = await service.append_answer(other, "d1", dataset.candidates(other)[0])
        # ... and shed loudly beyond it (the crashed batch is parked on the
        # worker, so capacity is exactly the queue: one slot, now taken).
        with pytest.raises(Overloaded):
            await service.append_answer(other, "d2", dataset.candidates(other)[0])
        assert service.stats()["writes_shed"] == 1

        # The next step retries the parked batch and heals; reads clear.
        await service.supervisor.step()
        assert await ticket >= 1
        await service.supervisor.step()
        assert await queued >= 1
        healed = service.get_truth(obj)
        assert healed.degraded is False and healed.time_in_degraded == 0.0
        stats = service.stats()
        assert stats["degraded_seconds_total"] > 0.0
        assert stats["supervised"] is True
        await service.stop(drain=False)

    run(main())


# ---------------------------------------------------------------------------
# the drain() hang regression (satellite)
# ---------------------------------------------------------------------------
def test_drain_raises_when_worker_fail_stops_mid_drain():
    """Pre-fix, ``drain()`` awaited ``queue.join()`` unconditionally: a
    fail-stopped worker never calls ``task_done`` for writes it will never
    take, so the await hung forever. It must raise the worker's failure."""

    async def main():
        faults = FaultInjector(seed=8)
        dataset = _small()
        service = TruthService(dataset, _model(), batch_max=1, faults=faults)
        await service.start()
        faults.arm("worker.fit", hit=faults.counts["worker.fit"] + 1)
        obj = dataset.objects[0]
        tickets = [
            await service.append_answer(obj, f"h{i}", dataset.candidates(obj)[0])
            for i in range(3)
        ]
        # Batch 1 kills the worker (fail-stop, unsupervised); writes 2 and 3
        # are stranded in the queue — the old barrier could never complete.
        with pytest.raises(InjectedFault):
            await asyncio.wait_for(service.drain(), timeout=10)
        for ticket in tickets:
            if ticket.done() and not ticket.cancelled():
                ticket.exception()  # sweep: no unretrieved-exception noise
            else:
                ticket.cancel()
        await service.stop(drain=False)

    run(main())


def test_drain_still_returns_when_queue_empties_normally():
    async def main():
        dataset = _small()
        service = TruthService(dataset, _model(), batch_max=4)
        await service.start()
        obj = dataset.objects[0]
        await service.append_answer(obj, "ok", dataset.candidates(obj)[0])
        final = await asyncio.wait_for(service.drain(), timeout=10)
        assert final.epoch >= 1
        await service.stop()

    run(main())


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------
def test_manual_compaction_preserves_truths_and_resume(tmp_path):
    async def main():
        path = tmp_path / "c.wal"
        dataset = _small()
        service = TruthService(
            dataset, _model(), batch_max=2, journal=WriteAheadJournal(path)
        )
        await service.start()
        writes = _seeded_answers(dataset, 10, seed=9)
        for claim in writes:
            await _append(service, claim)
        await service.drain()
        before = scan_journal(path)
        info = await service.compact()
        after = scan_journal(path)
        # History collapsed to base + checkpoint; nothing semantic lost.
        assert len(after.entries) == 2
        assert after.entries[0]["kind"] == "base"
        assert after.entries[1]["kind"] == "checkpoint"
        assert len(before.entries) > len(after.entries)
        assert info["before_bytes"] > 0 and info["after_bytes"] > 0
        assert service.stats()["compactions"] == 1
        live = {obj: r.value for obj, r in service.get_truths().items()}
        epoch = service.latest.epoch
        service.crash()
        restored, report = await recover(path, _cold(), run_worker=False)
        recovered = {obj: r.value for obj, r in restored.get_truths().items()}
        assert recovered == live
        assert report.resume_epoch == epoch + 1  # epochs stay dense
        assert report.batches_replayed == 0  # replay is history-free now
        await restored.stop(drain=False)

    run(main())


def test_compaction_requires_a_journal():
    async def main():
        service = TruthService(_small(), _model())
        await service.start()
        with pytest.raises(ValueError):
            await service.compact()
        await service.stop()

    run(main())


@pytest.mark.parametrize("site", ["journal.compact", "journal.compact.rename"])
def test_kill_during_compaction_never_loses_the_journal(tmp_path, site):
    """A crash at either compaction step leaves a usable journal: the old
    file before the atomic rename, the new one after — never neither."""

    async def main():
        path = tmp_path / "kc.wal"
        dataset = _small()
        service = TruthService(
            dataset, _model(), batch_max=2, journal=WriteAheadJournal(path)
        )
        await service.start()
        for claim in _seeded_answers(dataset, 8, seed=19):
            await _append(service, claim)
        await service.drain()
        live = {obj: r.value for obj, r in service.get_truths().items()}
        # Arm the kill on the journal directly (the service was built
        # without an injector; compaction is what we are killing).
        faults = FaultInjector(seed=0).arm(site, hit=1)
        service._journal._faults = faults
        with pytest.raises(InjectedFault):
            await service.compact()
        assert faults.fired
        service.crash()
        restored, _report = await recover(path, _cold(), run_worker=False)
        recovered = {obj: r.value for obj, r in restored.get_truths().items()}
        assert recovered == live
        await restored.stop(drain=False)

    run(main())


def test_auto_compaction_bounds_the_file(tmp_path):
    async def main():
        path = tmp_path / "auto.wal"
        dataset = _small()
        journal = WriteAheadJournal(path, auto_compact_bytes=1)
        service = TruthService(dataset, _model(), batch_max=1, journal=journal)
        await service.start()
        mirror = dataset.copy()
        writes = _seeded_answers(dataset, 6, seed=29)
        for claim in writes:
            await _append(service, claim)
            mirror.add_answer(claim)
        await service.drain()
        # Every checkpoint triggered a compaction: the file never holds
        # more than base + checkpoint (+ the in-flight tail).
        scan = scan_journal(path)
        assert len(scan.entries) == 2
        assert journal.compactions >= 6
        assert service.stats()["compactions"] == journal.compactions
        expected = _cold().fit(mirror).truths()
        live = {obj: r.value for obj, r in service.get_truths().items()}
        assert live == expected
        await service.stop()

    run(main())


def test_supervised_auto_compaction_rebases_the_ledger(tmp_path):
    """After a compaction, a later rollback must anchor at the compacted
    base — the ledger rebase hook — and still reconstruct exactly."""

    async def main():
        faults = FaultInjector(seed=12)
        path = tmp_path / "reb.wal"
        journal = WriteAheadJournal(path, faults=faults, auto_compact_bytes=1)
        dataset = _small()
        mirror = dataset.copy()
        service = TruthService(
            dataset,
            _model(),
            batch_max=2,
            journal=journal,
            faults=faults,
            supervision=_fast_policy(),
        )
        await service.start()
        writes = _seeded_answers(dataset, 8, seed=41)
        first, rest = writes[:4], writes[4:]
        for claim in first:
            await _append(service, claim)
        await service.drain()  # several auto-compactions have happened
        assert journal.compactions >= 1
        # Now crash a fit mid-batch: rollback must rebuild from the
        # compacted journal (or the rebased ledger) and retry cleanly.
        faults.arm("worker.fit", hit=faults.counts["worker.fit"] + 1)
        tickets = [await _append(service, claim) for claim in rest]
        await service.drain()
        for claim, ticket in zip(writes, [None] * 4 + tickets):
            if ticket is not None:
                assert await ticket >= 1
            mirror.add_answer(claim)
        expected = _cold().fit(mirror).truths()
        live = {obj: r.value for obj, r in service.get_truths().items()}
        assert live == expected
        assert service.stats()["worker_restarts"] >= 1
        await service.stop()

    run(main())

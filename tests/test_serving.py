"""The always-on truth service: lifecycle, consistency, backpressure.

Three layers:

1. **Deterministic worker stepping** — services started with
   ``run_worker=False`` let tests drive the batch loop by hand, which pins
   the batch boundaries and makes the end-to-end read-your-writes test
   bitwise reproducible: after N appends and quiescence, ``get_truths``
   must name exactly the truths of a cold fit on a mirror dataset that
   received the identical write stream.
2. **Concurrent tasks** — with the worker task live, writer and reader
   coroutines race for real; readers must never observe a torn multi-get
   (mixed epochs) or a regressing version stamp.
3. **Lifecycle/backpressure edges** — bounded queue blocking, rejected
   writes surfacing their ``DatasetError`` without poisoning the batch,
   start/stop/drain semantics.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data.model import Answer, DatasetError, Record
from repro.datasets import make_heritages
from repro.inference import TDHModel
from repro.serving import (
    PublicationError,
    PublishedResult,
    ServiceClosed,
    ServiceNotStarted,
    SnapshotStore,
    TruthService,
)

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")
# The service must *account* for warm-start degradations (metrics), never
# leak the RuntimeWarning to callers — so the whole module escalates them.


def _sparse_heritages():
    return make_heritages(size=160, n_sources=350, seed=11)


def _model():
    # Mirrors the incremental parity suite's settings (tests/test_incremental_em.py).
    return TDHModel(max_iter=60, tol=1e-7, use_columnar=True, incremental=True)


def _seeded_writes(dataset, n, seed, n_workers=5, p_truth=0.7):
    """The same seeded crowd-round stream for the service and its mirror."""
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    writes = []
    for i in range(n):
        obj = objects[int(rng.integers(len(objects)))]
        ctx = dataset.context(obj)
        truth = dataset.gold.get(obj)
        if truth is not None and truth in ctx.index and rng.random() < p_truth:
            value = truth
        else:
            value = ctx.values[int(rng.integers(len(ctx.values)))]
        writes.append(Answer(obj, f"sw{i % n_workers}", value))
    return writes


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# startup & epoch 0
# ---------------------------------------------------------------------------
def test_start_publishes_epoch_zero_cold_fit_bitwise():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model())
        await service.start(run_worker=False)
        return service

    service = run(scenario())
    snap = service.latest
    assert snap.epoch == 0 and not snap.incremental
    assert snap.dataset_version == base.version
    assert snap.records_version == base.records_version
    cold = TDHModel(max_iter=60, tol=1e-7, use_columnar=True).fit(
        _sparse_heritages()
    )
    assert snap.truths == cold.truths()
    for obj in base.objects:  # epoch 0 is a plain cold fit: bitwise, not close
        assert np.array_equal(snap.result.confidences[obj], cold.confidences[obj])


def test_reads_and_writes_before_start_are_refused():
    service = TruthService(_sparse_heritages())
    with pytest.raises(ServiceNotStarted):
        service.get_truth("site_0")
    with pytest.raises(ServiceNotStarted):
        run(service.append_answer("site_0", "w0", "x"))


# ---------------------------------------------------------------------------
# the acceptance contract: read-your-writes-eventually, bitwise vs cold
# ---------------------------------------------------------------------------
def test_read_your_writes_eventually_matches_cold_fit():
    """Pinned seed, pinned batch boundaries: after 3 rounds of appends and
    worker quiescence, ``get_truths`` equals a cold ``fit`` of the final
    dataset exactly, and every write's ticket named a later-readable epoch."""
    base = _sparse_heritages()
    mirror = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model(), max_pending=128, batch_max=128)
        await service.start(run_worker=False)
        epochs = []
        for round_no in range(3):
            writes = _seeded_writes(mirror, 20, seed=round_no)
            tickets = [
                await service.append_answer(a.object, a.worker, a.value)
                for a in writes
            ]
            for answer in writes:  # identical stream onto the mirror
                mirror.add_answer(answer)
            snapshot = await service.worker.step()  # one batch = one round
            assert isinstance(snapshot, PublishedResult)
            assert [t.result() for t in tickets] == [snapshot.epoch] * len(tickets)
            epochs.append(snapshot.epoch)
        return service, epochs

    service, epochs = run(scenario())
    assert epochs == [1, 2, 3]
    assert service.metrics.fits_incremental > 0  # the frontier path served
    reads = service.get_truths()
    assert {o: r.value for o, r in reads.items()} == TDHModel(
        max_iter=60, tol=1e-7, use_columnar=True
    ).fit(mirror).truths()
    assert all(r.lag_writes == 0 and r.epoch == 3 for r in reads.values())


def test_record_append_serves_incrementally_with_zero_degradations():
    """The cold-fallback cliff, end to end: a new-source claim — here one
    growing the object's candidate set with a brand-new value — used to bump
    records_version and force a cold refit. The worker now serves it through
    the dirty-frontier path: no degradation counted, the snapshot is
    incremental, and the published truths still match the mirror's cold fit."""
    base = _sparse_heritages()
    mirror = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model(), batch_max=8)
        await service.start(run_worker=False)
        obj = base.objects[0]
        fresh = next(
            v
            for v in base.hierarchy.non_root_nodes()
            if v not in base.candidates(obj)
        )
        await service.append_claim(obj, "brand-new-source", fresh)
        mirror.add_record(Record(obj, "brand-new-source", fresh))
        snapshot = await service.worker.step()
        return service, snapshot

    service, snapshot = run(scenario())
    assert snapshot.incremental and snapshot.frontier_size is not None
    assert service.metrics.warm_start_degradations == 0
    assert service.metrics.warm_start_degradation_reasons == {}
    assert service.metrics.fits_cold == 1  # epoch 0 only
    assert service.metrics.fits_incremental == 1
    cold = TDHModel(max_iter=60, tol=1e-7, use_columnar=True).fit(mirror)
    assert snapshot.truths == cold.truths()
    assert snapshot.records_version == base.records_version


def test_mixed_traffic_stays_incremental_and_matches_cold_mirror():
    """Steady state under mixed claim+answer traffic: three drained rounds of
    answers plus slot-growing claims (brand-new candidate values, one
    brand-new object) keep the worker on the frontier path — zero warm-start
    degradations after the cold epoch-0 fit — and the drained ``get_truths``
    equals a cold fit of the mirrored write stream."""
    base = _sparse_heritages()
    mirror = _sparse_heritages()

    def round_answers(round_no, n=8):
        # Distinct objects and round-unique workers: no (object, worker)
        # pair ever repeats, so every answer is a genuine append (a repeat
        # with a different value would be an in-place overwrite, which
        # rightly poisons the op window), and the dirty set stays small
        # enough that the 1-hop frontier does not saturate.
        rng = np.random.default_rng(300 + round_no)
        picks = rng.choice(len(mirror.objects), size=n, replace=False)
        answers = []
        for i, idx in enumerate(picks):
            obj = mirror.objects[int(idx)]
            ctx = mirror.context(obj)
            truth = mirror.gold.get(obj)
            value = (
                truth
                if truth is not None and truth in ctx.index
                else ctx.values[0]
            )
            answers.append(Answer(obj, f"mx{round_no}w{i % 4}", value))
        return answers

    async def scenario():
        service = TruthService(base, _model(), max_pending=256, batch_max=256)
        await service.start(run_worker=False)
        for round_no in range(3):
            for a in round_answers(round_no):
                await service.append_answer(a.object, a.worker, a.value)
                mirror.add_answer(a)
            obj = mirror.objects[round_no]
            fresh = next(
                v
                for v in mirror.hierarchy.non_root_nodes()
                if v not in mirror.candidates(obj)
            )
            await service.append_claim(obj, f"mx-src-{round_no}", fresh)
            mirror.add_record(Record(obj, f"mx-src-{round_no}", fresh))
            if round_no == 1:  # object growth mid-stream, not just new slots
                donor = mirror.candidates(mirror.objects[5])[0]
                await service.append_claim("mx-new-object", "mx-src-new", donor)
                mirror.add_record(Record("mx-new-object", "mx-src-new", donor))
            snapshot = await service.worker.step()
            assert snapshot is not None and snapshot.incremental
        return service

    service = run(scenario())
    assert service.metrics.fits_incremental == 3  # every batch stayed warm
    assert service.metrics.fits_cold == 1  # epoch 0 only
    assert service.metrics.warm_start_degradations == 0
    assert service.metrics.snapshot()["warm_start_degradation_reasons"] == {}
    reads = service.get_truths()
    truths = TDHModel(max_iter=60, tol=1e-7, use_columnar=True).fit(mirror).truths()
    assert {o: r.value for o, r in reads.items()} == dict(truths)


# ---------------------------------------------------------------------------
# concurrent readers: no torn reads, monotone stamps
# ---------------------------------------------------------------------------
def test_concurrent_readers_observe_monotone_untorn_snapshots():
    base = _sparse_heritages()
    mirror = _sparse_heritages()
    writes = _seeded_writes(mirror, 40, seed=3)

    async def scenario():
        service = TruthService(base, _model(), batch_max=16)
        await service.start()
        observations = []
        done = asyncio.Event()

        async def reader():
            sample = base.objects[::20]
            while not done.is_set():
                reads = service.get_truths(sample)
                stamps = {(r.epoch, r.dataset_version) for r in reads.values()}
                assert len(stamps) == 1  # one snapshot per multi-get: untorn
                observations.append(next(iter(stamps)))
                await asyncio.sleep(0)

        readers = [asyncio.create_task(reader()) for _ in range(2)]
        for i, answer in enumerate(writes):
            await service.append_answer(answer.object, answer.worker, answer.value)
            mirror.add_answer(answer)
            if i % 5 == 0:
                await asyncio.sleep(0.001)  # let batches close mid-stream
        await service.drain()
        done.set()
        await asyncio.gather(*readers)
        final = service.get_truths()
        await service.stop()
        return service, observations, final

    service, observations, final = run(scenario())
    assert observations
    for earlier, later in zip(observations, observations[1:]):
        assert later[0] >= earlier[0]  # epochs never regress
        assert later[1] >= earlier[1]  # dataset versions never regress
    assert service.latest.epoch == service.metrics.batches
    assert all(r.lag_writes == 0 for r in final.values())
    # Batch boundaries are timing-dependent here, so the incremental chain
    # differs run to run; the truth-tracking property (asserted exactly in
    # the pinned test above) holds within the property-suite tolerance.
    cold = TDHModel(max_iter=60, tol=1e-7, use_columnar=True).fit(mirror)
    agreement = np.mean(
        [final[o].value == t for o, t in cold.truths().items()]
    )
    assert agreement >= 0.99


# ---------------------------------------------------------------------------
# backpressure & batching
# ---------------------------------------------------------------------------
def test_backpressure_blocks_writers_at_max_pending():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model(), max_pending=4, batch_max=4)
        await service.start(run_worker=False)
        obj = base.objects[0]
        value = base.candidates(obj)[0]
        for i in range(4):
            await service.append_answer(obj, f"bp{i}", value)
        assert service._queue.full()
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(
                service.append_answer(obj, "bp4", value), timeout=0.05
            )
        await service.worker.step()  # frees the queue
        ticket = await asyncio.wait_for(
            service.append_answer(obj, "bp5", value), timeout=1.0
        )
        await service.worker.step()
        assert ticket.result() == service.latest.epoch
        return service

    service = run(scenario())
    assert service.metrics.queue_high_watermark == 4


def test_batch_coalesces_many_writes_into_one_epoch():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model(), batch_max=64)
        await service.start(run_worker=False)
        for answer in _seeded_writes(base, 10, seed=9):
            await service.append_answer(answer.object, answer.worker, answer.value)
        await service.worker.step()
        return service

    service = run(scenario())
    assert service.metrics.batches == 1
    assert service.metrics.last_batch_size == 10
    assert service.latest.epoch == 1  # ten writes, one publish


def test_rejected_write_surfaces_error_and_batch_survives():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model(), batch_max=8)
        await service.start(run_worker=False)
        obj = base.objects[0]
        good_value = base.candidates(obj)[0]
        bad = await service.append_answer(obj, "wx", "not-a-candidate-value")
        good = await service.append_answer(obj, "wx", good_value)
        snapshot = await service.worker.step()
        with pytest.raises(DatasetError):
            bad.result()
        assert good.result() == snapshot.epoch == 1
        return service

    service = run(scenario())
    assert service.metrics.writes_rejected == 1
    assert service.metrics.writes_applied == 1
    assert service.get_truth(base.objects[0]).lag_writes == 0


def test_all_rejected_batch_publishes_nothing():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model())
        await service.start(run_worker=False)
        bad = await service.append_answer(base.objects[0], "wx", "nope")
        snapshot = await service.worker.step()
        assert snapshot is None
        with pytest.raises(DatasetError):
            bad.result()
        return service

    service = run(scenario())
    assert service.latest.epoch == 0  # nothing changed, nothing republished


# ---------------------------------------------------------------------------
# staleness metadata
# ---------------------------------------------------------------------------
def test_staleness_metadata_tracks_pending_writes():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model())
        await service.start(run_worker=False)
        obj = base.objects[0]
        assert service.get_truth(obj).lag_writes == 0
        for i in range(3):
            await service.append_answer(obj, f"st{i}", base.candidates(obj)[0])
        stale = service.get_truth(obj)
        assert stale.lag_writes == 3 and stale.epoch == 0
        assert stale.staleness_seconds >= 0.0
        await service.worker.step()
        fresh = service.get_truth(obj)
        assert fresh.lag_writes == 0 and fresh.epoch == 1
        return service

    run(scenario())


def test_unknown_object_read_raises_key_error():
    service = TruthService(_sparse_heritages())

    async def scenario():
        await service.start(run_worker=False)

    run(scenario())
    with pytest.raises(KeyError, match="not covered by snapshot epoch"):
        service.get_truth("no-such-object")


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------
def test_lifecycle_double_start_stop_and_closed_writes():
    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, _model())
        await service.start()
        with pytest.raises(RuntimeError, match="called twice"):
            await service.start()
        obj = base.objects[0]
        await service.append_answer(obj, "lw0", base.candidates(obj)[0])
        await service.stop()  # drains by default
        with pytest.raises(ServiceClosed):
            await service.append_answer(obj, "lw1", base.candidates(obj)[0])
        await service.stop()  # idempotent
        assert service.get_truth(obj).lag_writes == 0  # reads survive stop
        return service

    service = run(scenario())
    assert service.metrics.writes_applied == 1
    assert service.latest.epoch == 1


def test_context_manager_drains_on_clean_exit():
    base = _sparse_heritages()

    async def scenario():
        async with TruthService(base, _model()) as service:
            obj = base.objects[1]
            await service.append_answer(obj, "cm0", base.candidates(obj)[0])
        return service

    service = run(scenario())
    assert service.metrics.writes_applied == 1
    assert service.latest.epoch == 1
    stats = service.stats()
    assert stats["closed"] and stats["queue_depth"] == 0


def test_empty_dataset_refused():
    from repro.data.model import TruthDiscoveryDataset
    from repro.hierarchy import Hierarchy

    hierarchy = Hierarchy()
    hierarchy.add_edge("a", hierarchy.root)
    empty = TruthDiscoveryDataset(hierarchy, [])
    with pytest.raises(ValueError, match="at least one record"):
        run(TruthService(empty).start())


# ---------------------------------------------------------------------------
# snapshot store monotonicity (unit level)
# ---------------------------------------------------------------------------
def _snapshot(epoch, dataset_version=0):
    return PublishedResult(
        result=None,
        truths={},
        epoch=epoch,
        dataset_version=dataset_version,
        records_version=0,
        applied_writes=0,
        incremental=False,
        frontier_size=None,
        fit_seconds=0.0,
        published_at=0.0,
    )


def test_snapshot_store_enforces_monotonicity():
    store = SnapshotStore(history=2)
    with pytest.raises(PublicationError, match="epoch 0"):
        store.publish(_snapshot(3))
    store.publish(_snapshot(0, dataset_version=5))
    with pytest.raises(PublicationError, match="exactly 1"):
        store.publish(_snapshot(2, dataset_version=6))
    with pytest.raises(PublicationError, match="regressed"):
        store.publish(_snapshot(1, dataset_version=4))
    store.publish(_snapshot(1, dataset_version=5))
    store.publish(_snapshot(2, dataset_version=7))
    assert [s.epoch for s in store.history] == [1, 2]  # bounded ring
    assert store.latest.epoch == 2


def test_non_warm_start_model_is_refitted_per_batch():
    """A model without ``warm_start`` (VOTE) still serves: every batch is a
    plain cold refit, and reads stay consistent."""
    from repro.inference import Vote

    base = _sparse_heritages()

    async def scenario():
        service = TruthService(base, Vote(), batch_max=8)
        await service.start(run_worker=False)
        obj = base.objects[2]
        await service.append_answer(obj, "vw", base.candidates(obj)[0])
        snapshot = await service.worker.step()
        return service, snapshot

    service, snapshot = run(scenario())
    assert snapshot.epoch == 1 and not snapshot.incremental
    assert service.metrics.fits_cold == 2
    assert snapshot.truths == Vote().fit(base).truths()

"""Incremental appender parity: every encoding produced by catching up a
held :class:`ColumnarClaims` through :class:`ColumnarAppender` must be
**array-equal** to a cold ``ColumnarClaims(dataset)`` rebuild — decode
tables, claim/slot CSR, hierarchy CSR and Euler intervals included — under
arbitrary interleavings of ``add_record`` / ``add_answer`` / ``columnar()``.

Also covers the appender lifecycle around dataset clones: ``copy()`` carries
a fresh encoding forward (the satellite fix), clones diverge safely because
encodings are immutable snapshots, and appenders that outlive their dataset
or hold a foreign clone's encoding raise :class:`StaleEncodingError`.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.assignment import EAIAssigner
from repro.crowd.simulator import CrowdSimulator
from repro.crowd.workers import make_worker_pool
from repro.data.columnar import ColumnarAppender, ColumnarClaims, StaleEncodingError
from repro.data.model import Answer, Record, TruthDiscoveryDataset
from repro.datasets import make_birthplaces
from repro.hierarchy.tree import Hierarchy
from repro.inference import TDHModel

ENCODING_ARRAYS = (
    "value_offsets",
    "claim_offsets",
    "slot_vid",
    "slot_obj",
    "claim_obj",
    "claim_claimant",
    "claim_pos",
    "claim_slot",
    "claim_vid",
    "claim_is_answer",
    "claimant_is_worker",
    "sizes",
    "_slot_anc_offsets",
    "_slot_anc_slots",
    "_obj_has_hierarchy",
)

HIERARCHY_ARRAYS = (
    "anc_offsets",
    "anc_vids",
    "desc_offsets",
    "desc_vids",
    "depth",
    "tin",
    "tout",
    "top_code",
    "slot_anc_offsets",
    "slot_anc_slots",
    "slot_gsize",
    "slot_desc_offsets",
    "slot_desc_slots",
    "obj_has_hierarchy",
    "slot_depth",
)


def assert_encodings_equal(incremental: ColumnarClaims, cold: ColumnarClaims) -> None:
    """Full structural equality, Euler intervals and hierarchy CSR included."""
    assert incremental.objects == cold.objects
    assert incremental.claimants == cold.claimants
    assert incremental.values == cold.values
    assert incremental.object_index == cold.object_index
    assert incremental.claimant_index == cold.claimant_index
    assert incremental.value_index == cold.value_index
    for name in ENCODING_ARRAYS:
        np.testing.assert_array_equal(
            getattr(incremental, name), getattr(cold, name), err_msg=name
        )
    inc_h, cold_h = incremental.hierarchy, cold.hierarchy
    for name in HIERARCHY_ARRAYS:
        np.testing.assert_array_equal(
            getattr(inc_h, name), getattr(cold_h, name), err_msg=f"hierarchy.{name}"
        )
    assert inc_h.top_values == cold_h.top_values
    assert inc_h.domains == cold_h.domains


def make_tree() -> Hierarchy:
    """A three-level tree with enough branches for ancestor-rich candidates."""
    tree = Hierarchy()
    for a in "ABC":
        tree.add_edge(a, tree.root)
        for b in range(3):
            mid = f"{a}{b}"
            tree.add_edge(mid, a)
            for c in range(2):
                tree.add_edge(f"{mid}{c}", mid)
    return tree


def tree_values(tree: Hierarchy) -> list:
    values = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            values.append(child)
            stack.append(child)
    return sorted(values)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_interleavings_match_cold_rebuild(seed):
    """Property test: random add_record/add_answer/columnar() sequences keep
    the incrementally-maintained encoding array-equal to a cold rebuild at
    every checkpoint — including occasional in-place overwrites, which must
    fall back to a rebuild rather than corrupt the splice."""
    rng = np.random.default_rng(seed)
    tree = make_tree()
    values = tree_values(tree)
    ds = TruthDiscoveryDataset(tree, [Record("o0", "s0", values[0])])
    ds.columnar()  # prime the cache: appends are logged from here on

    checkpoints = 0
    for step in range(150):
        roll = rng.random()
        objects = ds.objects
        if roll < 0.45:
            # a record: mostly existing objects, sometimes brand new ones
            if rng.random() < 0.75 or not objects:
                obj = f"o{int(rng.integers(0, len(objects) + 3))}"
            else:
                obj = objects[int(rng.integers(len(objects)))]
            source = f"s{int(rng.integers(0, 12))}"
            value = values[int(rng.integers(len(values)))]
            existing = ds.records_for(obj)
            if source in existing and existing[source] != value:
                # An in-place overwrite (exercises the rebuild fallback) —
                # but only when it cannot orphan an answer: a candidate value
                # may leave Vo, which the dataset model forbids answers to
                # outlive (the functional-predicate setting).
                old = existing[source]
                still_claimed = sum(1 for v in existing.values() if v == old) >= 2
                if not still_claimed and old in ds.answers_for(obj).values():
                    continue
            ds.add_record(Record(obj, source, value))
        elif roll < 0.80:
            obj = objects[int(rng.integers(len(objects)))]
            worker = f"w{int(rng.integers(0, 8))}"
            candidates = ds.candidates(obj)
            value = candidates[int(rng.integers(len(candidates)))]
            ds.add_answer(Answer(obj, worker, value))
        else:
            checkpoints += 1
            assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))
    assert checkpoints > 0
    assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))


def test_answers_only_append_carries_hierarchy_and_pairs():
    """The crowdsourcing hot path (answers only) must not rebuild any
    slot-level state: hierarchy view and candidate-pair expansion are carried
    by reference, and the Euler tour is never recomputed."""
    ds = make_birthplaces(size=80, seed=5)
    col = ds.columnar()
    hier = col.hierarchy
    pairs = col.slot_pairs
    for i, obj in enumerate(ds.objects[:15]):
        ds.add_answer(Answer(obj, f"w{i % 4}", ds.candidates(obj)[0]))
    appended = ds.columnar()
    assert appended is not col
    assert appended.hierarchy is hier
    assert appended.slot_pairs is pairs
    assert_encodings_equal(appended, ColumnarClaims(ds))


def test_slot_growth_reuses_euler_tour():
    """Adding a record with a new candidate rebuilds the hierarchy view, but
    the Euler tour is handed forward instead of re-touring the tree."""
    tree = make_tree()
    values = tree_values(tree)
    ds = TruthDiscoveryDataset(
        tree,
        [Record("o1", "s1", "A0"), Record("o1", "s2", "A"), Record("o2", "s1", "B0")],
    )
    old_tour = ds.columnar().hierarchy._tour
    ds.add_record(Record("o1", "s3", "A00"))  # new candidate slot for o1
    appended = ds.columnar()
    assert appended.hierarchy._tour[0] is old_tour[0]  # same tin map object
    assert_encodings_equal(appended, ColumnarClaims(ds))
    assert values  # the helper stays exercised


def test_overwrite_falls_back_to_rebuild():
    ds = make_birthplaces(size=40, seed=2)
    ds.columnar()
    obj, source, value = next(
        (o, s, v)
        for o in ds.objects
        if len(ds.candidates(o)) >= 2
        for s in ds.sources_of(o)
        for v in ds.candidates(o)
        if v != ds.records_for(o)[s]
        and sum(1 for u in ds.records_for(o).values() if u == ds.records_for(o)[s]) >= 2
    )
    ds.add_record(Record(obj, source, value))
    assert ds._ops_since(ds._version - 1) is None  # poisoned window
    assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))


def test_identical_overwrite_is_a_noop_restamp():
    ds = make_birthplaces(size=30, seed=4)
    col = ds.columnar()
    obj = ds.objects[0]
    source = ds.sources_of(obj)[0]
    ds.add_record(Record(obj, source, ds.records_for(obj)[source]))  # same value
    restamped = ds.columnar()
    assert restamped.version == ds._version
    assert restamped.claim_obj is col.claim_obj  # arrays shared, not rebuilt
    assert_encodings_equal(restamped, ColumnarClaims(ds))


def test_oplog_cap_drops_stranded_encodings(monkeypatch):
    monkeypatch.setattr(TruthDiscoveryDataset, "MAX_OPLOG", 8)
    ds = make_birthplaces(size=30, seed=6)
    ds.columnar()
    for i, obj in enumerate(ds.objects[:12]):  # overflow the tiny log
        ds.add_answer(Answer(obj, f"w{i}", ds.candidates(obj)[0]))
    assert ds._columnar is None  # stranded behind the trimmed window
    assert len(ds._oplog) == 8
    assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))


# ---------------------------------------------------------------------------
# ColumnarAppender lifecycle
# ---------------------------------------------------------------------------
def test_appender_refresh_api():
    ds = make_birthplaces(size=50, seed=3)
    appender = ColumnarAppender(ds)
    first = appender.claims
    assert appender.refresh() is first  # already fresh: no work
    ds.add_answer(Answer(ds.objects[0], "w0", ds.candidates(ds.objects[0])[0]))
    refreshed = appender.refresh()
    assert refreshed is not first
    assert refreshed.version == ds._version
    assert_encodings_equal(refreshed, ColumnarClaims(ds))


def test_appender_outliving_its_dataset_clone_raises():
    ds = make_birthplaces(size=30, seed=1)
    clone = ds.copy()
    appender = ColumnarAppender(clone)
    del clone
    gc.collect()
    with pytest.raises(StaleEncodingError, match="outlived"):
        appender.refresh()
    # the original dataset is untouched by the clone's death
    assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))


def test_appender_with_a_foreign_clones_encoding_raises():
    """An encoding that ran ahead on a clone cannot be refreshed against the
    original dataset — the lineage mismatch is detected, not spliced."""
    ds = make_birthplaces(size=30, seed=1)
    ds.columnar()
    clone = ds.copy()
    clone.add_answer(Answer(clone.objects[0], "w0", clone.candidates(clone.objects[0])[0]))
    ahead = clone.columnar()
    appender = ColumnarAppender(ds, claims=ahead)
    with pytest.raises(StaleEncodingError, match="different"):
        appender.refresh()


def test_appender_rejects_diverged_sibling_at_equal_version():
    """copy() stamps the clone with the parent's version counter, so sibling
    datasets that each mutate once have *coinciding* versions over *diverged*
    claims — the lineage token, not the counter, must catch the swap."""
    ds = make_birthplaces(size=30, seed=1)
    ds.columnar()
    clone = ds.copy()
    clone.add_answer(Answer(clone.objects[0], "wA", clone.candidates(clone.objects[0])[0]))
    ds.add_answer(Answer(ds.objects[1], "wB", ds.candidates(ds.objects[1])[0]))
    foreign = clone.columnar()
    assert foreign.version == ds._version  # counters coincide, claims differ
    appender = ColumnarAppender(ds, claims=foreign)
    with pytest.raises(StaleEncodingError, match="different"):
        appender.refresh()
    # a behind-by-one foreign encoding must not be spliced either
    clone2 = ds.copy()
    clone2.add_answer(Answer(clone2.objects[2], "wC", clone2.candidates(clone2.objects[2])[0]))
    ds.add_answer(Answer(ds.objects[3], "wD", ds.candidates(ds.objects[3])[0]))
    ds.add_answer(Answer(ds.objects[4], "wE", ds.candidates(ds.objects[4])[0]))
    behind = clone2.columnar()
    assert behind.version < ds._version
    with pytest.raises(StaleEncodingError, match="different"):
        ColumnarAppender(ds, claims=behind).refresh()
    # the carried snapshot itself (pre-divergence) remains accepted
    current = ds.columnar()
    shared = ds.copy().columnar()
    assert shared is current  # carried forward, same snapshot object
    assert ColumnarAppender(ds, claims=shared).refresh() is current


# ---------------------------------------------------------------------------
# copy() carry-forward (the satellite fix) and clone divergence safety
# ---------------------------------------------------------------------------
def test_copy_carries_fresh_encoding_forward():
    ds = make_birthplaces(size=40, seed=8)
    col = ds.columnar()
    clone = ds.copy()
    assert clone.columnar() is col  # no rebuild: versions matched
    # CrowdSimulator copies its input — the carried encoding reaches it too
    sim = CrowdSimulator(
        ds,
        TDHModel(max_iter=5, use_columnar=True),
        EAIAssigner(use_columnar=True),
        make_worker_pool(3, seed=1),
        seed=0,
    )
    assert sim.dataset.columnar() is col


def test_copy_without_answers_does_not_carry():
    ds = make_birthplaces(size=40, seed=8)
    for i, obj in enumerate(ds.objects[:5]):
        ds.add_answer(Answer(obj, f"w{i}", ds.candidates(obj)[0]))
    col = ds.columnar()
    clone = ds.copy(include_answers=False)
    fresh = clone.columnar()
    assert fresh is not col
    assert fresh.n_claims == col.n_claims - 5


def test_copy_with_stale_cache_does_not_carry():
    ds = make_birthplaces(size=40, seed=8)
    col = ds.columnar()
    ds.add_answer(Answer(ds.objects[0], "w0", ds.candidates(ds.objects[0])[0]))
    clone = ds.copy()  # cache is one version behind: not carried
    assert clone._columnar is None
    assert_encodings_equal(clone.columnar(), ColumnarClaims(clone))
    assert col.n_claims + 1 == clone.columnar().n_claims


def test_clone_divergence_never_corrupts_the_parent():
    """Encodings are immutable snapshots: after the clone appends, the parent
    still serves its own (identical-content) encoding and both sides stay
    array-equal to their cold rebuilds."""
    ds = make_birthplaces(size=40, seed=9)
    col = ds.columnar()
    clone = ds.copy()
    obj = clone.objects[0]
    clone.add_answer(Answer(obj, "w_clone", clone.candidates(obj)[0]))
    clone_col = clone.columnar()
    assert clone_col is not col
    assert ds.columnar() is col  # parent cache untouched
    assert_encodings_equal(ds.columnar(), ColumnarClaims(ds))
    assert_encodings_equal(clone_col, ColumnarClaims(clone))
    # shared buffers were not mutated: the parent's claim table kept its size
    assert col.n_claims + 1 == clone_col.n_claims


# ---------------------------------------------------------------------------
# end-to-end crowd-loop engine regression (pinned seeds)
# ---------------------------------------------------------------------------
def _run_crowd(engine: str):
    dataset = make_birthplaces(size=300, seed=7)
    model = TDHModel(max_iter=20, tol=1e-4, use_columnar=engine)
    assigner = EAIAssigner(use_columnar=engine)
    panel = make_worker_pool(6, pi_p=0.75, seed=3)
    simulator = CrowdSimulator(
        dataset, model, assigner, panel, rng=np.random.default_rng(11)
    )
    history = simulator.run(rounds=3, tasks_per_worker=5)
    return simulator, history


def test_crowd_loop_engines_agree_exactly():
    """N simulator rounds under the columnar engine reproduce the reference
    engine's assignment sequences, per-round metrics and final truths
    exactly (pinned ``numpy.random.Generator`` seed)."""
    sim_col, hist_col = _run_crowd("columnar")
    sim_ref, hist_ref = _run_crowd("reference")
    assert sim_col.assignment_log == sim_ref.assignment_log
    assert sim_col._previous_result.truths() == sim_ref._previous_result.truths()
    for metric in ("accuracy", "gen_accuracy", "avg_distance"):
        assert hist_col.series(metric) == hist_ref.series(metric)
    # the loop really appended: the simulator's dataset gained the answers
    assert sim_col.dataset.num_answers == sum(
        len(tasks) for assignment in sim_col.assignment_log
        for tasks in assignment.values()
    )


# ---------------------------------------------------------------------------
# incremental PairExpansion splicing
# ---------------------------------------------------------------------------
PAIR_LAYOUT_ARRAYS = (
    "pair_claim",
    "pair_slot",
    "pair_size",
    "pair_is_claimed",
)


def canonical_labels(index: np.ndarray) -> np.ndarray:
    """Relabel dense ids by first occurrence — the invariant representation
    of a cell partition (spliced expansions keep ids append-stable, cold
    builds use np.unique order; EM is bitwise-identical under either)."""
    uniq, first, inv = np.unique(index, return_index=True, return_inverse=True)
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[np.argsort(first)] = np.arange(len(uniq))
    return rank[inv]


def assert_pairs_equal(spliced, cold, col) -> None:
    """Pair layout exactly equal; confusion factorization equal up to the
    documented id relabeling (same partition, and the stable-id keys decode
    back to the cold build's key set)."""
    for name in PAIR_LAYOUT_ARRAYS:
        np.testing.assert_array_equal(
            getattr(spliced, name), getattr(cold, name), err_msg=f"pairs.{name}"
        )
    assert spliced.n_cells == cold.n_cells
    assert spliced.n_totals == cold.n_totals
    np.testing.assert_array_equal(
        canonical_labels(spliced.cell_index), canonical_labels(cold.cell_index)
    )
    np.testing.assert_array_equal(
        canonical_labels(spliced.total_index), canonical_labels(cold.total_index)
    )
    # Stable claimant *and value* ids decode back to the current ids: the key
    # sets match. Each expansion carries its own radix (`value_base`, widened
    # on slot-growth splices) and its own stable-id tables, so decode both
    # sides through their tables into current-id triples before comparing.
    nv = max(len(col.values), 1)

    def decode(exp, keys, with_claimed):
        cur_c = np.full(exp.n_stable, -1, dtype=np.int64)
        cur_c[exp.claimant_stable] = np.arange(col.n_claimants)
        cur_v = np.full(exp.n_value_stable, -1, dtype=np.int64)
        cur_v[exp.value_stable] = np.arange(len(col.values))
        base = exp.value_base
        if with_claimed:
            c, rem = np.divmod(keys, base * base)
            t, v = np.divmod(rem, base)
            return (cur_c[c] * nv + cur_v[t]) * nv + cur_v[v]
        c, t = np.divmod(keys, base)
        return cur_c[c] * nv + cur_v[t]

    np.testing.assert_array_equal(
        np.sort(decode(spliced, spliced.cells, True)),
        np.sort(decode(cold, cold.cells, True)),
    )
    np.testing.assert_array_equal(
        np.sort(decode(spliced, spliced.totals, False)),
        np.sort(decode(cold, cold.totals, False)),
    )


def _count_pair_builds(monkeypatch):
    """Patch PairExpansion.__init__ to count cold factorizations."""
    from repro.data.columnar import PairExpansion

    counter = {"builds": 0}
    original = PairExpansion.__init__

    def counting(self, col):
        counter["builds"] += 1
        original(self, col)

    monkeypatch.setattr(PairExpansion, "__init__", counting)
    return counter


def test_version_stable_encoding_reuses_cached_expansion(monkeypatch):
    """Satellite regression: fits with no mutation in between must reuse the
    cached claim x candidate expansion — zero rebuilds, same object."""
    ds = make_birthplaces(size=250, seed=7)
    col = ds.columnar()
    first = col.pairs
    counter = _count_pair_builds(monkeypatch)
    assert ds.columnar() is col
    assert ds.columnar().pairs is first  # same encoding -> same expansion
    model = TDHModel(max_iter=3, use_columnar=True)
    model.fit(ds)
    model.fit(ds)  # back-to-back fits, no mutation
    assert ds.columnar().pairs is first
    assert counter["builds"] == 0


def test_answers_only_append_splices_instead_of_rebuilding(monkeypatch):
    """The crowdsourcing hot path: appending answers from known workers must
    carry the expansion across the appender splice with no np.unique pass."""
    ds = make_birthplaces(size=250, seed=7)
    rng = np.random.default_rng(1)
    # Introduce the worker panel first, so later rounds add no claimants.
    for i, obj in enumerate(ds.objects[:6]):
        ds.add_answer(Answer(obj, f"w{i % 3}", ds.candidates(obj)[0]))
    col = ds.columnar()
    _ = col.pairs
    counter = _count_pair_builds(monkeypatch)
    for i, obj in enumerate(ds.objects[10:60]):
        cands = ds.candidates(obj)
        ds.add_answer(Answer(obj, f"w{i % 3}", cands[int(rng.integers(len(cands)))]))
    appended = ds.columnar()
    assert appended is not col
    assert appended._pairs is not None  # spliced eagerly, not rebuilt lazily
    assert counter["builds"] == 0
    assert_pairs_equal(appended.pairs, ColumnarClaims(ds).pairs, appended)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pair_splice_matches_cold_under_random_interleavings(seed):
    """Property test: whatever interleaving of appends hits the encoding,
    the maintained expansion equals a cold factorization at every
    checkpoint — whether it was spliced or (on renumbering / slot growth /
    overwrites) rebuilt."""
    rng = np.random.default_rng(seed)
    tree = make_tree()
    values = tree_values(tree)
    ds = TruthDiscoveryDataset(tree, [Record("o0", "s0", values[0])])
    _ = ds.columnar().pairs
    for step in range(60):
        obj = f"o{int(rng.integers(8))}"
        roll = rng.random()
        if roll < 0.55 and obj in ds._records_by_object:
            cands = ds.candidates(obj)
            ds.add_answer(
                Answer(obj, f"w{int(rng.integers(4))}", cands[int(rng.integers(len(cands)))])
            )
        else:
            # Fresh source per step: a genuine append (an in-place overwrite
            # changing an existing source's value can strand earlier answers
            # outside Vo, which no encoding — cold or spliced — can express).
            ds.add_record(
                Record(obj, f"s{step}", values[int(rng.integers(len(values)))])
            )
        if rng.random() < 0.3:
            col_now = ds.columnar()
            assert_pairs_equal(col_now.pairs, ColumnarClaims(ds).pairs, col_now)
    col_now = ds.columnar()
    assert_pairs_equal(col_now.pairs, ColumnarClaims(ds).pairs, col_now)


def test_claimant_renumbering_splices_through_key_permutation(monkeypatch):
    """An insert that re-ranks the claimant decode table (a brand-new worker
    answering the very first object) is still spliced: claimant ids only
    enter the expansion through the confusion keys, and the renumbering is
    applied as a permutation of the (small) key tables."""
    ds = make_birthplaces(size=120, seed=7)
    col = ds.columnar()
    _ = col.pairs
    counter = _count_pair_builds(monkeypatch)
    first_obj = ds.objects[0]
    ds.add_answer(Answer(first_obj, "brand_new_worker", ds.candidates(first_obj)[0]))
    appended = ds.columnar()
    assert appended.claimants != col.claimants + [("worker", "brand_new_worker")]
    assert appended._pairs is not None
    assert counter["builds"] == 0
    assert_pairs_equal(appended.pairs, ColumnarClaims(ds).pairs, appended)


def test_new_candidate_value_splices_slot_growth(monkeypatch):
    """A record growing a candidate set moves every later slot — the delta
    the old splice could not express and the cold-fallback cliff this PR
    removes. The expansion is now carried across slot growth: layout arrays
    are recomputed from the (O(delta)-spliced) encoding, old cell ids are
    relocated onto the surviving rows, and only genuinely fresh pairs pay a
    key lookup. No np.unique factorization runs, and the observable counter
    records the splice instead of a silent rebuild."""
    from repro.data.columnar import PAIR_EXPANSION_STATS

    ds = make_birthplaces(size=120, seed=7)
    col = ds.columnar()
    _ = col.pairs
    counter = _count_pair_builds(monkeypatch)
    before = dict(PAIR_EXPANSION_STATS)
    first_obj = ds.objects[0]
    tree_value = next(
        v for v in ds.hierarchy.non_root_nodes()
        if v not in ds.candidates(first_obj)
    )
    ds.add_record(Record(first_obj, ds.sources_of(first_obj)[0] + "_alt", tree_value))
    grown = ds.columnar()
    assert grown._pairs is not None  # spliced eagerly, not dropped
    assert counter["builds"] == 0
    assert (
        PAIR_EXPANSION_STATS["spliced_slot_growth"]
        == before["spliced_slot_growth"] + 1
    )
    assert PAIR_EXPANSION_STATS["cold_builds"] == before["cold_builds"]
    assert_pairs_equal(grown.pairs, ColumnarClaims(ds).pairs, grown)

"""Tests for the QASCA, ME and MB task-assignment baselines."""

import pytest

from repro import (
    Answer,
    Docs,
    MaxEntropyAssigner,
    MbAssigner,
    QascaAssigner,
    TDHModel,
    Vote,
    make_birthplaces,
)
from repro.assignment.base import worker_accuracy
from repro.assignment.entropy import confidence_entropy

import numpy as np


@pytest.fixture(scope="module")
def dataset():
    return make_birthplaces(size=120, seed=7)


@pytest.fixture(scope="module")
def tdh_result(dataset):
    return TDHModel(max_iter=20, tol=1e-4).fit(dataset)


ASSIGNERS = [
    lambda: QascaAssigner(seed=0),
    lambda: MaxEntropyAssigner(),
    lambda: MbAssigner(),
]


@pytest.fixture(params=ASSIGNERS, ids=["QASCA", "ME", "MB"])
def any_assigner(request):
    return request.param()


class TestCommonContract:
    def test_respects_k(self, any_assigner, dataset, tdh_result):
        assignment = any_assigner.assign(dataset, tdh_result, ["w0", "w1"], 3)
        assert all(len(tasks) <= 3 for tasks in assignment.values())

    def test_no_duplicates_across_workers(self, any_assigner, dataset, tdh_result):
        assignment = any_assigner.assign(dataset, tdh_result, ["w0", "w1", "w2"], 4)
        flat = [obj for tasks in assignment.values() for obj in tasks]
        assert len(flat) == len(set(flat))

    def test_only_known_objects(self, any_assigner, dataset, tdh_result):
        assignment = any_assigner.assign(dataset, tdh_result, ["w0"], 5)
        assert set(assignment["w0"]) <= set(dataset.objects)

    def test_skips_answered_objects(self, any_assigner, dataset, tdh_result):
        ds = dataset.copy()
        first = any_assigner.assign(ds, tdh_result, ["w0"], 3)
        for obj in first["w0"]:
            ds.add_answer(Answer(obj, "w0", ds.candidates(obj)[0]))
        second = any_assigner.assign(ds, tdh_result, ["w0"], 3)
        assert not set(first["w0"]) & set(second["w0"])

    def test_works_with_non_probabilistic_result(self, any_assigner, dataset):
        vote_result = Vote().fit(dataset)
        assignment = any_assigner.assign(dataset, vote_result, ["w0"], 3)
        assert len(assignment["w0"]) == 3


class TestEntropy:
    def test_uniform_has_max_entropy(self):
        assert confidence_entropy(np.array([0.5, 0.5])) == pytest.approx(np.log(2))

    def test_point_mass_has_zero_entropy(self):
        assert confidence_entropy(np.array([1.0, 0.0])) == 0.0

    def test_unnormalised_input_ok(self):
        assert confidence_entropy(np.array([2.0, 2.0])) == pytest.approx(np.log(2))

    def test_zero_vector(self):
        assert confidence_entropy(np.zeros(3)) == 0.0

    def test_me_picks_most_uncertain(self, dataset, tdh_result):
        assignment = MaxEntropyAssigner().assign(dataset, tdh_result, ["w0"], 1)
        chosen = assignment["w0"][0]
        chosen_entropy = confidence_entropy(tdh_result.confidences[chosen])
        max_entropy = max(
            confidence_entropy(vec) for vec in tdh_result.confidences.values()
        )
        assert chosen_entropy == pytest.approx(max_entropy)


class TestQasca:
    def test_improvement_zero_for_single_candidate(self, dataset, tdh_result):
        single = [o for o in dataset.objects if len(dataset.candidates(o)) == 1]
        if not single:
            pytest.skip("no single-candidate object in this instance")
        q = QascaAssigner(seed=0)
        assert q.improvement(dataset, tdh_result, single[0], "w0") == 0.0

    def test_seed_reproducible(self, dataset, tdh_result):
        a1 = QascaAssigner(seed=42).assign(dataset, tdh_result, ["w0"], 5)
        a2 = QascaAssigner(seed=42).assign(dataset, tdh_result, ["w0"], 5)
        assert a1 == a2


class TestMb:
    def test_entropy_reduction_nonnegative(self, dataset, tdh_result):
        mb = MbAssigner()
        for obj in dataset.objects[:20]:
            assert mb.expected_entropy_reduction(tdh_result, obj, "w0") >= -1e-9

    def test_uses_domain_quality_with_docs(self, dataset):
        docs_result = Docs(max_iter=10).fit(dataset)
        mb = MbAssigner()
        assignment = mb.assign(dataset, docs_result, ["w0"], 3)
        assert len(assignment["w0"]) == 3


class TestWorkerAccuracyDispatch:
    def test_tdh_psi_used(self, dataset, tdh_result):
        # Unseen worker -> falls back to default.
        assert worker_accuracy(tdh_result, "ghost", default=0.42) == 0.42

    def test_honesty_used_for_lca(self, dataset):
        from repro import GuessLca

        result = GuessLca(max_iter=5).fit(dataset)
        # Sources' honesty is keyed directly; workers via ("worker", w).
        accuracy = worker_accuracy(result, "nonexistent", default=0.33)
        assert accuracy == 0.33

"""Durability: the write-ahead journal, crash recovery, and the fault matrix.

Four layers:

1. **Journal unit level** — frame round-trips, magic/closed-handle/fsync
   policy edges, scan/truncate semantics on hand-damaged files.
2. **The kill matrix** (the tentpole property): a seeded write stream is
   driven through a journaled service while a :class:`FaultInjector` kills
   the run at *every* named injection site × hit number. Whatever the crash
   point, ``recover()`` must serve **exactly** the truths of a cold fit of
   the journaled accepted prefix — compared bitwise against
   ``rebuild_dataset`` of the very file the crash left behind — with dense
   epochs and non-regressing version stamps across the restart.
3. **Torn tails and flipped bytes** — random byte-offset truncation and
   mid-file corruption cost exactly the damaged record (counted in
   ``truncated_records``); everything after a mid-file flip still replays.
4. **Liveness** — reads stay responsive while a slow fit runs off-loop
   (and the same harness *detects* the blocking when fits are forced back
   on-loop), and a fail-stopped worker refuses writes loudly instead of
   queueing them into nowhere.
"""

from __future__ import annotations

import asyncio
import random
import time

import numpy as np
import pytest

from repro.data.model import Answer, DatasetError, Record
from repro.datasets import make_heritages
from repro.inference import TDHModel
from repro.serving import (
    FaultInjector,
    InjectedFault,
    InjectedTornWrite,
    JournalError,
    ServiceClosed,
    TruthService,
    WriteAheadJournal,
    rebuild_dataset,
    recover,
    scan_journal,
    truncate_torn_tail,
)
from repro.serving.journal import MAGIC, decode_claim, encode_claim

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def _sparse_heritages():
    return make_heritages(size=160, n_sources=350, seed=11)


def _small():
    return make_heritages(size=24, n_sources=40, seed=2)


def _model():
    return TDHModel(max_iter=60, tol=1e-7, use_columnar=True, incremental=True)


def _cold():
    return TDHModel(max_iter=60, tol=1e-7, use_columnar=True)


def _seeded_writes(dataset, n, seed, n_workers=5, p_truth=0.7):
    """Same construction as tests/test_serving.py: a seeded crowd round."""
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    writes = []
    for i in range(n):
        obj = objects[int(rng.integers(len(objects)))]
        ctx = dataset.context(obj)
        truth = dataset.gold.get(obj)
        if truth is not None and truth in ctx.index and rng.random() < p_truth:
            value = truth
        else:
            value = ctx.values[int(rng.integers(len(ctx.values)))]
        writes.append(Answer(obj, f"sw{i % n_workers}", value))
    return writes


def run(coro):
    return asyncio.run(coro)


def _sweep(tickets):
    """Retrieve every resolved ticket so no 'exception never retrieved'
    reaches the loop's exception handler at GC time."""
    for ticket in tickets:
        if ticket is None:
            continue
        if ticket.done():
            if not ticket.cancelled():
                ticket.exception()
        else:
            ticket.cancel()


# ---------------------------------------------------------------------------
# journal unit level
# ---------------------------------------------------------------------------
def test_journal_round_trip_and_counters(tmp_path):
    path = tmp_path / "j.wal"
    dataset = _small()
    journal = WriteAheadJournal(path, fsync="always")
    assert journal.is_fresh
    journal.append_base(dataset)
    obj = dataset.objects[0]
    value = dataset.candidates(obj)[0]
    claims = [Answer(obj, "w0", value), Record(obj, "src-x", value)]
    assert journal.append_batch(claims) == 0
    assert journal.append_batch([Answer(obj, "w1", value)]) == 1
    journal.append_checkpoint(
        epoch=1, dataset_version=7, records_version=3, applied_writes=3
    )
    assert journal.fsyncs >= journal.records_appended == 4
    journal.close()
    assert journal.closed

    scan = scan_journal(path)
    assert [e["kind"] for e in scan.entries] == ["base", "batch", "batch", "checkpoint"]
    assert scan.truncated_records == 0 and scan.truncated_bytes == 0
    assert scan.valid_end == scan.file_bytes
    assert scan.base["records"] == [
        [r.object, r.source, r.value] for r in dataset.iter_records()
    ]
    assert [decode_claim(i) for i in scan.entries[1]["writes"]] == claims
    assert scan.last_checkpoint["epoch"] == 1
    assert truncate_torn_tail(path, scan) == 0  # clean file: nothing to cut


def test_journal_refuses_bad_policy_closed_handle_and_foreign_files(tmp_path):
    with pytest.raises(ValueError, match="fsync must be one of"):
        WriteAheadJournal(tmp_path / "x.wal", fsync="sometimes")
    journal = WriteAheadJournal(tmp_path / "x.wal")
    journal.close()
    with pytest.raises(JournalError, match="closed"):
        journal.append_batch([])
    foreign = tmp_path / "notes.txt"
    foreign.write_bytes(b"just some text, definitely not a journal")
    with pytest.raises(JournalError, match="not a truth-service journal"):
        WriteAheadJournal(foreign)
    with pytest.raises(JournalError, match="bad magic"):
        scan_journal(foreign)
    with pytest.raises(JournalError, match="cannot read"):
        scan_journal(tmp_path / "never-written.wal")


def test_encode_decode_claim_edges():
    answer = Answer("o", "w", "v")
    record = Record("o", "s", "v")
    assert decode_claim(encode_claim(answer)) == answer
    assert decode_claim(encode_claim(record)) == record
    with pytest.raises(TypeError, match="cannot journal"):
        encode_claim(("o", "s", "v"))
    with pytest.raises(JournalError, match="unknown write tag"):
        decode_claim(["z", "o", "s", "v"])


def test_fsync_policy_counts(tmp_path):
    dataset = _small()
    counts = {}
    for policy in ("always", "checkpoint", "never"):
        journal = WriteAheadJournal(tmp_path / f"{policy}.wal", fsync=policy)
        journal.append_base(dataset)
        journal.append_batch([Answer(dataset.objects[0], "w", dataset.candidates(dataset.objects[0])[0])])
        journal.append_checkpoint(
            epoch=1, dataset_version=1, records_version=0, applied_writes=1
        )
        counts[policy] = journal.fsyncs
        journal.abort()  # no final sync: the policy's count stays visible
    assert counts["always"] == 3  # every record
    assert counts["checkpoint"] == 1  # the checkpoint only
    assert counts["never"] == 0


def test_abort_after_partial_append_leaves_a_truncatable_tail(tmp_path):
    """`abort()` right after a torn append: the file carries a partial
    frame, the handle is dead, and the counters never claimed the record."""
    path = tmp_path / "partial.wal"
    dataset = _small()
    faults = FaultInjector(seed=13)
    journal = WriteAheadJournal(path, fsync="always", faults=faults)
    journal.append_base(dataset)
    obj = dataset.objects[0]
    claim = Answer(obj, "w0", dataset.candidates(obj)[0])
    journal.append_batch([claim])
    appended_before = journal.records_appended
    bytes_before = journal.bytes_appended
    faults.arm("journal.torn", hit=faults.counts["journal.torn"] + 1, torn=True)
    with pytest.raises(InjectedTornWrite):
        journal.append_batch([Answer(obj, "w1", dataset.candidates(obj)[0])])
    # The partial frame was never accounted as appended...
    assert journal.records_appended == appended_before
    assert journal.bytes_appended == bytes_before
    # ... but seq was consumed only by the *complete* append.
    assert journal.batch_seq == 1
    journal.abort()
    assert journal.closed
    with pytest.raises(JournalError, match="closed"):
        journal.append_batch([claim])
    # The file really is longer than its valid prefix; truncation heals it.
    scan = scan_journal(path)
    assert scan.truncated_records == 1
    assert scan.truncated_bytes > 0
    assert scan.valid_end < scan.file_bytes
    assert [e["kind"] for e in scan.entries] == ["base", "batch"]
    cut = truncate_torn_tail(path, scan)
    assert cut == scan.truncated_bytes
    healed = scan_journal(path)
    assert healed.truncated_records == 0
    assert healed.valid_end == healed.file_bytes
    assert [decode_claim(w) for w in healed.entries[1]["writes"]] == [claim]


def test_stats_survive_close(tmp_path):
    """`stats()` is a post-mortem tool too: it must work on a closed (or
    aborted) journal and keep reporting the on-disk size."""
    path = tmp_path / "postmortem.wal"
    dataset = _small()
    journal = WriteAheadJournal(path, fsync="checkpoint")
    journal.append_base(dataset)
    obj = dataset.objects[0]
    journal.append_batch([Answer(obj, "w0", dataset.candidates(obj)[0])])
    live = journal.stats()
    assert live["closed"] is False
    journal.close()
    dead = journal.stats()
    assert dead["closed"] is True
    assert dead["records_appended"] == live["records_appended"] == 2
    assert dead["bytes_appended"] == live["bytes_appended"]
    assert dead["file_bytes"] == path.stat().st_size > 0
    assert dead["fsync"] == "checkpoint"
    journal.close()  # idempotent
    assert journal.stats()["closed"] is True
    # And on a file deleted out from under it, stats degrade to zero bytes
    # instead of raising — it is a diagnostics call.
    path.unlink()
    assert journal.stats()["file_bytes"] == 0


def test_fsync_never_torn_tail_accounting(tmp_path):
    """Under ``fsync="never"`` a torn tail can span *several* buffered
    records. Scan accounting must charge every lost record, and
    ``truncate_torn_tail`` must cut exactly the invalid span."""
    path = tmp_path / "never.wal"
    dataset = _small()
    journal = WriteAheadJournal(path, fsync="never")
    journal.append_base(dataset)
    obj = dataset.objects[0]
    value = dataset.candidates(obj)[0]
    for i in range(4):
        journal.append_batch([Answer(obj, f"w{i}", value)])
    journal.abort()  # simulated power cut: nothing was ever fsynced
    assert journal.fsyncs == 0
    # Flush still happened per-append (write() to the page cache), so the
    # frames are in the file; hand-cut the tail 3 bytes into the
    # second-to-last frame to model the cache half-making it to disk —
    # one record torn mid-frame, one vanished entirely.
    blob = path.read_bytes()
    clean = scan_journal(path)
    assert len(clean.entries) == 5
    torn_at = clean.spans[3][0] + 3
    path.write_bytes(blob[:torn_at])
    scan = scan_journal(path)
    assert len(scan.entries) == 3
    assert scan.truncated_records == 1  # one contiguous invalid span
    assert scan.valid_end == clean.spans[2][1]
    assert scan.truncated_bytes == torn_at - scan.valid_end
    cut = truncate_torn_tail(path, scan)
    assert cut == scan.truncated_bytes
    healed = scan_journal(path)
    assert healed.truncated_records == 0
    assert healed.file_bytes == scan.valid_end
    assert [e["kind"] for e in healed.entries] == ["base", "batch", "batch"]
    # The healed journal replays: exactly the surviving writes.
    _rebuilt, stats = rebuild_dataset(healed)
    assert stats["batches"] == 2
    assert stats["applied"] == 2


# ---------------------------------------------------------------------------
# the kill matrix: every injection site, recovered == cold(journaled prefix)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("hit", [1, 2, 3])
@pytest.mark.parametrize("site", FaultInjector.SITES)
def test_kill_matrix_recovers_exactly_the_journaled_prefix(tmp_path, site, hit):
    """Crash at (site, hit); the recovered service must serve exactly a cold
    fit of ``rebuild_dataset`` of the file the crash left, resume with dense
    epochs, and keep serving fresh writes."""
    path = tmp_path / "svc.wal"
    stream_src = _sparse_heritages()

    async def scenario():
        base = _sparse_heritages()
        faults = FaultInjector(seed=13).arm(site, hit)
        journal = WriteAheadJournal(path, fsync="always", faults=faults)
        service = TruthService(
            base, _model(), batch_max=64, journal=journal, faults=faults
        )
        tickets = []
        crashed = False
        pre_crash = None
        try:
            await service.start(run_worker=False)
            pre_crash = service.latest
        except Exception:
            crashed = True
        if not crashed:
            for round_no in range(3):
                for a in _seeded_writes(stream_src, 12, seed=round_no):
                    tickets.append(
                        await service.append_answer(a.object, a.worker, a.value)
                    )
                if round_no == 1:  # journaled, then rejected — live and on replay
                    tickets.append(
                        await service.append_answer(
                            stream_src.objects[0], "bad", "no-such-value"
                        )
                    )
                try:
                    await service.worker.step()
                    pre_crash = service.latest
                except Exception:
                    crashed = True
                    break
        service.crash()
        _sweep(tickets)

        scan = scan_journal(path)
        if scan.base is None:
            # The crash predated base durability: nothing recoverable, and
            # recovery must refuse loudly instead of serving an empty corpus.
            with pytest.raises(JournalError, match="no decodable base"):
                await recover(path, _model(), run_worker=False)
            return None

        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        confidences = {
            o: recovered.latest.result.confidences[o] for o in recovered.latest.truths
        }
        # the oracle: the journaled prefix as it stood at recovery time —
        # captured now, before the fresh round below extends the journal
        expected_ds, replay = rebuild_dataset(scan_journal(path))
        # the recovered service keeps serving: a fresh round lands at the
        # next dense epoch
        fresh_tickets = []
        for a in _seeded_writes(stream_src, 8, seed=99):
            fresh_tickets.append(
                await recovered.append_answer(a.object, a.worker, a.value)
            )
        next_snap = await recovered.worker.step()
        _sweep(fresh_tickets)
        await recovered.stop()
        return (
            faults, crashed, pre_crash, report, reads, confidences,
            expected_ds, replay, next_snap,
        )

    out = run(scenario())
    if out is None:
        return
    (
        faults, crashed, pre_crash, report, reads, confidences,
        expected_ds, replay, next_snap,
    ) = out
    # a fired plan crashed the run; an unfired plan must have left it clean
    assert crashed == bool(faults.fired)

    expected = _cold().fit(expected_ds)
    assert {o: r.value for o, r in reads.items()} == expected.truths()
    for obj, conf in confidences.items():  # bitwise, not merely close
        assert np.array_equal(conf, expected.confidences[obj])
    assert report.writes_replayed == replay["applied"]
    assert report.writes_rejected == replay["rejected"]

    # dense epochs and non-regressing stamps across the restart
    stamps = {(r.epoch, r.dataset_version, r.records_version) for r in reads.values()}
    assert stamps == {
        (report.resume_epoch, expected_ds.version, expected_ds.records_version)
    }
    if pre_crash is not None:
        assert report.resume_epoch >= pre_crash.epoch
        assert expected_ds.version >= pre_crash.dataset_version
    assert next_snap.epoch == report.resume_epoch + 1


def test_clean_shutdown_recovery_replays_rejects_identically(tmp_path):
    """No faults at all: recover a cleanly stopped journal; replay rejects
    exactly the writes the live service rejected, and the recovered truths
    equal the live drained truths."""
    path = tmp_path / "clean.wal"
    stream_src = _sparse_heritages()

    async def scenario():
        base = _sparse_heritages()
        service = TruthService(
            base, _model(), batch_max=64, journal=WriteAheadJournal(path)
        )
        await service.start(run_worker=False)
        bad_tickets = []
        for round_no in range(3):
            for a in _seeded_writes(stream_src, 10, seed=round_no):
                await service.append_answer(a.object, a.worker, a.value)
            bad_tickets.append(
                await service.append_answer(
                    stream_src.objects[round_no], "bad", "not-a-candidate"
                )
            )
            await service.worker.step()
        live_final = service.latest
        await service.stop()
        for ticket in bad_tickets:
            with pytest.raises(DatasetError):
                ticket.result()

        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        await recovered.stop()
        return service, live_final, report, reads

    service, live_final, report, reads = run(scenario())
    assert service.metrics.writes_rejected == 3
    assert report.writes_rejected == 3  # identical rejections on replay
    assert report.writes_replayed == service.metrics.writes_applied
    assert report.truncated_records == 0 and report.tail_bytes_dropped == 0
    assert report.checkpoint_epoch == live_final.epoch == 3
    assert report.resume_epoch == 4
    assert {o: r.value for o, r in reads.items()} == live_final.truths


def test_double_recovery_keeps_epochs_dense(tmp_path):
    """Crash, recover, write, crash again, recover again: epochs stay dense
    across both restarts and the final truths equal the accepted stream."""
    path = tmp_path / "twice.wal"
    stream_src = _sparse_heritages()

    async def scenario():
        base = _sparse_heritages()
        service = TruthService(
            base, _model(), batch_max=64, journal=WriteAheadJournal(path)
        )
        await service.start(run_worker=False)
        for a in _seeded_writes(stream_src, 10, seed=0):
            await service.append_answer(a.object, a.worker, a.value)
        await service.worker.step()
        service.crash()  # epoch 1 published + checkpointed, then death

        first, report1 = await recover(path, _model(), run_worker=False)
        for a in _seeded_writes(stream_src, 10, seed=1):
            await first.append_answer(a.object, a.worker, a.value)
        snap = await first.worker.step()
        first.crash()

        second, report2 = await recover(path, _model(), run_worker=False)
        reads = second.get_truths()
        await second.stop()
        return report1, snap, report2, reads

    report1, snap, report2, reads = run(scenario())
    assert report1.resume_epoch == 2  # checkpoints 0 and 1 survived
    assert snap.epoch == 3
    assert report2.resume_epoch == 4  # ... and 2 (recovery publish) and 3
    assert report2.batches_replayed == 2
    expected_ds, _ = rebuild_dataset(scan_journal(path))
    assert {o: r.value for o, r in reads.items()} == _cold().fit(expected_ds).truths()


# ---------------------------------------------------------------------------
# torn tails & flipped bytes
# ---------------------------------------------------------------------------
def _clean_journaled_run(path, rounds=3, per_round=10):
    base = _sparse_heritages()
    stream_src = _sparse_heritages()

    async def scenario():
        service = TruthService(
            base, _model(), batch_max=64, journal=WriteAheadJournal(path, fsync="always")
        )
        await service.start(run_worker=False)
        for round_no in range(rounds):
            for a in _seeded_writes(stream_src, per_round, seed=round_no):
                await service.append_answer(a.object, a.worker, a.value)
            await service.worker.step()
        final = service.latest
        await service.stop()
        return final

    return run(scenario())


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_torn_tail_random_truncation_drops_only_the_torn_record(tmp_path, seed):
    path = tmp_path / "torn.wal"
    _clean_journaled_run(path)
    whole = scan_journal(path)
    assert whole.truncated_records == 0
    last_start, last_end = whole.spans[-1]
    cut = random.Random(seed).randrange(last_start + 1, last_end)
    with open(path, "r+b") as fh:
        fh.truncate(cut)

    torn = scan_journal(path)
    assert torn.entries == whole.entries[:-1]  # only the torn record is lost
    assert torn.truncated_records == 1
    assert torn.truncated_bytes == cut - last_start

    async def scenario():
        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        await recovered.stop()
        return report, reads

    report, reads = run(scenario())
    assert report.truncated_records == 1
    assert report.tail_bytes_dropped == cut - last_start
    expected_ds, _ = rebuild_dataset(scan_journal(path))
    assert {o: r.value for o, r in reads.items()} == _cold().fit(expected_ds).truths()
    # the tail was physically cut, then the recovered service's own initial
    # publish appended a fresh checkpoint right at the old valid end — the
    # file is whole again, no corrupt spans left behind
    healed = scan_journal(path)
    assert healed.truncated_records == 0
    assert healed.spans[-1][0] == torn.valid_end
    assert healed.entries[-1]["kind"] == "checkpoint"
    assert healed.entries[-1]["epoch"] == report.resume_epoch


def test_mid_file_flipped_byte_costs_exactly_that_record(tmp_path):
    path = tmp_path / "flip.wal"
    _clean_journaled_run(path)
    whole = scan_journal(path)
    victim = next(
        i for i, e in enumerate(whole.entries) if e["kind"] == "batch"
    )
    start, end = whole.spans[victim]
    buf = bytearray(path.read_bytes())
    flip_at = (start + end) // 2
    buf[flip_at] ^= 0xFF
    path.write_bytes(bytes(buf))

    damaged = scan_journal(path)
    assert len(damaged.entries) == len(whole.entries) - 1
    assert damaged.entries == whole.entries[:victim] + whole.entries[victim + 1 :]
    assert damaged.truncated_records == 1  # one contiguous corrupt span
    assert damaged.valid_end == whole.valid_end  # the tail still verifies

    async def scenario():
        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        await recovered.stop()
        return report, reads

    report, reads = run(scenario())
    assert report.truncated_records == 1
    assert report.tail_bytes_dropped == 0  # mid-file damage: nothing to cut
    assert report.batches_replayed == len(whole.batches) - 1
    expected_ds, _ = rebuild_dataset(scan_journal(path))
    assert {o: r.value for o, r in reads.items()} == _cold().fit(expected_ds).truths()


def test_corrupt_base_record_refuses_recovery(tmp_path):
    path = tmp_path / "nobase.wal"
    _clean_journaled_run(path, rounds=1)
    whole = scan_journal(path)
    start, end = whole.spans[0]
    buf = bytearray(path.read_bytes())
    buf[(start + end) // 2] ^= 0xFF
    path.write_bytes(bytes(buf))
    assert scan_journal(path).base is None
    with pytest.raises(JournalError, match="no decodable base"):
        rebuild_dataset(path)

    async def scenario():
        with pytest.raises(JournalError, match="no decodable base"):
            await recover(path, _model())

    run(scenario())


def test_garbage_between_magic_and_nothing_else(tmp_path):
    path = tmp_path / "garbage.wal"
    path.write_bytes(MAGIC + b"\xde\xad\xbe\xef" * 16)
    scan = scan_journal(path)
    assert scan.entries == [] and scan.truncated_records == 1
    assert truncate_torn_tail(path, scan) == 64
    assert path.read_bytes() == MAGIC


# ---------------------------------------------------------------------------
# liveness: off-loop fits, fail-stop refusal
# ---------------------------------------------------------------------------
def _max_read_gap(off_loop):
    """Drive one slow (0.5 s injected) refit with the worker task live and a
    reader polling; return the reader's worst inter-read wall-clock gap."""
    base = _sparse_heritages()

    async def scenario():
        faults = FaultInjector().arm("worker.fit", hit=2, delay=0.5)
        service = TruthService(
            base, _model(), faults=faults, off_loop_fits=off_loop
        )
        await service.start()
        obj = base.objects[0]
        await service.append_answer(obj, "slow", base.candidates(obj)[0])
        gaps = []
        t_prev = time.perf_counter()
        deadline = t_prev + 5.0
        while time.perf_counter() < deadline:
            # gap measured at the top so the iteration *after* a stalled
            # sleep still records the stall before the loop exits
            read = service.get_truth(obj)
            assert read.epoch >= 0
            now = time.perf_counter()
            gaps.append(now - t_prev)
            t_prev = now
            if service.latest.epoch != 0:
                break
            await asyncio.sleep(0.005)
        assert service.latest.epoch == 1  # the slow fit did land
        await service.stop()
        return max(gaps)

    return run(scenario())


def test_reads_stay_responsive_during_off_loop_fit():
    assert _max_read_gap(off_loop=True) < 0.25


def test_harness_detects_blocking_when_fits_run_on_loop():
    # control for the regression test above: the same 0.5 s fit forced back
    # onto the event loop must produce a visible reader stall.
    assert _max_read_gap(off_loop=False) >= 0.3


def test_failed_journal_append_fail_stops_and_refuses_writes(tmp_path):
    path = tmp_path / "failstop.wal"
    base = _sparse_heritages()

    async def scenario():
        faults = FaultInjector().arm("journal.append", hit=2)  # 1 = base record
        service = TruthService(
            base,
            _model(),
            journal=WriteAheadJournal(path, faults=faults),
            faults=faults,
        )
        await service.start()
        obj = base.objects[0]
        ticket = await service.append_answer(obj, "fs", base.candidates(obj)[0])
        with pytest.raises(InjectedFault, match="journal.append"):
            await ticket
        for _ in range(50):  # let the worker task finish dying
            if not service.stats()["worker_alive"]:
                break
            await asyncio.sleep(0.01)
        assert not service.stats()["worker_alive"]
        with pytest.raises(ServiceClosed, match="EM worker has stopped"):
            await service.append_answer(obj, "fs2", base.candidates(obj)[0])
        # reads survive the fail-stop: the last published snapshot serves on
        assert service.get_truth(obj).epoch == 0
        service.crash()

        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        await recovered.stop()
        return service, report, reads

    service, report, reads = run(scenario())
    assert service.metrics.journal_failures == 1
    assert service.metrics.worker_failures == 1
    assert report.batches_replayed == 0  # the batch never became durable
    expected_ds, _ = rebuild_dataset(scan_journal(path))
    assert {o: r.value for o, r in reads.items()} == _cold().fit(expected_ds).truths()


def test_crash_with_live_worker_mid_stream_recovers_a_prefix(tmp_path):
    path = tmp_path / "midstream.wal"
    base = _sparse_heritages()
    stream_src = _sparse_heritages()

    async def scenario():
        service = TruthService(
            base,
            _model(),
            batch_max=8,
            journal=WriteAheadJournal(path, fsync="always"),
        )
        await service.start()
        sent = 0
        for a in _seeded_writes(stream_src, 40, seed=4):
            await service.append_answer(a.object, a.worker, a.value)
            sent += 1
            if sent % 10 == 0:
                await asyncio.sleep(0.002)  # let some batches journal + land
        service.crash()  # kill-9 mid-stream: enqueued-but-unjournaled writes die

        recovered, report = await recover(path, _model(), run_worker=False)
        reads = recovered.get_truths()
        await recovered.stop()
        return sent, report, reads

    sent, report, reads = run(scenario())
    assert report.writes_replayed + report.writes_rejected <= sent
    expected_ds, _ = rebuild_dataset(scan_journal(path))
    assert {o: r.value for o, r in reads.items()} == _cold().fit(expected_ds).truths()


def test_recovery_report_round_trips_to_plain_dict(tmp_path):
    path = tmp_path / "report.wal"
    _clean_journaled_run(path, rounds=1)

    async def scenario():
        recovered, report = await recover(path, _model(), run_worker=False)
        await recovered.stop()
        return report

    report = run(scenario())
    as_dict = report.as_dict()
    assert as_dict["path"] == str(path)
    assert as_dict["batches_replayed"] == 1
    assert as_dict["resume_epoch"] == 2
    assert as_dict["replay_seconds"] > 0
    assert set(as_dict) >= {
        "entries",
        "writes_replayed",
        "writes_rejected",
        "truncated_records",
        "truncated_bytes",
        "tail_bytes_dropped",
        "checkpoint_epoch",
        "dataset_version",
        "records_version",
    }


def test_fault_injector_refuses_unknown_sites_and_bad_hits():
    faults = FaultInjector()
    with pytest.raises(ValueError, match="unknown injection site"):
        faults.arm("journal.reticulate")
    with pytest.raises(ValueError, match="hit must be"):
        faults.arm("worker.fit", hit=0)
    faults.arm("worker.fit", hit=2)
    assert faults.armed("worker.fit")
    assert faults.check("worker.fit") is None  # hit 1: not yet
    with pytest.raises(InjectedFault):
        faults.check("worker.fit")
    assert not faults.armed("worker.fit")  # one-shot
    assert faults.check("worker.fit") is None  # disarmed: clean passes
    assert faults.fired == [("worker.fit", 2)]
    assert faults.counts["worker.fit"] == 3

"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

import repro.experiments.common as common
from repro.experiments.__main__ import main

TINY = common.ExperimentScale(
    birthplaces_size=60,
    heritages_size=50,
    heritages_sources=60,
    rounds=2,
    workers=3,
    tasks_per_worker=2,
    em_iterations=5,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(common, "FAST", TINY)


class TestExperimentsCli:
    def test_no_argument_prints_menu(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out
        assert "table3" in out

    def test_single_experiment(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out
        assert "generalization tendencies" in out

    def test_table3_prints_both_datasets(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "BirthPlaces" in out and "Heritages" in out
        assert "TDH" in out and "VOTE" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonexistent"])

    def test_fig5_prints_reliability_comparison(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "phi_s1" in out and "t(s)" in out

"""Tests for the ``python -m repro`` command-line interface."""

import csv

import pytest

from repro.__main__ import ALGORITHMS, main
from repro.io import write_hierarchy_csv, write_records_csv, write_truths_csv


@pytest.fixture()
def csv_files(table1_dataset, tmp_path):
    records = tmp_path / "records.csv"
    hierarchy = tmp_path / "hierarchy.csv"
    gold = tmp_path / "gold.csv"
    write_records_csv(table1_dataset, records)
    write_hierarchy_csv(table1_dataset.hierarchy, hierarchy)
    write_truths_csv(table1_dataset.gold, gold)
    return {
        "records": str(records),
        "hierarchy": str(hierarchy),
        "gold": str(gold),
        "root": table1_dataset.hierarchy.root,
        "tmp": tmp_path,
    }


def _read_truths(path):
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)
        return dict(reader)


class TestCli:
    def test_tdh_end_to_end(self, csv_files, capsys):
        output = csv_files["tmp"] / "truths.csv"
        code = main(
            [
                "--records", csv_files["records"],
                "--hierarchy", csv_files["hierarchy"],
                "--gold", csv_files["gold"],
                "--root", csv_files["root"],
                "--output", str(output),
            ]
        )
        assert code == 0
        truths = _read_truths(output)
        assert truths["Statue of Liberty"] == "Liberty Island"
        captured = capsys.readouterr().out
        assert "Accuracy=" in captured

    def test_vote_algorithm(self, csv_files):
        output = csv_files["tmp"] / "truths.csv"
        code = main(
            [
                "--records", csv_files["records"],
                "--hierarchy", csv_files["hierarchy"],
                "--root", csv_files["root"],
                "--algorithm", "VOTE",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert len(_read_truths(output)) == 3

    def test_trust_output(self, csv_files):
        output = csv_files["tmp"] / "truths.csv"
        trust = csv_files["tmp"] / "trust.csv"
        main(
            [
                "--records", csv_files["records"],
                "--hierarchy", csv_files["hierarchy"],
                "--root", csv_files["root"],
                "--output", str(output),
                "--trust", str(trust),
            ]
        )
        with open(trust, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["source", "exact", "generalized", "wrong"]
        assert len(rows) == 6  # header + 5 sources
        for row in rows[1:]:
            phi = [float(x) for x in row[1:]]
            assert sum(phi) == pytest.approx(1.0, abs=1e-3)

    def test_trust_with_non_tdh_warns(self, csv_files, capsys):
        output = csv_files["tmp"] / "truths.csv"
        trust = csv_files["tmp"] / "trust.csv"
        main(
            [
                "--records", csv_files["records"],
                "--hierarchy", csv_files["hierarchy"],
                "--root", csv_files["root"],
                "--algorithm", "VOTE",
                "--output", str(output),
                "--trust", str(trust),
            ]
        )
        assert "requires --algorithm TDH" in capsys.readouterr().err

    def test_all_algorithms_runnable(self, csv_files):
        for name in ALGORITHMS:
            output = csv_files["tmp"] / f"truths_{name}.csv"
            code = main(
                [
                    "--records", csv_files["records"],
                    "--hierarchy", csv_files["hierarchy"],
                    "--root", csv_files["root"],
                    "--algorithm", name,
                    "--max-iter", "5",
                    "--output", str(output),
                ]
            )
            assert code == 0, name
            assert len(_read_truths(output)) == 3, name


class TestServeSubcommand:
    def test_serve_runs_demo_and_reports(self, capsys):
        code = main(
            [
                "serve",
                "--objects", "40",
                "--writes", "24",
                "--batch-max", "8",
                "--max-iter", "5",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("SERVING:") == 4
        assert "writes=24" in out
        assert "read p50=" in out

    def test_serve_is_deterministic_under_a_fixed_seed(self, capsys):
        argv = ["serve", "--objects", "30", "--writes", "10", "--max-iter", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Timing lines differ; the final truth line must not.
        assert first.splitlines()[-1] == second.splitlines()[-1]
        assert first.splitlines()[-1].startswith("SERVING: truth(")

    def test_serve_chaos_heals_deterministically(self, capsys):
        argv = [
            "serve",
            "--objects", "40",
            "--writes", "24",
            "--batch-max", "8",
            "--max-iter", "5",
            "--seed", "3",
            "--chaos",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out

        def semantic(out):
            return [
                line
                for line in out.splitlines()
                if line.startswith(("SERVING: chaos", "SERVING: truth("))
            ]
        chaos_line, truth_line = semantic(first)
        assert semantic(first) == semantic(second)
        # The injected schedule really fired: restarts and a quarantine
        # happened, and every non-quarantined write was acknowledged.
        assert "restarts=3" in chaos_line
        assert "quarantines=1" in chaos_line
        assert "quarantined_writes=1" in chaos_line
        assert "acknowledged=23/24" in chaos_line
        assert "lost=0" in chaos_line
        assert truth_line.startswith("SERVING: truth(")
        assert first.count("SERVING:") == 5  # the chaos summary line rides along

    def test_serve_chaos_with_journal_recovers_after_quarantine(self, tmp_path, capsys):
        argv = [
            "serve",
            "--objects", "40",
            "--writes", "24",
            "--batch-max", "8",
            "--max-iter", "40",  # converged: recovery agreement must be exact
            "--seed", "3",
            "--chaos",
            "--journal", str(tmp_path / "chaos.wal"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # The in-demo recovery round-trip replays the journal the chaos run
        # left behind — quarantine record included — and agrees exactly.
        recovery = [l for l in out.splitlines() if l.startswith("SERVING: recovery")]
        assert len(recovery) == 1
        assert "truths agree 40/40" in recovery[0]

    def test_serve_compact_bounds_the_journal(self, tmp_path, capsys):
        path = tmp_path / "compact.wal"
        argv = [
            "serve",
            "--objects", "30",
            "--writes", "16",
            "--batch-max", "4",
            # Converged fits (the default cap is enough): the live
            # incremental chain and the recovery's cold fit then land on the
            # same fixed point, so agreement must be exact.
            "--max-iter", "40",
            "--seed", "3",
            "--journal", str(path),
            "--compact",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        compaction = [l for l in first.splitlines() if l.startswith("SERVING: compaction")]
        assert len(compaction) == 1
        assert "-> 2 journal entries" in compaction[0]
        # Post-compaction recovery replays zero batches yet agrees fully.
        recovery = [l for l in first.splitlines() if l.startswith("SERVING: recovery")]
        assert "replayed 0 batches" in recovery[0]
        assert "truths agree 30/30" in recovery[0]
        # Deterministic: the compaction line (entry counts and byte sizes)
        # and the truth line repeat exactly under the same seed.
        path.unlink()
        assert main(argv) == 0
        second = capsys.readouterr().out

        def semantic(out):
            return [
                line
                for line in out.splitlines()
                if line.startswith(("SERVING: compaction", "SERVING: truth("))
            ]
        assert semantic(first) == semantic(second)

    def test_serve_compact_requires_a_journal(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--compact"])
        assert "--compact requires --journal" in capsys.readouterr().err

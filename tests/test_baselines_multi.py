"""Tests for the multi-truth algorithms (LTM, DART, LFC-MT; Table 5)."""

import numpy as np
import pytest

from repro import Dart, Hierarchy, LfcMT, Ltm, Record, TruthDiscoveryDataset


@pytest.fixture(params=[lambda: Ltm(max_iter=10), lambda: Dart(max_iter=10),
                        lambda: LfcMT(max_iter=10)],
                ids=["LTM", "DART", "LFC-MT"])
def multi_algo(request):
    return request.param()


class TestCommonContract:
    def test_truth_sets_cover_all_objects(self, multi_algo, table1_dataset):
        result = multi_algo.fit(table1_dataset)
        assert set(result.truth_sets()) == set(table1_dataset.objects)

    def test_truth_sets_nonempty_and_candidates_only(self, multi_algo, table1_dataset):
        result = multi_algo.fit(table1_dataset)
        for obj, values in result.truth_sets().items():
            assert values
            assert values <= set(table1_dataset.candidates(obj))

    def test_confidences_finite(self, multi_algo, table1_dataset):
        result = multi_algo.fit(table1_dataset)
        for vec in result.confidences.values():
            assert np.all(np.isfinite(vec))

    def test_runs_on_synthetic_data(self, multi_algo, small_heritages):
        result = multi_algo.fit(small_heritages)
        assert len(result.truth_sets()) == len(small_heritages.objects)


class TestLtm:
    def test_unanimous_value_is_true(self):
        h = Hierarchy()
        for v in ("A", "B"):
            h.add_edge(v, h.root)
        records = [Record(f"o{i}", f"s{j}", "A") for i in range(10) for j in range(4)]
        records += [Record("contested", "s0", "A"), Record("contested", "s1", "B")]
        ds = TruthDiscoveryDataset(h, records)
        result = Ltm(max_iter=15).fit(ds)
        for i in range(10):
            assert "A" in result.truth_sets()[f"o{i}"]

    def test_sensitivity_specificity_in_unit_interval(self, small_heritages):
        result = Ltm(max_iter=8).fit(small_heritages)
        assert all(0 < s < 1 for s in result.sensitivity.values())
        assert all(0 < s < 1 for s in result.specificity.values())

    def test_threshold_controls_set_size(self, table1_dataset):
        loose = Ltm(max_iter=10, threshold=0.1).fit(table1_dataset)
        strict = Ltm(max_iter=10, threshold=0.9).fit(table1_dataset)
        loose_total = sum(len(v) for v in loose.truth_sets().values())
        strict_total = sum(len(v) for v in strict.truth_sets().values())
        assert loose_total >= strict_total


class TestDart:
    def test_recall_heavy_vs_ltm(self, small_heritages):
        """DART should emit at least as many values as LTM (Table 5 shape)."""
        dart_sets = Dart(max_iter=10).fit(small_heritages).truth_sets()
        ltm_sets = Ltm(max_iter=10).fit(small_heritages).truth_sets()
        dart_total = sum(len(v) for v in dart_sets.values())
        ltm_total = sum(len(v) for v in ltm_sets.values())
        assert dart_total >= ltm_total

    def test_ancestor_not_penalised(self, table1_dataset):
        """Claiming 'Liberty Island' must not count against 'NY' being true."""
        result = Dart(max_iter=15).fit(table1_dataset)
        sets = result.truth_sets()["Statue of Liberty"]
        assert "NY" in sets or "Liberty Island" in sets


class TestLfcMT:
    def test_sets_are_ancestor_closed_within_candidates(self, table1_dataset):
        result = LfcMT(max_iter=10).fit(table1_dataset)
        hierarchy = table1_dataset.hierarchy
        for obj, values in result.truth_sets().items():
            candidates = set(table1_dataset.candidates(obj))
            for value in values:
                for ancestor in hierarchy.ancestors(value):
                    if ancestor in candidates:
                        assert ancestor in values

    def test_includes_argmax(self, table1_dataset):
        result = LfcMT(max_iter=10, threshold=0.99).fit(table1_dataset)
        for obj, values in result.truth_sets().items():
            assert result.truth(obj) in values

"""Tests for the NumericTdh wrapper and the AskIt assigner."""

import pytest

from repro import AskItAssigner, TDHModel, make_birthplaces
from repro.datasets import make_stock_claims
from repro.eval import evaluate_numeric
from repro.inference import NumericTdh


class TestNumericTdh:
    def test_fit_returns_float_truths(self):
        claims, gold = make_stock_claims("eps", n_objects=40, seed=3)
        estimates = NumericTdh().fit(claims)
        assert set(estimates) == set(claims)
        assert all(isinstance(v, float) for v in estimates.values())

    def test_truths_are_claimed_values(self):
        claims, _ = make_stock_claims("eps", n_objects=30, seed=3)
        ntdh = NumericTdh(max_digits=4)
        estimates = ntdh.fit(claims)
        from repro.hierarchy import rounding_chain

        for obj, estimate in estimates.items():
            canonicals = set()
            for claim in claims[obj].values():
                canonicals.update(rounding_chain(float(claim), max_digits=4))
            assert estimate in canonicals

    def test_accuracy_close_to_truth(self):
        claims, gold = make_stock_claims("open_price", n_objects=50, seed=3)
        estimates = NumericTdh().fit(claims)
        report = evaluate_numeric(estimates, gold)
        assert report.relative_error < 0.05

    def test_confidence_after_fit(self):
        claims, _ = make_stock_claims("eps", n_objects=10, seed=3)
        ntdh = NumericTdh()
        ntdh.fit(claims)
        obj = next(iter(claims))
        confidence = ntdh.confidence(obj)
        assert sum(confidence.values()) == pytest.approx(1.0, abs=1e-6)

    def test_confidence_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NumericTdh().confidence("x")

    def test_empty_claims_rejected(self):
        with pytest.raises(ValueError):
            NumericTdh().fit({})

    def test_custom_model(self):
        claims, _ = make_stock_claims("eps", n_objects=10, seed=3)
        ntdh = NumericTdh(model=TDHModel(max_iter=3, tol=1e-2))
        assert len(ntdh.fit(claims)) == 10


class TestAskIt:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = make_birthplaces(size=100, seed=7)
        return dataset, TDHModel(max_iter=15, tol=1e-4).fit(dataset)

    def test_respects_k(self, fitted):
        dataset, result = fitted
        assignment = AskItAssigner().assign(dataset, result, ["w0", "w1"], 3)
        assert all(len(tasks) <= 3 for tasks in assignment.values())

    def test_no_duplicates_by_default(self, fitted):
        dataset, result = fitted
        assignment = AskItAssigner().assign(dataset, result, ["w0", "w1"], 4)
        flat = [obj for tasks in assignment.values() for obj in tasks]
        assert len(flat) == len(set(flat))

    def test_duplicates_allowed_when_enabled(self, fitted):
        dataset, result = fitted
        assignment = AskItAssigner(allow_duplicates=True).assign(
            dataset, result, ["w0", "w1"], 1
        )
        # Both workers get the single most uncertain object.
        assert assignment["w0"] == assignment["w1"]

    def test_picks_most_uncertain_per_worker(self, fitted):
        from repro.assignment.entropy import confidence_entropy

        dataset, result = fitted
        assignment = AskItAssigner().assign(dataset, result, ["w0"], 1)
        chosen_entropy = confidence_entropy(result.confidences[assignment["w0"][0]])
        max_entropy = max(
            confidence_entropy(v) for v in result.confidences.values()
        )
        assert chosen_entropy == pytest.approx(max_entropy)

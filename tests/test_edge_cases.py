"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro import (
    Answer,
    EAIAssigner,
    Hierarchy,
    MaxEntropyAssigner,
    Record,
    TDHModel,
    TruthDiscoveryDataset,
    Vote,
)
from repro.crowd import CrowdSimulator, SimulatedWorker


@pytest.fixture()
def chain_hierarchy():
    h = Hierarchy()
    h.add_path(["A", "B", "C", "D"])
    return h


class TestDegenerateDatasets:
    def test_empty_dataset_fits_to_empty_result(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(chain_hierarchy, [])
        result = TDHModel(max_iter=5).fit(ds)
        assert result.truths() == {}

    def test_single_record_dataset(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(chain_hierarchy, [Record("o", "s", "D")])
        result = TDHModel().fit(ds)
        assert result.truth("o") == "D"

    def test_all_candidates_on_one_chain(self, chain_hierarchy):
        """Every candidate is an ancestor of the deepest one: the case-3 slot
        count |Vo| - |Go| - 1 hits zero for the deepest truth."""
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [
                Record("o", "s1", "D"),
                Record("o", "s2", "C"),
                Record("o", "s3", "B"),
                Record("o", "s4", "A"),
            ],
        )
        result = TDHModel().fit(ds)
        assert result.truth("o") in {"A", "B", "C", "D"}
        vec = result.confidences["o"]
        assert np.all(np.isfinite(vec))
        assert vec.sum() == pytest.approx(1.0, abs=1e-6)

    def test_unanimous_chain_claims_pick_specific(self, chain_hierarchy):
        """Multiple sources claiming D plus one claiming B: D should win — B
        is consistent with D being true."""
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [
                Record("o", "s1", "D"),
                Record("o", "s2", "D"),
                Record("o", "s3", "B"),
            ],
        )
        result = TDHModel().fit(ds)
        assert result.truth("o") == "D"

    def test_many_identical_objects(self, chain_hierarchy):
        records = []
        for i in range(50):
            records.append(Record(f"o{i}", "s1", "D"))
            records.append(Record(f"o{i}", "s2", "B"))
        ds = TruthDiscoveryDataset(chain_hierarchy, records)
        result = TDHModel().fit(ds)
        truths = set(result.truths().values())
        assert truths == {"D"}  # generalized B supports D

    def test_deep_hierarchy_does_not_overflow(self):
        h = Hierarchy()
        path = [f"level{i}" for i in range(60)]
        h.add_path(path)
        ds = TruthDiscoveryDataset(
            h, [Record("o", "s1", path[-1]), Record("o", "s2", path[30])]
        )
        result = TDHModel().fit(ds)
        assert result.truth("o") == path[-1]


class TestSimulatorEdgeCases:
    def test_more_tasks_than_objects(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [Record("o1", "s1", "D"), Record("o2", "s1", "B")],
            gold={"o1": "D", "o2": "B"},
        )
        sim = CrowdSimulator(
            ds,
            TDHModel(max_iter=5),
            MaxEntropyAssigner(),
            [SimulatedWorker("w", p_exact=0.9)],
            seed=1,
        )
        history = sim.run(rounds=2, tasks_per_worker=10)
        assert history.final.accuracy >= 0.0  # no crash; nothing to assign twice

    def test_worker_answers_every_object_then_idles(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [Record("o1", "s1", "D")],
            gold={"o1": "D"},
        )
        sim = CrowdSimulator(
            ds, Vote(), MaxEntropyAssigner(), [SimulatedWorker("w", 0.9)], seed=1
        )
        history = sim.run(rounds=3, tasks_per_worker=5)
        # Only one object exists; after round 1 the worker has answered it.
        assert sum(r.answers_collected for r in history.records) == 1

    def test_eai_with_all_objects_answered(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [Record("o1", "s1", "D"), Record("o1", "s2", "B")],
        )
        ds.add_answer(Answer("o1", "w", "D"))
        result = TDHModel(max_iter=5).fit(ds)
        assignment = EAIAssigner().assign(ds, result, ["w"], 3)
        assert assignment["w"] == []


class TestNumericEdgeCases:
    def test_zero_values_in_numeric_hierarchy(self):
        from repro.hierarchy import build_numeric_hierarchy

        h, canonical = build_numeric_hierarchy([0.0, 1.5, 2.25])
        h.validate()
        assert canonical[0.0] == 0.0

    def test_negative_values(self):
        from repro.hierarchy import build_numeric_hierarchy, rounding_chain

        chain = rounding_chain(-605.196, max_digits=6, min_digits=3)
        assert chain == [-605.196, -605.2, -605.0]
        h, canonical = build_numeric_hierarchy([-605.196, -605.2, 605.196])
        h.validate()
        assert h.is_ancestor(-605.2, canonical[-605.196])

    def test_huge_and_tiny_magnitudes(self):
        from repro.hierarchy import build_numeric_hierarchy

        h, _ = build_numeric_hierarchy([1.23e12, 4.56e-9, 7.0])
        h.validate()


class TestHostileInputs:
    def test_answer_for_unknown_object_rejected(self, chain_hierarchy):
        ds = TruthDiscoveryDataset(chain_hierarchy, [Record("o", "s", "D")])
        from repro.data import DatasetError

        with pytest.raises(DatasetError):
            ds.add_answer(Answer("ghost", "w", "D"))

    def test_tuple_valued_object_ids(self, chain_hierarchy):
        """Scaled datasets use (obj, k) tuples as ids; everything must cope."""
        ds = TruthDiscoveryDataset(
            chain_hierarchy,
            [Record(("o", 1), "s1", "D"), Record(("o", 1), "s2", "B")],
            gold={("o", 1): "D"},
        )
        result = TDHModel(max_iter=5).fit(ds)
        assert result.truth(("o", 1)) == "D"

    def test_numeric_value_labels(self):
        """Hierarchy nodes may be floats (numeric datasets)."""
        h = Hierarchy()
        h.add_path([600.0, 605.0, 605.2])
        ds = TruthDiscoveryDataset(
            h, [Record("o", "s1", 605.2), Record("o", "s2", 605.0)]
        )
        result = TDHModel().fit(ds)
        assert result.truth("o") == 605.2

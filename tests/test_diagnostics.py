"""Tests for the EM diagnostics (Eq. 8 objective)."""

import numpy as np
import pytest

from repro import TDHModel, make_birthplaces
from repro.inference.diagnostics import (
    _log_dirichlet_pdf,
    log_likelihood,
    log_posterior,
    objective_trace,
)


class TestDirichletPdf:
    def test_uniform_dirichlet_is_flat(self):
        alpha = np.array([1.0, 1.0, 1.0])
        a = _log_dirichlet_pdf(np.array([0.5, 0.3, 0.2]), alpha)
        b = _log_dirichlet_pdf(np.array([0.2, 0.3, 0.5]), alpha)
        assert a == pytest.approx(b)

    def test_mode_has_higher_density(self):
        alpha = np.array([3.0, 3.0, 2.0])
        mode = (alpha - 1) / (alpha - 1).sum()
        off = np.array([0.05, 0.05, 0.9])
        assert _log_dirichlet_pdf(mode, alpha) > _log_dirichlet_pdf(off, alpha)

    def test_normalisation_constant(self):
        # Dir(1,1) on the 1-simplex is the uniform density 1 -> log 0.
        assert _log_dirichlet_pdf(
            np.array([0.4, 0.6]), np.array([1.0, 1.0])
        ) == pytest.approx(0.0)


class TestObjective:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = make_birthplaces(size=100, seed=7)
        model = TDHModel(max_iter=15, tol=1e-4)
        return dataset, model, model.fit(dataset)

    def test_log_likelihood_finite_negative(self, fitted):
        dataset, _model, result = fitted
        value = log_likelihood(dataset, result)
        assert np.isfinite(value)
        assert value < 0.0  # product of probabilities

    def test_log_posterior_includes_priors(self, fitted):
        dataset, model, result = fitted
        assert log_posterior(dataset, result, model) != log_likelihood(
            dataset, result
        )

    def test_em_monotonically_improves_objective(self):
        """The EM invariant: F never decreases across sweeps."""
        dataset = make_birthplaces(size=100, seed=7)
        model = TDHModel(max_iter=10)
        trace = objective_trace(dataset, model, iterations=6)
        for earlier, later in zip(trace, trace[1:]):
            assert later >= earlier - 1e-6, trace

    def test_converged_fit_near_trace_maximum(self):
        dataset = make_birthplaces(size=100, seed=7)
        model = TDHModel(max_iter=50, tol=1e-6)
        result = model.fit(dataset)
        final = log_posterior(dataset, result, model)
        trace = objective_trace(dataset, model, iterations=4)
        assert final >= trace[0] - 1e-6

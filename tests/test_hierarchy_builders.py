"""Unit tests for hierarchy builders."""

import pytest

from repro.hierarchy import (
    HierarchyError,
    from_child_parent_edges,
    from_location_strings,
    from_parent_map,
    from_paths,
)


class TestFromPaths:
    def test_basic(self):
        h = from_paths([["USA", "California", "LA"], ["USA", "NY"]])
        assert h.parent("LA") == "California"
        assert h.parent("NY") == "USA"

    def test_shared_prefix_merges(self):
        h = from_paths([["USA", "CA"], ["USA", "NY"]])
        assert len(h) == 4  # root, USA, CA, NY

    def test_custom_root(self):
        h = from_paths([["USA"]], root="Earth")
        assert h.root == "Earth"
        assert h.parent("USA") == "Earth"

    def test_empty_input(self):
        h = from_paths([])
        assert len(h) == 1


class TestFromLocationStrings:
    def test_most_specific_first(self):
        h = from_location_strings(["LA, California, USA"])
        assert h.parent("LA") == "California"
        assert h.parent("California") == "USA"
        assert h.depth("USA") == 1

    def test_whitespace_stripped(self):
        h = from_location_strings(["  LA ,  California ,USA  "])
        assert "LA" in h and "California" in h

    def test_empty_segments_dropped(self):
        h = from_location_strings(["LA,,USA"])
        assert h.parent("LA") == "USA"

    def test_blank_string_ignored(self):
        h = from_location_strings(["", " , "])
        assert len(h) == 1

    def test_custom_separator(self):
        h = from_location_strings(["LA/California/USA"], separator="/")
        assert h.parent("LA") == "California"

    def test_consistent_multiple_strings(self):
        h = from_location_strings(
            ["LA, California, USA", "SF, California, USA", "NYC, NY, USA"]
        )
        assert set(h.children("California")) == {"LA", "SF"}
        assert h.parent("NYC") == "NY"


class TestFromEdges:
    def test_in_order_edges(self):
        h = from_child_parent_edges([("USA", "__ROOT__"), ("CA", "USA")])
        assert h.parent("CA") == "USA"

    def test_out_of_order_edges_resolve(self):
        h = from_child_parent_edges([("CA", "USA"), ("USA", "__ROOT__")])
        assert h.parent("CA") == "USA"

    def test_unreachable_parent_raises(self):
        with pytest.raises(HierarchyError, match="unreachable"):
            from_child_parent_edges([("CA", "USA")])  # USA never attached

    def test_from_parent_map(self):
        h = from_parent_map({"CA": "USA", "USA": "__ROOT__", "LA": "CA"})
        assert h.ancestors("LA") == ["CA", "USA"]

"""Property-style parity: the columnar engines must reproduce the reference
engines — identical argmax truths and confidences within 1e-8 — on every
dataset family (synthetic BirthPlaces/Heritages, the hand-built geography
example, and the numeric-hierarchy stock dataset), with and without worker
answers in the claim table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.workers import make_worker_pool
from repro.data.columnar import AUTO_MIN_CLAIMS, resolve_engine
from repro.data.model import Answer
from repro.datasets import claims_to_dataset, make_birthplaces, make_heritages, make_stock_claims
from repro.inference import (
    Accu,
    Asums,
    Crh,
    DawidSkene,
    Docs,
    GuessLca,
    Lfc,
    PopAccu,
    TDHModel,
    Vote,
    ZenCrowd,
)

ALGORITHMS = {
    "VOTE": lambda engine: Vote(use_columnar=engine),
    "DS": lambda engine: DawidSkene(max_iter=12, use_columnar=engine),
    "ZENCROWD": lambda engine: ZenCrowd(max_iter=12, use_columnar=engine),
    "CRH": lambda engine: Crh(max_iter=12, use_columnar=engine),
    "TDH": lambda engine: TDHModel(max_iter=12, use_columnar=engine),
    "LFC": lambda engine: Lfc(max_iter=12, use_columnar=engine),
    "ACCU": lambda engine: Accu(max_iter=12, use_columnar=engine),
    "POPACCU": lambda engine: PopAccu(max_iter=12, use_columnar=engine),
    "LCA": lambda engine: GuessLca(max_iter=12, use_columnar=engine),
    "DOCS": lambda engine: Docs(max_iter=12, use_columnar=engine),
    "ASUMS": lambda engine: Asums(max_iter=12, use_columnar=engine),
}


def _with_answers(dataset, n_workers=5, per_worker=40, seed=0):
    """Fold simulated worker answers in so the encoding covers both claim kinds."""
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    for worker in make_worker_pool(n_workers, seed=3):
        picks = rng.choice(len(objects), size=min(per_worker, len(objects)), replace=False)
        for i in picks:
            obj = objects[int(i)]
            dataset.add_answer(Answer(obj, worker.worker_id, worker.answer(dataset, obj, rng)))
    return dataset


def _make_stock():
    claims, gold = make_stock_claims("open_price", n_objects=150, n_sources=25, seed=23)
    return claims_to_dataset(claims, gold)


DATASETS = {
    "synthetic-birthplaces": lambda: _with_answers(make_birthplaces(size=300, seed=7)),
    "synthetic-heritages": lambda: make_heritages(size=120, n_sources=180, seed=11),
    "stock": _make_stock,
}


@pytest.fixture(scope="module", params=sorted(DATASETS))
def dataset(request):
    return DATASETS[request.param]()


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_columnar_matches_reference(dataset, algo):
    reference = ALGORITHMS[algo](False).fit(dataset)
    columnar = ALGORITHMS[algo](True).fit(dataset)

    assert columnar.iterations == reference.iterations
    assert columnar.converged == reference.converged
    assert columnar.truths() == reference.truths()
    for obj in dataset.objects:
        np.testing.assert_allclose(
            columnar.confidences[obj],
            reference.confidences[obj],
            atol=1e-8,
            rtol=0,
            err_msg=f"{algo} diverges on {obj!r}",
        )


def test_geography_example_parity(table1_dataset):
    """The paper's Table-1 geography example, ancestor-descendant candidates
    included, agrees across engines for every algorithm.

    Truths must match except on *exact posterior ties* (DOCS ties NY and
    Liberty Island here), where sub-tolerance float noise legitimately picks
    either side; for those the two chosen values' confidences must be equal
    within the parity tolerance."""
    for algo, factory in ALGORITHMS.items():
        reference = factory(False).fit(table1_dataset)
        columnar = factory(True).fit(table1_dataset)
        ref_truths, col_truths = reference.truths(), columnar.truths()
        for obj in table1_dataset.objects:
            np.testing.assert_allclose(
                columnar.confidences[obj], reference.confidences[obj], atol=1e-8, rtol=0
            )
            if ref_truths[obj] == col_truths[obj]:
                continue
            index = table1_dataset.context(obj).index
            gap = abs(
                reference.confidences[obj][index[ref_truths[obj]]]
                - reference.confidences[obj][index[col_truths[obj]]]
            )
            assert gap < 1e-8, f"{algo}: non-tied truths diverge on {obj!r}"


def test_zencrowd_reliability_parity(dataset):
    reference = ZenCrowd(max_iter=8, use_columnar=False).fit(dataset)
    columnar = ZenCrowd(max_iter=8, use_columnar=True).fit(dataset)
    assert set(columnar.reliability) == set(reference.reliability)
    for claimant, value in reference.reliability.items():
        assert columnar.reliability[claimant] == pytest.approx(value, abs=1e-8)


def test_crh_source_weight_parity(dataset):
    reference = Crh(max_iter=8, use_columnar=False).fit(dataset)
    columnar = Crh(max_iter=8, use_columnar=True).fit(dataset)
    assert set(columnar.source_weights) == set(reference.source_weights)
    for claimant, value in reference.source_weights.items():
        assert columnar.source_weights[claimant] == pytest.approx(value, abs=1e-8)


def test_tdh_em_state_parity(dataset):
    """TDH's full EM state — trustworthiness, Eq. (9) numerators and
    denominators — must agree between engines, because the EAI assigner's
    incremental EM (Section 4.2) consumes it."""
    reference = TDHModel(max_iter=10, use_columnar=False).fit(dataset)
    columnar = TDHModel(max_iter=10, use_columnar=True).fit(dataset)
    assert set(columnar.phi) == set(reference.phi)
    assert set(columnar.psi) == set(reference.psi)
    for source, vec in reference.phi.items():
        np.testing.assert_allclose(columnar.phi[source], vec, atol=1e-8, rtol=0)
    for worker, vec in reference.psi.items():
        np.testing.assert_allclose(columnar.psi[worker], vec, atol=1e-8, rtol=0)
    for obj in dataset.objects:
        np.testing.assert_allclose(
            columnar.numerators[obj], reference.numerators[obj], atol=1e-8, rtol=0
        )
        assert columnar.denominators[obj] == pytest.approx(
            reference.denominators[obj], abs=1e-8
        )


@pytest.mark.parametrize(
    "flags",
    [
        {"use_hierarchy": False},
        {"use_popularity": False},
        {"collapse_flat_objects": False},
    ],
    ids=lambda f: next(iter(f)),
)
def test_tdh_ablation_parity(dataset, flags):
    """The ablation switches change the Eq. (1)-(4) case weights; both
    engines must realise the same ablated model."""
    reference = TDHModel(max_iter=8, use_columnar=False, **flags).fit(dataset)
    columnar = TDHModel(max_iter=8, use_columnar=True, **flags).fit(dataset)
    assert columnar.iterations == reference.iterations
    assert columnar.truths() == reference.truths()
    for obj in dataset.objects:
        np.testing.assert_allclose(
            columnar.confidences[obj], reference.confidences[obj], atol=1e-8, rtol=0
        )


def test_docs_domain_parity(dataset):
    reference = Docs(max_iter=8, use_columnar=False).fit(dataset)
    columnar = Docs(max_iter=8, use_columnar=True).fit(dataset)
    assert columnar.domains == reference.domains
    assert set(columnar.domain_accuracy) == set(reference.domain_accuracy)
    for key, value in reference.domain_accuracy.items():
        assert columnar.domain_accuracy[key] == pytest.approx(value, abs=1e-8)


def test_claimant_state_parity(dataset):
    """Per-claimant scalar state of the newly ported algorithms survives the
    engine swap: ACCU accuracies, LCA honesty, ASUMS trust."""
    cases = [
        (Accu(max_iter=8), "source_accuracy"),
        (GuessLca(max_iter=8), "honesty"),
        (Asums(max_iter=8), "trust"),
    ]
    for algo, attr in cases:
        algo.use_columnar = False
        reference = getattr(algo.fit(dataset), attr)
        algo.use_columnar = True
        columnar = getattr(algo.fit(dataset), attr)
        assert set(columnar) == set(reference), attr
        for claimant, value in reference.items():
            assert columnar[claimant] == pytest.approx(value, abs=1e-8), attr


# ---------------------------------------------------------------------------
# EAI assignment: the columnar quality measure vs the ObjectStructure path
# ---------------------------------------------------------------------------
def _fit_tdh(dataset, engine):
    from repro.inference import TDHModel as _TDH

    return _TDH(max_iter=10, tol=1e-5, use_columnar=engine).fit(dataset)


def test_eai_assignment_parity(dataset):
    """Both EAI engines produce identical assignments, identical pruning
    behaviour (evaluation counts) and 1e-8-close quality values, whichever
    engine produced the TDH result they consume."""
    from repro.assignment import EAIAssigner
    from repro.crowd.workers import make_worker_pool

    workers = [w.worker_id for w in make_worker_pool(6, seed=2)]
    for fit_engine in (False, True):
        result = _fit_tdh(dataset, fit_engine)
        reference = EAIAssigner(use_columnar=False)
        columnar = EAIAssigner(use_columnar=True)
        assert reference.assign(dataset, result, workers, 5) == columnar.assign(
            dataset, result, workers, 5
        )
        assert reference.eai_evaluations == columnar.eai_evaluations
        psi = result.worker_psi(workers[0], reference.default_psi)
        columnar._activate_state(dataset, result)
        for obj in dataset.objects[:40]:
            assert columnar.eai(result, obj, psi) == pytest.approx(
                reference.eai(result, obj, psi), abs=1e-8
            )
            for answer_pos in range(len(result.confidences[obj])):
                np.testing.assert_allclose(
                    columnar.conditional_confidence(result, obj, psi, answer_pos),
                    reference.conditional_confidence(result, obj, psi, answer_pos),
                    atol=1e-8,
                    rtol=0,
                )
            np.testing.assert_allclose(
                columnar.answer_distribution(result, obj, psi),
                reference.answer_distribution(result, obj, psi),
                atol=1e-8,
                rtol=0,
            )


def test_eai_parity_on_exact_score_ties():
    """Structurally identical objects have exactly tied EAI scores; both
    engines must break the tie the same way (insertion order), keeping the
    assignment sequences identical."""
    from repro.assignment import EAIAssigner
    from repro.data.model import Record, TruthDiscoveryDataset
    from repro.hierarchy.tree import Hierarchy

    tree = Hierarchy()
    tree.add_path(["USA", "NY", "NYC"])
    tree.add_path(["USA", "LA"])
    records = []
    for i in range(6):  # six clones of the same conflict
        records += [
            Record(f"o{i}", "s1", "NYC"),
            Record(f"o{i}", "s2", "NY"),
            Record(f"o{i}", "s3", "LA"),
        ]
    dataset = TruthDiscoveryDataset(tree, records)
    result = _fit_tdh(dataset, True)
    reference = EAIAssigner(use_columnar=False)
    columnar = EAIAssigner(use_columnar=True)
    a_ref = reference.assign(dataset, result, ["w0", "w1"], 2)
    a_col = columnar.assign(dataset, result, ["w0", "w1"], 2)
    assert a_ref == a_col
    # the scores really are exact ties across the cloned objects
    columnar._activate_state(dataset, result)
    psi = result.worker_psi("w0", columnar.default_psi)
    scores = {obj: columnar.eai(result, obj, psi) for obj in dataset.objects}
    assert len(set(scores.values())) == 1


def test_eai_parity_zero_answer_objects_and_unseen_workers(dataset):
    """Datasets without a single worker answer exercise the default-psi path
    (psi falls back to the prior mean) in both engines."""
    from repro.assignment import EAIAssigner
    from repro.data.model import TruthDiscoveryDataset

    records_only = TruthDiscoveryDataset(
        dataset.hierarchy, dataset.iter_records(), name="records-only"
    )
    result = _fit_tdh(records_only, True)
    assert not result.psi  # no workers anywhere in the claim table
    a_ref = EAIAssigner(use_columnar=False).assign(
        records_only, result, ["fresh_w0", "fresh_w1"], 4
    )
    a_col = EAIAssigner(use_columnar=True).assign(
        records_only, result, ["fresh_w0", "fresh_w1"], 4
    )
    assert a_ref == a_col
    assert all(len(tasks) == 4 for tasks in a_col.values())


def test_eai_parity_heap_capacity_edges(dataset):
    """k = 0, k >= |O|, single worker, and a worker who answered everything:
    the heap bookkeeping edge cases agree across engines."""
    from repro.assignment import EAIAssigner
    from repro.data.model import Answer

    result = _fit_tdh(dataset, True)
    reference = EAIAssigner(use_columnar=False)
    columnar = EAIAssigner(use_columnar=True)
    n = len(dataset.objects)
    for workers, k in ([["w0"], 0], [["w0"], n + 5], [["w0", "w1"], n], [["w0"], 1]):
        assert reference.assign(dataset, result, workers, k) == columnar.assign(
            dataset, result, workers, k
        )
    # a worker with every object answered gets nothing, on both engines
    saturated = dataset.copy()
    for obj in saturated.objects:
        saturated.add_answer(Answer(obj, "done_w", saturated.candidates(obj)[0]))
    result2 = _fit_tdh(saturated, True)
    a_ref = EAIAssigner(use_columnar=False).assign(saturated, result2, ["done_w"], 3)
    a_col = EAIAssigner(use_columnar=True).assign(saturated, result2, ["done_w"], 3)
    assert a_ref == a_col == {"done_w": []}


def test_eai_refuses_stale_layout(dataset):
    """Records added between fit and assign change the slot layout; the
    columnar engine must detect the drift and fall back to the reference
    path rather than consume misaligned arrays."""
    from repro.assignment import EAIAssigner
    from repro.data.model import Record

    working = dataset.copy()
    result = _fit_tdh(working, True)
    working.add_record(Record("fresh_object", "s_new", working.hierarchy.children(working.hierarchy.root)[0]))
    columnar = EAIAssigner(use_columnar=True)
    assert columnar._activate_state(working, result) is None
    reference = EAIAssigner(use_columnar=False)
    workers = ["w0", "w1"]
    assert columnar.assign(working, result, workers, 3) == reference.assign(
        working, result, workers, 3
    )


def test_eai_refuses_stale_popularity_counts(dataset):
    """A record whose value is an *existing* candidate changes neither the
    object list nor any candidate-set size — but it changes the Pop2/Pop3
    popularity counts, so the columnar engine must still refuse (the
    records_version stamp catches it) and agree with the reference path."""
    from repro.assignment import EAIAssigner
    from repro.data.model import Record

    working = dataset.copy()
    for fit_engine in (False, True):
        result = _fit_tdh(working, fit_engine)
        obj = working.objects[0]
        working.add_record(
            Record(obj, f"latecomer_src_{fit_engine}", working.candidates(obj)[0])
        )
        assert len(working.candidates(obj)) == len(result.confidences[obj])
        columnar = EAIAssigner(use_columnar=True)
        assert columnar._activate_state(working, result) is None
        assert columnar.assign(working, result, ["w0", "w1"], 3) == EAIAssigner(
            use_columnar=False
        ).assign(working, result, ["w0", "w1"], 3)


def test_eai_refuses_foreign_clone_results(dataset):
    """Mutation counters only order one dataset object's history — sibling
    clones can diverge while their counters coincide — so a result fit on a
    different dataset object always takes the reference path (and still
    agrees with it)."""
    from repro.assignment import EAIAssigner

    original = dataset.copy()
    sibling = original.copy()
    result = _fit_tdh(original, True)
    columnar = EAIAssigner(use_columnar=True)
    assert columnar._activate_state(sibling, result) is None
    assert columnar.assign(sibling, result, ["w0"], 3) == EAIAssigner(
        use_columnar=False
    ).assign(sibling, result, ["w0"], 3)


def test_engine_resolution(table1_dataset):
    small = table1_dataset  # far below the auto threshold
    assert resolve_engine(True, small) is True
    assert resolve_engine("columnar", small) is True
    assert resolve_engine(False, small) is False
    assert resolve_engine("reference", small) is False
    assert resolve_engine("auto", small) is False
    big_enough = make_birthplaces(size=AUTO_MIN_CLAIMS, seed=1)
    assert big_enough.num_records >= AUTO_MIN_CLAIMS
    assert resolve_engine("auto", big_enough) is True
    with pytest.raises(ValueError):
        resolve_engine("fastest", small)


# ---------------------------------------------------------------------------
# QASCA assignment: the flat-state quality measure vs the dict path
# ---------------------------------------------------------------------------
def test_qasca_assignment_parity(dataset):
    """Both QASCA engines draw the same samples and produce identical
    assignments when consuming a columnar TDH fit; a reference fit (no flat
    EM state) keeps both on the dict oracle path."""
    from repro.assignment import QascaAssigner
    from repro.crowd.workers import make_worker_pool

    workers = [w.worker_id for w in make_worker_pool(6, seed=2)]
    result = _fit_tdh(dataset, True)
    a_col = QascaAssigner(seed=5, use_columnar=True).assign(dataset, result, workers, 5)
    a_ref = QascaAssigner(seed=5, use_columnar=False).assign(dataset, result, workers, 5)
    assert a_col == a_ref

    reference_fit = _fit_tdh(dataset, False)
    assigner = QascaAssigner(seed=5, use_columnar=True)
    assert assigner._activate_state(dataset, reference_fit) is None  # oracle path
    assert assigner.assign(dataset, reference_fit, workers, 5) == QascaAssigner(
        seed=5, use_columnar=False
    ).assign(dataset, reference_fit, workers, 5)


def test_qasca_improvement_values_identical(dataset):
    """The sampled improvement scores themselves — not just the ranking —
    must match bit for bit (same normalised mu, same likelihood, same rng
    consumption)."""
    from repro.assignment import QascaAssigner

    result = _fit_tdh(dataset, True)
    col_assigner = QascaAssigner(seed=9, use_columnar=True)
    ref_assigner = QascaAssigner(seed=9, use_columnar=False)
    assert col_assigner._activate_state(dataset, result) is not None
    ref_assigner._activate_state(dataset, result)
    for obj in dataset.objects[:60]:
        assert col_assigner.improvement(dataset, result, obj, "w0") == ref_assigner.improvement(
            dataset, result, obj, "w0"
        )


def test_qasca_refuses_stale_columnar_state(dataset):
    """Mutating the dataset after the fit invalidates the flat state: the
    columnar engine must refuse and fall back to the dict path (which is
    what the reference engine runs anyway), keeping engines identical."""
    from repro.assignment import QascaAssigner

    working = dataset.copy()
    result = _fit_tdh(working, True)
    obj = working.objects[0]
    working.add_answer(Answer(obj, "late_worker", working.candidates(obj)[0]))
    assigner = QascaAssigner(seed=0, use_columnar=True)
    assert assigner._activate_state(working, result) is None
    assert assigner.assign(working, result, ["w0", "w1"], 3) == QascaAssigner(
        seed=0, use_columnar=False
    ).assign(working, result, ["w0", "w1"], 3)

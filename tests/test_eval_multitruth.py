"""Tests for the multi-truth evaluation (Table 5 measures)."""

import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.eval import (
    ancestor_closure,
    closure_within_candidates,
    evaluate_multitruth,
    single_truth_as_sets,
)


@pytest.fixture()
def dataset():
    h = Hierarchy()
    h.add_path(["USA", "NY", "NYC"])
    h.add_path(["USA", "LA"])
    records = [
        Record("o1", "s1", "NYC"),
        Record("o1", "s2", "NY"),
        Record("o1", "s3", "LA"),
        Record("o2", "s1", "LA"),
        Record("o2", "s2", "NY"),
    ]
    return TruthDiscoveryDataset(h, records, gold={"o1": "NYC", "o2": "LA"})


class TestClosure:
    def test_ancestor_closure(self, dataset):
        assert ancestor_closure(dataset.hierarchy, "NYC") == {"NYC", "NY", "USA"}

    def test_closure_within_candidates(self, dataset):
        # USA is not a candidate of o1, so it is excluded.
        assert closure_within_candidates(dataset, "o1", "NYC") == {"NYC", "NY"}

    def test_single_truth_as_sets(self, dataset):
        sets = single_truth_as_sets(dataset, {"o1": "NYC", "o2": "LA"})
        assert sets["o1"] == {"NYC", "NY"}
        assert sets["o2"] == {"LA"}


class TestEvaluateMultitruth:
    def test_perfect(self, dataset):
        estimated = {"o1": {"NYC", "NY"}, "o2": {"LA"}}
        report = evaluate_multitruth(dataset, estimated)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_general_only_estimate_trades_precision_for_recall(self, dataset):
        # Claiming just NY for o1: precise (NY is a truth) but incomplete.
        report = evaluate_multitruth(dataset, {"o1": {"NY"}, "o2": {"LA"}})
        assert report.precision == 1.0
        assert report.recall == pytest.approx(2 / 3)

    def test_overclaiming_hurts_precision(self, dataset):
        report = evaluate_multitruth(
            dataset, {"o1": {"NYC", "NY", "LA"}, "o2": {"LA"}}
        )
        assert report.precision == pytest.approx(3 / 4)
        assert report.recall == 1.0

    def test_wrong_value_zero_overlap(self, dataset):
        report = evaluate_multitruth(dataset, {"o1": {"LA"}, "o2": {"NY"}})
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_f1_harmonic_mean(self, dataset):
        report = evaluate_multitruth(dataset, {"o1": {"NY"}, "o2": {"LA"}})
        p, r = report.precision, report.recall
        assert report.f1 == pytest.approx(2 * p * r / (p + r))

    def test_missing_objects_skipped(self, dataset):
        report = evaluate_multitruth(dataset, {"o1": {"NYC", "NY"}})
        assert report.num_objects == 1

    def test_no_overlap_raises(self, dataset):
        with pytest.raises(ValueError):
            evaluate_multitruth(dataset, {"zzz": {"NYC"}})

    def test_unrestricted_closure_includes_unclaimed_ancestors(self, dataset):
        report = evaluate_multitruth(
            dataset, {"o1": {"NYC", "NY"}, "o2": {"LA"}},
            restrict_to_candidates=False,
        )
        # USA is now part of the gold set but unreachable -> recall < 1.
        assert report.recall < 1.0

    def test_as_row(self, dataset):
        report = evaluate_multitruth(dataset, {"o1": {"NYC", "NY"}, "o2": {"LA"}})
        assert set(report.as_row()) == {"Precision", "Recall", "F1"}

"""Tests for the precomputed likelihood structures (Eq. 1-4 of the paper)."""

import numpy as np
import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.inference._structures import StructureCache, build_structure


@pytest.fixture()
def oh_dataset() -> TruthDiscoveryDataset:
    """Object with candidates NYC (2 claims), NY (ancestor, 1), LA (wrong, 1)."""
    h = Hierarchy()
    h.add_path(["USA", "NY", "NYC"])
    h.add_path(["USA", "LA"])
    records = [
        Record("o", "s1", "NYC"),
        Record("o", "s2", "NYC"),
        Record("o", "s3", "NY"),
        Record("o", "s4", "LA"),
    ]
    return TruthDiscoveryDataset(h, records)


@pytest.fixture()
def flat_dataset() -> TruthDiscoveryDataset:
    """Object with no ancestor-descendant pair among candidates (not in OH)."""
    h = Hierarchy()
    h.add_path(["USA", "NY"])
    h.add_path(["USA", "LA"])
    h.add_path(["UK", "London"])
    records = [
        Record("o", "s1", "NY"),
        Record("o", "s2", "LA"),
        Record("o", "s3", "LA"),
        Record("o", "s4", "London"),
    ]
    return TruthDiscoveryDataset(h, records)


PHI = np.array([0.6, 0.3, 0.1])


class TestSourceLikelihoodOH:
    def test_column_sums(self, oh_dataset):
        """Columns whose truth has candidate ancestors sum to 1; columns with
        empty ``Go(v)`` are deficient by ``phi2`` — a property of the paper's
        Eq. (1), which never renormalises."""
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        sums = L.sum(axis=0)
        nyc, ny, la = s.index["NYC"], s.index["NY"], s.index["LA"]
        assert sums[nyc] == pytest.approx(1.0)  # Go(NYC) = {NY}
        assert sums[ny] == pytest.approx(PHI[0] + PHI[2])  # Go(NY) empty
        assert sums[la] == pytest.approx(PHI[0] + PHI[2])

    def test_exact_match_probability(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        i = s.index["NYC"]
        assert L[i, i] == pytest.approx(PHI[0])

    def test_generalized_probability_uniform_over_go(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        nyc, ny = s.index["NYC"], s.index["NY"]
        # Go(NYC) = {NY}; claiming NY under truth NYC has probability phi2/1.
        assert L[ny, nyc] == pytest.approx(PHI[1])

    def test_wrong_probability_uniform_over_rest(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        nyc, la = s.index["NYC"], s.index["LA"]
        # For truth NYC: |Vo|=3, |Go|=1 -> one wrong slot (LA): phi3/1.
        assert L[la, nyc] == pytest.approx(PHI[2])

    def test_truth_without_candidate_ancestors(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        la = s.index["LA"]
        # Go(LA) empty -> case-2 column zero; wrong mass split over 2 others.
        assert L[la, la] == pytest.approx(PHI[0])
        assert L[s.index["NYC"], la] == pytest.approx(PHI[2] / 2)
        assert L[s.index["NY"], la] == pytest.approx(PHI[2] / 2)

    def test_likelihood_row_matches_matrix(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        L = s.source_likelihood(PHI)
        for u in range(s.size):
            np.testing.assert_allclose(s.source_likelihood_row(u, PHI), L[u])


class TestSourceLikelihoodFlat:
    def test_exact_match_absorbs_phi2(self, flat_dataset):
        """Eq. (2): outside OH, P(exact) = phi1 + phi2."""
        s = build_structure(flat_dataset, "o")
        L = s.source_likelihood(PHI)
        for i in range(s.size):
            assert L[i, i] == pytest.approx(PHI[0] + PHI[1])

    def test_wrong_uniform(self, flat_dataset):
        s = build_structure(flat_dataset, "o")
        L = s.source_likelihood(PHI)
        ny, la = s.index["NY"], s.index["LA"]
        assert L[la, ny] == pytest.approx(PHI[2] / 2)

    def test_columns_sum_to_one(self, flat_dataset):
        s = build_structure(flat_dataset, "o")
        L = s.source_likelihood(PHI)
        np.testing.assert_allclose(L.sum(axis=0), 1.0)


class TestWorkerLikelihood:
    def test_pop3_weights_by_source_counts(self, flat_dataset):
        """Eq. (4): wrong answers follow source popularity, not uniform."""
        s = build_structure(flat_dataset, "o")
        psi = np.array([0.7, 0.1, 0.2])
        L = s.worker_likelihood(psi)
        ny, la, london = s.index["NY"], s.index["LA"], s.index["London"]
        # Under truth NY: wrong values are LA (2 source claims), London (1).
        assert L[la, ny] == pytest.approx(psi[2] * 2 / 3)
        assert L[london, ny] == pytest.approx(psi[2] * 1 / 3)

    def test_pop2_weights_generalizations(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        psi = np.array([0.7, 0.2, 0.1])
        L = s.worker_likelihood(psi)
        nyc, ny = s.index["NYC"], s.index["NY"]
        # Go(NYC)={NY} with 1 source claim out of 1 generalized claim -> Pop2=1.
        assert L[ny, nyc] == pytest.approx(psi[1])

    def test_worker_columns_sum_to_at_most_one(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        psi = np.array([0.7, 0.2, 0.1])
        L = s.worker_likelihood(psi)
        assert np.all(L.sum(axis=0) <= 1.0 + 1e-9)

    def test_likelihood_row_matches_matrix(self, oh_dataset):
        s = build_structure(oh_dataset, "o")
        psi = np.array([0.5, 0.3, 0.2])
        L = s.worker_likelihood(psi)
        for u in range(s.size):
            np.testing.assert_allclose(s.worker_likelihood_row(u, psi), L[u])


class TestAblationFlags:
    def test_hierarchy_disabled_ignores_ancestors(self, oh_dataset):
        s = build_structure(oh_dataset, "o", use_hierarchy=False)
        assert not s.has_hierarchy
        L = s.source_likelihood(PHI)
        # Behaves like the flat Eq. (2) model even though NY is NYC's ancestor.
        nyc = s.index["NYC"]
        assert L[nyc, nyc] == pytest.approx(PHI[0] + PHI[1])

    def test_popularity_disabled_matches_source_model(self, oh_dataset):
        s = build_structure(oh_dataset, "o", use_popularity=False)
        np.testing.assert_allclose(s.worker_case2, s.source_case2)
        np.testing.assert_allclose(s.worker_case3, s.source_case3)


class TestStructureCache:
    def test_cache_returns_same_object(self, oh_dataset):
        cache = StructureCache(oh_dataset)
        assert cache.get("o") is cache.get("o")

    def test_invalidate_single(self, oh_dataset):
        cache = StructureCache(oh_dataset)
        first = cache.get("o")
        cache.invalidate("o")
        assert cache.get("o") is not first

    def test_invalidate_all(self, oh_dataset):
        cache = StructureCache(oh_dataset)
        first = cache.get("o")
        cache.invalidate()
        assert cache.get("o") is not first

    def test_cache_respects_flags(self, oh_dataset):
        cache = StructureCache(oh_dataset, use_hierarchy=False)
        assert not cache.get("o").has_hierarchy

    def test_counts_are_source_claims(self, oh_dataset):
        s = StructureCache(oh_dataset).get("o")
        assert s.counts[s.index["NYC"]] == 2
        assert s.counts[s.index["NY"]] == 1
        assert s.counts.sum() == 4

"""Unit and property tests for the implicit numeric (rounding) hierarchy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy import (
    build_numeric_hierarchy,
    is_rounding_ancestor,
    round_to_significant,
    rounding_chain,
    significant_digits,
)


class TestSignificantDigits:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("605.196", 6),
            ("605.2", 4),
            ("605", 3),
            ("605.20", 5),
            ("0.00123", 3),
            ("1", 1),
            (605.2, 4),
            (0.5, 1),
        ],
    )
    def test_counts(self, value, expected):
        assert significant_digits(value) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            significant_digits("not-a-number")


class TestRoundToSignificant:
    @pytest.mark.parametrize(
        "value,ndigits,expected",
        [
            (605.196, 4, 605.2),
            (605.196, 3, 605.0),
            (605.196, 1, 600.0),
            (0.00123, 2, 0.0012),
            (-605.196, 4, -605.2),
            (0.0, 3, 0.0),
        ],
    )
    def test_values(self, value, ndigits, expected):
        assert round_to_significant(value, ndigits) == pytest.approx(expected)

    def test_ndigits_must_be_positive(self):
        with pytest.raises(ValueError):
            round_to_significant(1.0, 0)

    def test_non_finite_passthrough(self):
        assert math.isinf(round_to_significant(float("inf"), 3))

    @given(st.floats(min_value=1e-6, max_value=1e9), st.integers(1, 10))
    def test_idempotent(self, value, ndigits):
        once = round_to_significant(value, ndigits)
        assert round_to_significant(once, ndigits) == once


class TestRoundingChain:
    def test_paper_example(self):
        # 605.196 km2 -> 605.2 -> 605 (the paper's Seoul-area example).
        chain = rounding_chain(605.196, max_digits=6, min_digits=3)
        assert chain == [605.196, 605.2, 605.0]

    def test_most_specific_first(self):
        chain = rounding_chain(123.456)
        assert chain[0] == 123.456
        assert chain[-1] == 100.0

    def test_collapses_noop_roundings(self):
        chain = rounding_chain(500.0)
        assert len(chain) == len(set(chain))

    def test_invalid_digit_range(self):
        with pytest.raises(ValueError):
            rounding_chain(1.0, max_digits=2, min_digits=3)

    @given(st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=200)
    def test_chain_is_strictly_coarsening(self, value):
        chain = rounding_chain(value)
        digits = [significant_digits(v) for v in chain]
        # significant digits never increase along the chain
        assert all(a >= b for a, b in zip(digits, digits[1:]))

    @given(st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=200)
    def test_parent_is_function_of_child(self, value):
        """A chain node's continuation must not depend on the original value
        — otherwise merged chains would conflict."""
        chain = rounding_chain(value)
        for i, node in enumerate(chain[:-1]):
            rebuilt = rounding_chain(node)
            assert rebuilt[1:] == chain[i + 1 :] or rebuilt[0] == chain[i]
            # The immediate parent must match exactly:
            assert rebuilt[1] == chain[i + 1]


class TestIsRoundingAncestor:
    def test_direct_roundoff(self):
        assert is_rounding_ancestor(605.2, 605.196)
        assert is_rounding_ancestor(605.0, 605.196)

    def test_not_self(self):
        assert not is_rounding_ancestor(605.2, 605.2)

    def test_not_reverse(self):
        assert not is_rounding_ancestor(605.196, 605.2)

    def test_unrelated(self):
        assert not is_rounding_ancestor(123.0, 605.196)


class TestBuildNumericHierarchy:
    def test_chains_merge(self):
        h, canonical = build_numeric_hierarchy([605.196, 605.241, 605.2])
        assert h.is_ancestor(605.2, canonical[605.196])
        assert h.is_ancestor(605.2, canonical[605.241])
        assert canonical[605.2] == 605.2

    def test_structure_is_valid_tree(self):
        values = [1.234, 1.23, 12.34, 0.001234, 999.9, 1000.0, 0.5, 0.55]
        h, _ = build_numeric_hierarchy(values)
        h.validate()

    def test_canonicalisation_beyond_max_digits(self):
        h, canonical = build_numeric_hierarchy([605.19612, 605.19613], max_digits=6)
        assert canonical[605.19612] == canonical[605.19613] == 605.196

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50)
    def test_always_valid_tree(self, values):
        h, canonical = build_numeric_hierarchy(values)
        h.validate()
        for value in values:
            assert canonical[float(value)] in h

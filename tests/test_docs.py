"""The docs/ code snippets and quoted CLI lines must stay runnable.

Thin wrapper around ``scripts/check_docs.py`` so snippet rot fails the
tier-1 suite too, not just CI's docs job.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_are_cross_linked():
    architecture = REPO_ROOT / "docs" / "architecture.md"
    algorithms = REPO_ROOT / "docs" / "algorithms.md"
    serving = REPO_ROOT / "docs" / "serving.md"
    assert architecture.is_file() and algorithms.is_file() and serving.is_file()
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/architecture.md" in readme
    assert "docs/algorithms.md" in readme
    assert "docs/serving.md" in readme
    # The serving doc is reachable from the architecture doc too.
    assert "serving.md" in architecture.read_text()


def test_docs_python_snippets_execute():
    checker = load_checker()
    assert checker.check_python_blocks() == []


def test_docs_cli_lines_parse():
    checker = load_checker()
    failures, checked = checker.check_cli_lines()
    assert failures == []
    assert checked > 0, "no CLI lines found — the check would be vacuous"

"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Hierarchy, Record, TDHModel, TruthDiscoveryDataset, Vote
# (random_hierarchy builds trees directly via Hierarchy.add_edge)
from repro.inference._structures import build_structure


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def random_hierarchy(draw):
    """A random tree: node ``n_i`` gets a parent among ``n_0 .. n_{i-1}`` or
    the root, which is always structurally valid."""
    n_nodes = draw(st.integers(2, 12))
    hierarchy = Hierarchy()
    for i in range(n_nodes):
        parent_index = draw(st.integers(-1, i - 1))
        parent = hierarchy.root if parent_index < 0 else f"n{parent_index}"
        hierarchy.add_edge(f"n{i}", parent)
    return hierarchy


@st.composite
def random_dataset(draw):
    """A random dataset over a random hierarchy (1-6 objects, 2-5 sources)."""
    hierarchy = draw(random_hierarchy())
    nodes = [n for n in hierarchy.non_root_nodes()]
    n_objects = draw(st.integers(1, 6))
    n_sources = draw(st.integers(2, 5))
    records = []
    for i in range(n_objects):
        claiming = draw(
            st.lists(
                st.integers(0, n_sources - 1), min_size=1, max_size=n_sources,
                unique=True,
            )
        )
        for s in claiming:
            value = draw(st.sampled_from(nodes))
            records.append(Record(f"o{i}", f"s{s}", value))
    return TruthDiscoveryDataset(hierarchy, records)


# ---------------------------------------------------------------------------
# hierarchy properties
# ---------------------------------------------------------------------------
class TestHierarchyProperties:
    @given(random_hierarchy())
    @settings(max_examples=60)
    def test_always_valid(self, hierarchy):
        hierarchy.validate()

    @given(random_hierarchy())
    @settings(max_examples=60)
    def test_depth_consistent_with_parent(self, hierarchy):
        for node in hierarchy.non_root_nodes():
            parent = hierarchy.parent(node)
            assert hierarchy.depth(node) == hierarchy.depth(parent) + 1

    @given(random_hierarchy())
    @settings(max_examples=60)
    def test_distance_is_metric(self, hierarchy):
        nodes = list(hierarchy.nodes())[:6]
        for u in nodes:
            assert hierarchy.distance(u, u) == 0
            for v in nodes:
                assert hierarchy.distance(u, v) == hierarchy.distance(v, u)
                for w in nodes:
                    assert (
                        hierarchy.distance(u, w)
                        <= hierarchy.distance(u, v) + hierarchy.distance(v, w)
                    )

    @given(random_hierarchy())
    @settings(max_examples=60)
    def test_ancestors_are_transitive(self, hierarchy):
        for node in hierarchy.non_root_nodes():
            for anc in hierarchy.ancestors(node):
                for anc2 in hierarchy.ancestors(anc):
                    assert hierarchy.is_ancestor(anc2, node)

    @given(random_hierarchy())
    @settings(max_examples=60)
    def test_descendants_inverse_of_ancestors(self, hierarchy):
        for node in hierarchy.non_root_nodes():
            for desc in hierarchy.descendants(node):
                assert node in hierarchy.ancestors(desc) or node == hierarchy.root


# ---------------------------------------------------------------------------
# EM invariants
# ---------------------------------------------------------------------------
class TestInferenceProperties:
    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_tdh_confidences_always_distributions(self, dataset):
        result = TDHModel(max_iter=10, tol=1e-4).fit(dataset)
        for obj in dataset.objects:
            vec = result.confidences[obj]
            assert np.all(vec >= -1e-12)
            assert vec.sum() == pytest.approx(1.0, abs=1e-6)

    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_tdh_phi_always_distribution(self, dataset):
        result = TDHModel(max_iter=10, tol=1e-4).fit(dataset)
        for source in dataset.sources:
            phi = np.asarray(result.source_trustworthiness(source))
            assert np.all(phi >= 0)
            assert phi.sum() == pytest.approx(1.0, abs=1e-6)

    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_truth_always_a_candidate(self, dataset):
        result = TDHModel(max_iter=10, tol=1e-4).fit(dataset)
        for obj, value in result.truths().items():
            assert value in dataset.candidates(obj)

    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_vote_truth_has_max_count(self, dataset):
        result = Vote().fit(dataset)
        for obj in dataset.objects:
            counts = {}
            for value in dataset.records_for(obj).values():
                counts[value] = counts.get(value, 0) + 1
            assert counts[result.truth(obj)] == max(counts.values())

    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_structure_likelihoods_bounded(self, dataset):
        phi = np.array([0.5, 0.3, 0.2])
        for obj in dataset.objects:
            structure = build_structure(dataset, obj)
            L = structure.source_likelihood(phi)
            assert np.all(L >= -1e-12)
            assert np.all(L <= 1.0 + 1e-9)
            Lw = structure.worker_likelihood(phi)
            assert np.all(Lw >= -1e-12)
            assert np.all(Lw <= 1.0 + 1e-9)

    @given(random_dataset(), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_eai_upper_bound_property(self, dataset, seed):
        """Lemma 4.1 holds for random datasets and random worker psi."""
        from repro import EAIAssigner

        rng = np.random.default_rng(seed)
        psi = rng.dirichlet([2.0, 2.0, 2.0])
        result = TDHModel(max_iter=8, tol=1e-4).fit(dataset)
        assigner = EAIAssigner()
        for obj in dataset.objects:
            assert assigner.eai(result, obj, psi) <= assigner.ueai(result, obj) + 1e-12

"""Property-based tests on the evaluation measures and sparkline rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.eval import evaluate, evaluate_multitruth, single_truth_as_sets
from repro.experiments.common import SPARK_BLOCKS, format_sparklines, sparkline


@st.composite
def dataset_with_gold(draw):
    """A random dataset whose gold values are drawn from the hierarchy."""
    n_nodes = draw(st.integers(3, 10))
    hierarchy = Hierarchy()
    for i in range(n_nodes):
        parent_index = draw(st.integers(-1, i - 1))
        parent = hierarchy.root if parent_index < 0 else f"n{parent_index}"
        hierarchy.add_edge(f"n{i}", parent)
    nodes = [f"n{i}" for i in range(n_nodes)]
    n_objects = draw(st.integers(1, 5))
    records = []
    gold = {}
    for i in range(n_objects):
        n_claims = draw(st.integers(1, 4))
        for s in range(n_claims):
            records.append(Record(f"o{i}", f"s{s}", draw(st.sampled_from(nodes))))
        gold[f"o{i}"] = draw(st.sampled_from(nodes))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold)


class TestEvaluateProperties:
    @given(dataset_with_gold(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_never_exceeds_gen_accuracy(self, dataset, seed):
        rng = np.random.default_rng(seed)
        estimates = {}
        for obj in dataset.objects:
            candidates = dataset.candidates(obj)
            estimates[obj] = candidates[int(rng.integers(len(candidates)))]
        report = evaluate(dataset, estimates)
        assert 0.0 <= report.accuracy <= report.gen_accuracy <= 1.0
        assert report.avg_distance >= 0.0

    @given(dataset_with_gold())
    @settings(max_examples=40, deadline=None)
    def test_projected_gold_estimate_scores_perfectly(self, dataset):
        """Estimating exactly the effective truth yields accuracy 1 where it
        exists."""
        from repro.eval import effective_truth

        estimates = {}
        expected_hits = 0
        for obj in dataset.objects:
            target = effective_truth(dataset, obj, dataset.gold[obj])
            if target is None:
                estimates[obj] = dataset.candidates(obj)[0]
            else:
                estimates[obj] = target
                expected_hits += 1
        report = evaluate(dataset, estimates)
        assert report.accuracy >= expected_hits / len(dataset.objects) - 1e-9

    @given(dataset_with_gold(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_multitruth_prf_within_bounds(self, dataset, seed):
        rng = np.random.default_rng(seed)
        estimates = {}
        for obj in dataset.objects:
            candidates = dataset.candidates(obj)
            estimates[obj] = candidates[int(rng.integers(len(candidates)))]
        report = evaluate_multitruth(dataset, single_truth_as_sets(dataset, estimates))
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert min(report.precision, report.recall) - 1e-9 <= report.f1
        assert report.f1 <= max(report.precision, report.recall) + 1e-9


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_mid_height(self):
        assert sparkline([2.0, 2.0, 2.0]) == SPARK_BLOCKS[3] * 3

    def test_monotone_series_monotone_blocks(self):
        rendered = sparkline([1, 2, 3, 4, 5])
        indices = [SPARK_BLOCKS.index(ch) for ch in rendered]
        assert indices == sorted(indices)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_length_preserved_and_chars_valid(self, values):
        rendered = sparkline(values)
        assert len(rendered) == len(values)
        assert all(ch in SPARK_BLOCKS for ch in rendered)

    def test_pinned_scale(self):
        assert sparkline([5.0], lo=0.0, hi=10.0) == SPARK_BLOCKS[4]

    def test_format_sparklines_includes_scale(self):
        text = format_sparklines({"a": [0.0, 1.0]}, title="T")
        assert "T" in text
        assert "lo=0.0000 hi=1.0000" in text

    def test_format_sparklines_empty(self):
        assert format_sparklines({}, title="T") == "T"

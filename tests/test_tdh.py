"""Tests for the TDH inference EM (the paper's core contribution)."""

import numpy as np
import pytest

from repro import Answer, Hierarchy, Record, TDHModel, TruthDiscoveryDataset, Vote
from repro.eval import evaluate


class TestConstruction:
    def test_default_hyperparameters_match_paper(self):
        model = TDHModel()
        np.testing.assert_allclose(model.alpha, [3.0, 3.0, 2.0])
        np.testing.assert_allclose(model.beta, [2.0, 2.0, 2.0])
        assert model.gamma == 2.0

    def test_alpha_must_have_three_components(self):
        with pytest.raises(ValueError):
            TDHModel(alpha=(1.0, 2.0))

    def test_gamma_below_one_rejected(self):
        with pytest.raises(ValueError):
            TDHModel(gamma=0.5)


class TestFitBasics:
    def test_confidences_are_distributions(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        for obj in table1_dataset.objects:
            vec = result.confidences[obj]
            assert vec.shape == (len(table1_dataset.candidates(obj)),)
            assert np.all(vec >= 0)
            assert vec.sum() == pytest.approx(1.0, abs=1e-6)

    def test_trustworthiness_is_distribution(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        for source in table1_dataset.sources:
            phi = np.asarray(result.source_trustworthiness(source))
            assert phi.shape == (3,)
            assert np.all(phi >= 0)
            assert phi.sum() == pytest.approx(1.0, abs=1e-6)

    def test_converges_on_small_data(self, table1_dataset):
        result = TDHModel(max_iter=200).fit(table1_dataset)
        assert result.converged
        assert result.iterations < 200

    def test_deterministic(self, table1_dataset):
        r1 = TDHModel().fit(table1_dataset)
        r2 = TDHModel().fit(table1_dataset)
        for obj in table1_dataset.objects:
            np.testing.assert_allclose(r1.confidences[obj], r2.confidences[obj])

    def test_numerators_denominators_consistent(self, table1_dataset):
        """Eq. (9): mu = N / D must hold for the returned state."""
        result = TDHModel().fit(table1_dataset)
        for obj in table1_dataset.objects:
            np.testing.assert_allclose(
                result.confidences[obj],
                result.numerators[obj] / result.denominators[obj],
                rtol=1e-6,
            )

    def test_truth_is_argmax(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        for obj in table1_dataset.objects:
            ctx_values = table1_dataset.candidates(obj)
            best = ctx_values[int(np.argmax(result.confidences[obj]))]
            assert result.truth(obj) == best


class TestPaperExample:
    """The introduction's motivating example must come out right."""

    def test_statue_of_liberty_resolves_to_liberty_island(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        assert result.truth("Statue of Liberty") == "Liberty Island"

    def test_big_ben_resolves_to_most_specific(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        assert result.truth("Big Ben") == "Westminster"

    def test_vote_fails_on_statue_of_liberty(self, table1_dataset):
        # VOTE cannot use the hierarchy: NY and Liberty Island split the vote.
        vote_truth = Vote().fit(table1_dataset).truth("Statue of Liberty")
        assert vote_truth != "Liberty Island"


class TestHierarchyAdvantage:
    def test_beats_vote_on_birthplaces(self, small_birthplaces):
        tdh = TDHModel(max_iter=40, tol=1e-4).fit(small_birthplaces)
        vote = Vote().fit(small_birthplaces)
        acc_tdh = evaluate(small_birthplaces, tdh.truths()).accuracy
        acc_vote = evaluate(small_birthplaces, vote.truths()).accuracy
        assert acc_tdh > acc_vote

    def test_hierarchy_ablation_hurts(self, small_birthplaces):
        """The three-interpretation model is the paper's central claim."""
        full = TDHModel(max_iter=40, tol=1e-4).fit(small_birthplaces)
        blind = TDHModel(max_iter=40, tol=1e-4, use_hierarchy=False).fit(
            small_birthplaces
        )
        acc_full = evaluate(small_birthplaces, full.truths()).accuracy
        acc_blind = evaluate(small_birthplaces, blind.truths()).accuracy
        assert acc_full >= acc_blind

    def test_generalizing_source_not_penalised(self):
        """A source that always claims correct-but-general values must keep a
        low phi3 (wrong probability) — the Figure 5 property."""
        h = Hierarchy()
        for i in range(30):
            h.add_path([f"c{i}", f"r{i}", f"t{i}"])
        records = []
        for i in range(30):
            records.append(Record(f"o{i}", "exact", f"t{i}"))
            records.append(Record(f"o{i}", "exact2", f"t{i}"))
            records.append(Record(f"o{i}", "generalizer", f"r{i}"))
        ds = TruthDiscoveryDataset(h, records)
        result = TDHModel().fit(ds)
        phi = result.source_trustworthiness("generalizer")
        assert phi[1] > 0.5  # recognised as a generalizer
        assert phi[2] < 0.25  # not branded unreliable


class TestWorkers:
    def test_answers_shift_confidence(self, table1_dataset):
        ds = table1_dataset.copy()
        base = TDHModel().fit(ds)
        for w in range(4):
            ds.add_answer(Answer("Niagara Falls", f"w{w}", "LA"))
        result = TDHModel().fit(ds)
        la_conf = result.confidence("Niagara Falls")["LA"]
        assert la_conf > base.confidence("Niagara Falls")["LA"]

    def test_worker_trustworthiness_estimated(self, table1_dataset):
        ds = table1_dataset.copy()
        ds.add_answer(Answer("Statue of Liberty", "good", "Liberty Island"))
        ds.add_answer(Answer("Big Ben", "good", "Westminster"))
        ds.add_answer(Answer("Niagara Falls", "good", "NY"))
        result = TDHModel().fit(ds)
        psi = result.worker_trustworthiness("good")
        assert psi[0] > 1.0 / 3.0  # better than prior mean

    def test_worker_psi_falls_back_to_prior(self, table1_dataset):
        result = TDHModel().fit(table1_dataset)
        psi = result.worker_psi("unseen-worker")
        np.testing.assert_allclose(psi, [1 / 3, 1 / 3, 1 / 3])

    def test_warm_start_converges_faster(self, small_birthplaces):
        model = TDHModel(max_iter=100, tol=1e-5)
        cold = model.fit(small_birthplaces)
        warm = model.fit(small_birthplaces, warm_start=cold)
        assert warm.iterations <= cold.iterations

    def test_structure_cache_reuse_gives_same_result(self, small_birthplaces):
        model = TDHModel(max_iter=20, tol=1e-4)
        cache = model.make_structure_cache(small_birthplaces)
        r1 = model.fit(small_birthplaces, structures=cache)
        r2 = model.fit(small_birthplaces, structures=cache)
        for obj in small_birthplaces.objects:
            np.testing.assert_allclose(r1.confidences[obj], r2.confidences[obj])


class TestPriors:
    def test_stronger_prior_pulls_phi_toward_mean(self, table1_dataset):
        weak = TDHModel(alpha=(3, 3, 2)).fit(table1_dataset)
        strong = TDHModel(alpha=(300, 300, 200)).fit(table1_dataset)
        prior_mean = np.array([3, 3, 2]) / 8.0
        for source in table1_dataset.sources:
            weak_phi = np.asarray(weak.source_trustworthiness(source))
            strong_phi = np.asarray(strong.source_trustworthiness(source))
            assert np.abs(strong_phi - prior_mean).sum() <= (
                np.abs(weak_phi - prior_mean).sum() + 1e-9
            )

    def test_gamma_one_is_flat_prior(self, table1_dataset):
        result = TDHModel(gamma=1.0).fit(table1_dataset)
        for obj in table1_dataset.objects:
            assert result.confidences[obj].sum() == pytest.approx(1.0, abs=1e-6)


class TestSingleCandidateObjects:
    def test_single_candidate_gets_full_confidence(self):
        h = Hierarchy()
        h.add_path(["USA", "NY"])
        ds = TruthDiscoveryDataset(h, [Record("o", "s", "NY")])
        result = TDHModel().fit(ds)
        np.testing.assert_allclose(result.confidences["o"], [1.0])
        assert result.truth("o") == "NY"

"""Tests for the Section-5 quality measures."""

import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.eval import EvaluationReport, effective_truth, evaluate, source_accuracy


@pytest.fixture()
def dataset():
    h = Hierarchy()
    h.add_path(["USA", "NY", "NYC", "Manhattan"])
    h.add_path(["USA", "LA"])
    h.add_path(["UK", "London"])
    records = [
        Record("o1", "s1", "NYC"),
        Record("o1", "s2", "NY"),
        Record("o2", "s1", "LA"),
        Record("o2", "s2", "London"),
        Record("o3", "s1", "NY"),
    ]
    gold = {"o1": "NYC", "o2": "LA", "o3": "Manhattan"}
    return TruthDiscoveryDataset(h, records, gold=gold)


class TestEffectiveTruth:
    def test_gold_in_candidates(self, dataset):
        assert effective_truth(dataset, "o1", "NYC") == "NYC"

    def test_gold_projected_to_most_specific_ancestor(self, dataset):
        # o3's gold is Manhattan; only NY is claimed -> project to NY.
        assert effective_truth(dataset, "o3", "Manhattan") == "NY"

    def test_projection_prefers_deepest(self, dataset):
        # o1 has both NYC and NY; gold Manhattan projects to NYC (deeper).
        assert effective_truth(dataset, "o1", "Manhattan") == "NYC"

    def test_no_projection_returns_none(self, dataset):
        assert effective_truth(dataset, "o2", "London") is None or (
            effective_truth(dataset, "o2", "London") == "London"
        )

    def test_unrelated_gold_returns_none(self, dataset):
        assert effective_truth(dataset, "o3", "London") is None


class TestEvaluate:
    def test_perfect_estimates(self, dataset):
        estimates = {"o1": "NYC", "o2": "LA", "o3": "NY"}
        report = evaluate(dataset, estimates)
        assert report.accuracy == 1.0
        assert report.gen_accuracy == 1.0
        assert report.avg_distance == 0.0
        assert report.num_objects == 3

    def test_generalized_estimate_counts_for_gen_accuracy(self, dataset):
        estimates = {"o1": "NY", "o2": "LA", "o3": "NY"}
        report = evaluate(dataset, estimates)
        assert report.accuracy == pytest.approx(2 / 3)
        assert report.gen_accuracy == 1.0
        assert report.avg_distance == pytest.approx(1 / 3)

    def test_wrong_estimate_distance(self, dataset):
        estimates = {"o1": "NYC", "o2": "London", "o3": "NY"}
        report = evaluate(dataset, estimates)
        assert report.accuracy == pytest.approx(2 / 3)
        # LA -> London: LA-USA-root-UK-London = 4 edges.
        assert report.avg_distance == pytest.approx(4 / 3)

    def test_missing_estimates_skipped(self, dataset):
        report = evaluate(dataset, {"o1": "NYC"})
        assert report.num_objects == 1
        assert report.accuracy == 1.0

    def test_no_overlap_raises(self, dataset):
        with pytest.raises(ValueError, match="no overlapping"):
            evaluate(dataset, {"zzz": "NYC"})

    def test_explicit_gold_overrides(self, dataset):
        report = evaluate(dataset, {"o1": "NY"}, gold={"o1": "NY"})
        assert report.accuracy == 1.0

    def test_as_row_column_names(self):
        report = EvaluationReport(0.5, 0.6, 0.7, 10)
        assert report.as_row() == {
            "Accuracy": 0.5,
            "GenAccuracy": 0.6,
            "AvgDistance": 0.7,
        }


class TestSourceAccuracy:
    def test_exact_and_generalized_counted(self, dataset):
        # s2 claims NY for o1 (gold NYC): generalized, not exact.
        stats = source_accuracy(dataset, "s2")
        assert stats["claims"] == 2
        assert stats["accuracy"] == 0.0
        assert stats["gen_accuracy"] == pytest.approx(0.5)

    def test_perfect_source(self, dataset):
        stats = source_accuracy(dataset, "s1")
        # s1: o1 NYC (exact), o2 LA (exact), o3 NY (exact after projection).
        assert stats["accuracy"] == 1.0
        assert stats["gen_accuracy"] == 1.0

    def test_unknown_source_zero(self, dataset):
        assert source_accuracy(dataset, "ghost")["claims"] == 0

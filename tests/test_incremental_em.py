"""Dirty-object incremental EM: frontier machinery + warm-started fits.

Three layers, mirroring the implementation:

1. **Index/frontier machinery** (`data/columnar.py`): the claimant->object
   CSR index must equal a cold build after arbitrary append splices
   (including claimant renumbering), the frontier expansion must match a
   brute-force BFS at every hop bound, and ``FrontierView`` must gather
   exactly the global rows it claims to.
2. **Oplog window edges** (`data/model.py`): a held encoding is servable at
   exactly ``MAX_OPLOG`` appended ops, unservable at ``MAX_OPLOG + 1`` and
   across an overwrite-triggered log clear — the off-by-one territory the
   incremental fits depend on for their cold-fallback guarantee.
3. **Incremental-vs-cold parity** (inference): property tests over random
   append interleavings — answers only, and mixed claim+answer windows that
   grow the slot layout (new objects, brand-new candidate values) —
   asserting the frontier fits track a cold columnar fit: bitwise when the
   frontier saturates to the full object set, within per-algorithm
   tolerances otherwise (TDH/DS/LFC agree on truths; ZenCrowd, whose
   tail-source reliabilities are genuinely unstable under small deltas, is
   held to accuracy parity).
"""

from __future__ import annotations

import re
import warnings

import numpy as np
import pytest

from repro.crowd.simulator import CrowdSimulator
from repro.crowd.workers import make_worker_pool
from repro.data.columnar import (
    ClaimantObjectsIndex,
    ColumnarClaims,
    FrontierView,
    incremental_frontier,
)
from repro.data.model import Answer, Record, TruthDiscoveryDataset
from repro.datasets import make_birthplaces, make_heritages
from repro.eval.metrics import evaluate
from repro.hierarchy.tree import Hierarchy
from repro.inference import DawidSkene, Lfc, TDHModel, ZenCrowd
from repro.inference.base import (
    WARM_START_DEGRADED_PREFIX,
    warm_start_degradation_message,
)
from repro.inference.tdh import TDHResult


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _sparse_heritages():
    return make_heritages(size=160, n_sources=350, seed=11)


def _add_random_answers(dataset, n, seed, n_workers=7, p_truth=0.7):
    """Append ``n`` seeded answers (mostly truthful, like a crowd round)."""
    rng = np.random.default_rng(seed)
    objects = dataset.objects
    for i in range(n):
        obj = objects[int(rng.integers(len(objects)))]
        ctx = dataset.context(obj)
        truth = dataset.gold.get(obj)
        if truth is not None and truth in ctx.index and rng.random() < p_truth:
            value = truth
        else:
            value = ctx.values[int(rng.integers(len(ctx.values)))]
        dataset.add_answer(Answer(obj, f"w{i % n_workers}", value))


def _normalized(result, obj):
    vec = np.asarray(result.confidences[obj], dtype=float)
    total = vec.sum()
    return vec / total if total > 0 else vec


def _max_confidence_diff(a, b, objects):
    return max(
        float(np.max(np.abs(_normalized(a, o) - _normalized(b, o))))
        for o in objects
    )


def _brute_frontier(col, dirty, hops):
    frontier = set(int(o) for o in dirty)
    for _ in range(hops):
        if len(frontier) == col.n_objects:
            break
        cids = set()
        for oid in frontier:
            lo, hi = col.claim_offsets[oid], col.claim_offsets[oid + 1]
            cids.update(int(c) for c in col.claim_claimant[lo:hi])
        grown = set(frontier)
        for oid in range(col.n_objects):
            lo, hi = col.claim_offsets[oid], col.claim_offsets[oid + 1]
            if any(int(c) in cids for c in col.claim_claimant[lo:hi]):
                grown.add(oid)
        if grown == frontier:
            break
        frontier = grown
    return np.array(sorted(frontier), dtype=np.int64)


def _assert_index_equal(index, other):
    assert np.array_equal(index.offsets, other.offsets)
    assert np.array_equal(index.objects, other.objects)


# ---------------------------------------------------------------------------
# claimant->object CSR index
# ---------------------------------------------------------------------------
def test_claimant_objects_index_matches_brute_force():
    ds = _sparse_heritages()
    col = ds.columnar()
    index = col.claimant_objects
    for cid in range(col.n_claimants):
        expected = sorted(
            int(o)
            for o, c in zip(col.claim_obj, col.claim_claimant)
            if int(c) == cid
        )
        lo, hi = index.offsets[cid], index.offsets[cid + 1]
        assert list(index.objects[lo:hi]) == expected
    # objects_of concatenates the groups of the requested claimants
    cids = np.array([0, min(3, col.n_claimants - 1)], dtype=np.int64)
    got = index.objects_of(cids)
    expected = np.concatenate(
        [index.objects[index.offsets[c] : index.offsets[c + 1]] for c in cids]
    )
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_claimant_objects_index_splices_forward(seed):
    """Property: the spliced index equals a cold build after any interleaving
    of answer and record appends — including appends that introduce new
    claimants mid-order (exercising the claimant renumbering remap)."""
    rng = np.random.default_rng(seed)
    tree = Hierarchy()
    for head in ("A", "B", "C"):
        tree.add_path([head, f"{head}1", f"{head}1a"])
        tree.add_path([head, f"{head}2"])
    values = [f"{h}{s}" for h in "ABC" for s in ("1", "2", "1a")]
    ds = TruthDiscoveryDataset(
        tree, [Record(f"o{i}", f"s{i % 4}", values[i % len(values)]) for i in range(8)]
    )
    ds.columnar().claimant_objects  # prime the encoding AND the index
    for step in range(60):
        objects = ds.objects
        obj = objects[int(rng.integers(len(objects)))]
        if rng.random() < 0.5:
            worker = f"w{int(rng.integers(6))}"
            candidates = ds.candidates(obj)
            ds.add_answer(
                Answer(obj, worker, candidates[int(rng.integers(len(candidates)))])
            )
        else:
            # new sources force claimant-id renumbering through the splice;
            # the value stays inside the object's candidate set so the
            # append is spliceable (new values cold-rebuild by design)
            source = f"s{int(rng.integers(12))}"
            if source in ds.records_for(obj):
                continue
            candidates = ds.candidates(obj)
            ds.add_record(
                Record(obj, source, candidates[int(rng.integers(len(candidates)))])
            )
        if step % 10 == 9:
            col = ds.columnar()
            assert col._claimant_objects is not None  # spliced, not dropped
            _assert_index_equal(
                col.claimant_objects, ClaimantObjectsIndex.build(ColumnarClaims(ds))
            )
    col = ds.columnar()
    _assert_index_equal(
        col.claimant_objects, ClaimantObjectsIndex.build(ColumnarClaims(ds))
    )


# ---------------------------------------------------------------------------
# frontier expansion
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("hops", [0, 1, 2, 3])
def test_frontier_matches_brute_force_bfs(hops):
    ds = _sparse_heritages()
    col = ds.columnar()
    rng = np.random.default_rng(5)
    dirty = rng.choice(col.n_objects, size=4, replace=False)
    frontier = col.frontier(dirty, hops=hops)
    assert np.array_equal(frontier, _brute_frontier(col, dirty, hops))
    # sorted, unique, superset of the dirty set
    assert np.all(np.diff(frontier) > 0)
    assert set(int(d) for d in dirty) <= set(int(f) for f in frontier)


def test_frontier_monotone_in_hops_and_saturates_on_dense_data():
    sparse = _sparse_heritages().columnar()
    dirty = np.array([0, 7], dtype=np.int64)
    sizes = [len(sparse.frontier(dirty, hops=h)) for h in range(4)]
    assert sizes == sorted(sizes)
    assert sizes[0] == 2  # hops=0 is exactly the dirty set
    # BirthPlaces has two near-complete sources: one hop reaches everything
    dense = make_birthplaces(size=120, seed=7).columnar()
    assert len(dense.frontier(np.array([3]), hops=1)) == dense.n_objects


def test_frontier_view_gathers_the_global_rows():
    ds = _sparse_heritages()
    col = ds.columnar()
    frontier = col.frontier(np.array([2, 11, 40]), hops=1)
    fv = FrontierView(col, frontier)
    assert fv.slot_lo == 0 and fv.slot_hi == int(np.sum(col.sizes[frontier]))
    # slot/claim gathers match direct per-object slicing
    assert np.array_equal(fv.sizes, col.sizes[frontier])
    for local, oid in enumerate(frontier):
        lo, hi = fv.value_offsets[local], fv.value_offsets[local + 1]
        assert np.array_equal(
            fv.slot_ids[lo:hi],
            np.arange(col.value_offsets[oid], col.value_offsets[oid + 1]),
        )
    assert np.array_equal(
        fv.claim_claimant, col.claim_claimant[fv.claim_ids]
    )
    # local claim_slot points at the same candidate the global table does
    assert np.array_equal(
        fv.slot_ids[fv.claim_slot], col.claim_slot[fv.claim_ids]
    )
    # the pair gather shares the global tables' confusion-cell id space
    pairs = col.pairs
    assert np.array_equal(fv.cell_index, pairs.cell_index[fv.pair_rows])
    assert np.array_equal(fv.total_index, pairs.total_index[fv.pair_rows])
    assert np.array_equal(
        fv.slot_ids[fv.pair_slot], pairs.pair_slot[fv.pair_rows]
    )


def _grow_candidate_set(dataset, obj, source):
    """Append a record claiming a value outside ``Vo`` — slot growth
    *mid-layout* (the new slot lands at ``obj``'s Vo tail, shifting every
    later object's global slot ids)."""
    fresh = next(
        v
        for v in dataset.hierarchy.non_root_nodes()
        if v not in dataset.candidates(obj)
    )
    dataset.add_record(Record(obj, source, fresh))
    return fresh


def test_incremental_frontier_serves_answer_deltas():
    ds = _sparse_heritages()
    prev = ds.columnar()
    _add_random_answers(ds, 10, seed=3)
    plan = incremental_frontier(ds, prev)
    assert plan is not None
    assert not plan.grew  # answers never move the slot layout
    col, frontier, ops = plan
    assert col is ds.columnar()
    touched = {op[1] for op in ops}
    assert {col.objects[i] for i in frontier} >= touched
    assert len(ops) == 10
    # another dataset's encoding is refused by the lineage guard
    foreign = _sparse_heritages().columnar()
    assert incremental_frontier(ds, foreign) is None
    # an in-place overwrite poisons the window -> cold fallback
    ds2 = _sparse_heritages()
    prev2 = ds2.columnar()
    obj = ds2.objects[0]
    source, old = next(iter(ds2.records_for(obj).items()))
    replacement = next(v for v in ds2.candidates(obj) if v != old)
    ds2.add_record(Record(obj, source, replacement))
    assert incremental_frontier(ds2, prev2) is None


def test_incremental_frontier_serves_mixed_record_and_answer_deltas():
    """Satellite regression: a window mixing answer appends with slot-growth
    record appends (a brand-new candidate value mid-layout AND a brand-new
    object at the tail) is servable — the dirty set is mapped through the
    *new* encoding (whose ids the old one has never seen) and deduped, and
    the plan's ``slot_map`` relocates every old slot into the grown layout."""
    ds = _sparse_heritages()
    prev = ds.columnar()
    obj = ds.objects[0]
    _grow_candidate_set(ds, obj, "growth-source")
    donor_value = ds.candidates(ds.objects[1])[0]
    ds.add_record(Record("brand-new-object", "growth-source-2", donor_value))
    # repeated touches of one object must collapse to one dirty id
    ds.add_answer(Answer(obj, "w0", ds.candidates(obj)[0]))
    ds.add_answer(Answer(obj, "w1", ds.candidates(obj)[0]))
    ds.add_answer(Answer("brand-new-object", "w0", donor_value))
    plan = incremental_frontier(ds, prev)
    assert plan is not None and plan.grew
    col, frontier, ops = plan
    assert col is ds.columnar()
    assert len(ops) == 5
    # the new object's id only exists in the new encoding — mapping + dedupe
    new_oid = col.object_index["brand-new-object"]
    assert new_oid == col.n_objects - 1 == prev.n_objects
    dirty = {col.object_index[o] for o in {op[1] for op in ops}}
    assert dirty <= set(int(f) for f in frontier)
    # slot_map relocates *every* old slot, preserving each slot's value
    assert len(plan.slot_map) == prev.n_slots
    assert [col.values[v] for v in col.slot_vid[plan.slot_map]] == [
        prev.values[v] for v in prev.slot_vid
    ]
    # the mask marks exactly the slots that did not exist before, and
    # expand_slots scatters old per-slot state around them
    assert int(plan.new_slot_mask.sum()) == col.n_slots - prev.n_slots
    old_state = np.arange(prev.n_slots, dtype=np.float64)
    expanded = plan.expand_slots(old_state, fill=-1.0)
    assert np.array_equal(expanded[plan.slot_map], old_state)
    assert np.all(expanded[plan.new_slot_mask] == -1.0)


def test_frontier_state_reuse_across_overlapping_deltas():
    """Consecutive overlapping deltas — the serving steady state — reuse the
    previous round's computed frontier instead of re-running the BFS, as
    long as the new dirty objects and their claimants are contained in it
    (a stored superset frontier is always sound)."""
    ds = _sparse_heritages()
    model = DawidSkene(max_iter=20, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    obj, obj2 = ds.objects[0], ds.objects[1]
    ds.add_answer(Answer(obj, "w0", ds.candidates(obj)[0]))
    ds.add_answer(Answer(obj2, "w1", ds.candidates(obj2)[0]))
    inc = model.fit(ds, warm_start=warm)
    assert inc.frontier_size is not None
    state = inc.frontier_state
    assert state is not None and state["hops"] == 1
    held = ds.columnar()
    assert state["version"] == held.version
    # w0 — already a stored claimant via obj — now answers obj2, already in
    # the stored frontier: the delta is contained and claimant ids keep
    # their ranks (w0's first occurrence stays at obj, the earlier object),
    # so the stored frontier is reused without a BFS. (Had w1 answered obj
    # instead, its first occurrence would move earlier, re-rank claimant
    # ids, and the prefix guard would — correctly — refuse the reuse.)
    ds.add_answer(Answer(obj2, "w0", ds.candidates(obj2)[0]))
    plan = incremental_frontier(ds, held, reuse=state)
    assert plan is not None and plan.frontier_reused
    assert np.array_equal(plan.frontier, state["frontier"])
    # an object outside the stored frontier forces a fresh BFS
    outside = next(
        o
        for o in ds.objects
        if ds.columnar().object_index[o]
        not in set(int(f) for f in state["frontier"])
    )
    held2 = ds.columnar()
    plan2_state = plan.frontier_state
    ds.add_answer(Answer(outside, "w5", ds.candidates(outside)[0]))
    plan2 = incremental_frontier(ds, held2, reuse=plan2_state)
    assert plan2 is not None and not plan2.frontier_reused
    # end to end: the model threads the state through warm-started rounds
    inc2 = model.fit(ds, warm_start=inc)
    assert inc2.frontier_state is not None or inc2.frontier_size is None


# ---------------------------------------------------------------------------
# oplog cap edges (satellite: MAX_OPLOG off-by-one)
# ---------------------------------------------------------------------------
def _primed_birthplaces(cap):
    ds = make_birthplaces(size=40, seed=6)
    ds.MAX_OPLOG = cap  # per-instance override, class attr untouched
    held = ds.columnar()
    return ds, held


def test_oplog_window_servable_at_exactly_max_oplog():
    ds, held = _primed_birthplaces(cap=8)
    for i, obj in enumerate(ds.objects[:8]):
        ds.add_answer(Answer(obj, f"w{i}", ds.candidates(obj)[0]))
    assert len(ds._oplog) == 8  # at the cap, nothing trimmed
    delta = ds.dirty_objects_since(held.version)
    assert delta is not None and len(delta[1]) == 8
    plan = incremental_frontier(ds, held)
    assert plan is not None
    col = ds.columnar()
    assert col.n_claims == ColumnarClaims(ds).n_claims
    assert np.array_equal(col.claim_claimant, ColumnarClaims(ds).claim_claimant)


def test_oplog_window_unservable_at_max_oplog_plus_one():
    ds, held = _primed_birthplaces(cap=8)
    for i, obj in enumerate(ds.objects[:9]):
        ds.add_answer(Answer(obj, f"w{i}", ds.candidates(obj)[0]))
    assert len(ds._oplog) == 8  # the oldest op was trimmed away
    assert ds._oplog_base == held.version + 1
    assert ds._columnar is None  # the cached encoding was stranded
    assert ds.dirty_objects_since(held.version) is None
    assert incremental_frontier(ds, held) is None  # held window spans the trim
    # the cold rebuild still produces a correct encoding
    assert np.array_equal(
        ds.columnar().claim_claimant, ColumnarClaims(ds).claim_claimant
    )


def test_oplog_clear_by_overwrite_is_always_detected():
    """A held encoding whose window spans an overwrite-triggered log clear
    must be caught by the ``_oplog_base`` check regardless of how many ops
    follow the clear."""
    ds, held = _primed_birthplaces(cap=8)
    obj = next(o for o in ds.objects if len(ds.candidates(o)) >= 2)
    source, old = next(iter(ds.records_for(obj).items()))
    replacement = next(v for v in ds.candidates(obj) if v != old)
    ds.add_record(Record(obj, source, replacement))  # clears the log
    for i, obj2 in enumerate(o for o in ds.objects[:4] if o != obj):
        ds.add_answer(Answer(obj2, f"w{i}", ds.candidates(obj2)[0]))
    assert ds._oplog_base > held.version
    assert ds.dirty_objects_since(held.version) is None
    assert incremental_frontier(ds, held) is None


# ---------------------------------------------------------------------------
# warm-start gate (satellite: clones / unservable record windows degrade)
# ---------------------------------------------------------------------------
def test_warm_start_from_a_clone_degrades_to_cold_with_warning():
    # The serving layer counts these degradations structurally (the
    # ``WarmStartDegradation.reason`` attribute); the exact message is still
    # pinned here because logs and external tooling grep on the shared
    # ``WARM_START_DEGRADED_PREFIX``.
    ds = _sparse_heritages()
    model = DawidSkene(max_iter=20, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    clone = ds.copy()
    expected = warm_start_degradation_message(
        "'heritages'",
        "it was fitted on a different dataset object (a clone?), so its"
        " claimant/slot keys cannot be trusted",
    )
    assert expected.startswith(WARM_START_DEGRADED_PREFIX)
    with pytest.warns(RuntimeWarning, match=f"^{re.escape(expected)}$") as caught:
        result = model.fit(clone, warm_start=warm)
    assert any(
        getattr(w.message, "reason", None) == "clone" for w in caught.list
    )
    assert result.frontier_size is None  # cold path, not the frontier fit
    cold = DawidSkene(max_iter=20, use_columnar=True).fit(ds.copy())
    assert _max_confidence_diff(result, cold, ds.objects) == 0.0


def test_warm_start_record_append_is_accepted_and_served_incrementally():
    """The cold-fallback cliff this PR removes: a record *append* (here one
    widening an object's candidate set) used to degrade the warm start to a
    cold fit. The gate now trusts append-only record windows and the
    frontier fit scatter-expands the warm per-slot state into the grown
    layout — no degradation warning, incremental service."""
    ds = _sparse_heritages()
    model = TDHModel(max_iter=15, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    obj = ds.objects[0]
    _grow_candidate_set(ds, obj, "brand-new-source")
    ds.add_answer(Answer(obj, "w0", ds.candidates(obj)[0]))
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        result = model.fit(ds, warm_start=warm)
    assert result.frontier_size is not None  # the frontier path served it


def test_warm_start_after_record_overwrite_degrades_to_cold_with_warning():
    """What still degrades is a record window the oplog cannot vouch for —
    an in-place overwrite (or a window trimmed past the fit), which may have
    changed candidate sets in place."""
    ds = _sparse_heritages()
    model = TDHModel(max_iter=15, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    fitted_at = warm.records_version
    obj = next(o for o in ds.objects if len(ds.candidates(o)) >= 2)
    source, old = next(iter(ds.records_for(obj).items()))
    replacement = next(v for v in ds.candidates(obj) if v != old)
    ds.add_record(Record(obj, source, replacement))  # in-place overwrite
    expected = warm_start_degradation_message(
        "'heritages'",
        f"it was fitted at records_version {fitted_at} but the record window"
        f" to the current records_version {ds.records_version} is not an"
        " append-only op log (an in-place overwrite, or a window trimmed"
        " past the fit), so candidate sets may have changed in place",
    )
    assert expected.startswith(WARM_START_DEGRADED_PREFIX)
    with pytest.warns(RuntimeWarning, match=f"^{re.escape(expected)}$") as caught:
        result = model.fit(ds, warm_start=warm)
    assert any(
        getattr(w.message, "reason", None) == "unservable-record-window"
        for w in caught.list
    )
    assert result.frontier_size is None


def test_unnamed_dataset_degradation_message_labels_it_unnamed():
    ds = _sparse_heritages()
    ds.name = ""
    model = TDHModel(max_iter=5, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    with pytest.warns(
        RuntimeWarning,
        match=f"^{re.escape(WARM_START_DEGRADED_PREFIX)}<unnamed>: ",
    ):
        model.fit(ds.copy(), warm_start=warm)


# ---------------------------------------------------------------------------
# incremental-vs-cold parity (the tentpole's correctness contract)
# ---------------------------------------------------------------------------
def _parity_models():
    kw = dict(max_iter=60, tol=1e-7, use_columnar=True)
    return {
        # (model factory, truths must match, confidence tolerance); the
        # confidence bars bound the stored-state approximation drift over
        # chained rounds, truth equality is the hard contract
        "TDH": (lambda inc: TDHModel(incremental=inc, **kw), True, 2e-2),
        "DS": (lambda inc: DawidSkene(incremental=inc, **kw), True, 1e-5),
        "LFC": (lambda inc: Lfc(incremental=inc, **kw), True, 5e-2),
    }


@pytest.mark.parametrize("name", ["TDH", "DS", "LFC"])
@pytest.mark.parametrize("seed", [0, 1])
def test_incremental_tracks_cold_over_random_append_rounds(name, seed):
    """Property: chained incremental rounds (each warm-started from the
    previous incremental result) track a cold columnar fit on a mirrored
    dataset receiving the identical answer stream."""
    factory, truths_match, tol = _parity_models()[name]
    base = _sparse_heritages()
    ds = base.copy()
    mirror = base.copy()
    model = factory(True)
    cold_model = factory(False)
    warm = model.fit(ds)
    served_incrementally = 0
    for round_no in range(3):
        rng_seed = 100 * seed + round_no
        _add_random_answers(ds, 20, seed=rng_seed)
        _add_random_answers(mirror, 20, seed=rng_seed)
        warm = model.fit(ds, warm_start=warm)
        cold = cold_model.fit(mirror)
        if warm.frontier_size is not None:
            served_incrementally += 1
            assert warm.frontier_size < len(ds.objects)
        if truths_match:
            t_inc, t_cold = warm.truths(), cold.truths()
            assert all(t_inc[o] == t_cold[o] for o in ds.objects)
        assert _max_confidence_diff(warm, cold, ds.objects) < tol
    assert served_incrementally > 0  # the frontier path actually ran


def _add_mixed_delta(dataset, seed, n_answers=15):
    """One mixed crowd round: answer appends plus slot-growth record appends
    (brand-new candidate values mid-layout, one brand-new object at the
    tail). Deterministic in ``seed`` so a mirror receives the same stream."""
    _add_random_answers(dataset, n_answers, seed=seed)
    rng = np.random.default_rng(seed + 7)
    objects = dataset.objects
    for k in range(2):
        obj = objects[int(rng.integers(len(objects)))]
        fresh = next(
            (
                v
                for v in dataset.hierarchy.non_root_nodes()
                if v not in dataset.candidates(obj)
            ),
            None,
        )
        if fresh is not None:
            dataset.add_record(Record(obj, f"growth-src-{seed}-{k}", fresh))
    donor = objects[int(rng.integers(len(objects)))]
    dataset.add_record(
        Record(
            f"new-obj-{seed}", f"growth-src-{seed}-n", dataset.candidates(donor)[0]
        )
    )


@pytest.mark.parametrize("name", ["TDH", "DS", "LFC"])
@pytest.mark.parametrize("seed", [0, 1])
def test_incremental_tracks_cold_with_slot_growth(name, seed):
    """Property (the tentpole's contract): chained incremental rounds whose
    windows *grow the slot layout* — new objects and brand-new candidate
    values mixed with answers — still track a cold columnar fit on a
    mirrored dataset, without ever degrading the warm start."""
    factory, truths_match, tol = _parity_models()[name]
    base = _sparse_heritages()
    ds = base.copy()
    mirror = base.copy()
    model = factory(True)
    cold_model = factory(False)
    warm = model.fit(ds)
    served_incrementally = 0
    for round_no in range(3):
        rng_seed = 500 * seed + round_no
        _add_mixed_delta(ds, rng_seed)
        _add_mixed_delta(mirror, rng_seed)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            warm = model.fit(ds, warm_start=warm)  # growth must not degrade
        cold = cold_model.fit(mirror)
        if warm.frontier_size is not None:
            served_incrementally += 1
            assert warm.frontier_size < len(ds.objects)
        # A brand-new candidate value widens the *global* value space (every
        # confusion row's smoothing denominator moves), so a clean object
        # frozen at its warm posterior can legitimately flip in the cold
        # mirror when it sits on a knife edge. The growth contract is
        # therefore parity up to a bounded handful of knife-edge objects,
        # not the per-object equality the answers-only suite holds.
        diffs = {
            o: float(np.max(np.abs(_normalized(warm, o) - _normalized(cold, o))))
            for o in ds.objects
        }
        off_tolerance = [o for o in ds.objects if diffs[o] >= tol]
        assert len(off_tolerance) <= 3, (off_tolerance, max(diffs.values()))
        if truths_match:
            t_inc, t_cold = warm.truths(), cold.truths()
            disagree = [o for o in ds.objects if t_inc[o] != t_cold[o]]
            assert len(disagree) <= 3, disagree
    assert served_incrementally > 0  # the frontier path actually ran


@pytest.mark.parametrize("seed", [0, 1])
def test_zencrowd_incremental_accuracy_parity(seed):
    """ZenCrowd's Zipf-tail reliabilities are legitimately unstable under
    small deltas (1-2-claim sources swing by O(1/3) when one object flips),
    so the parity bar is accuracy-level, not per-confidence."""
    base = _sparse_heritages()
    ds, mirror = base.copy(), base.copy()
    model = ZenCrowd(max_iter=60, tol=1e-7, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    _add_random_answers(ds, 30, seed=seed)
    _add_random_answers(mirror, 30, seed=seed)
    inc = model.fit(ds, warm_start=warm)
    cold = ZenCrowd(max_iter=60, tol=1e-7, use_columnar=True).fit(mirror)
    assert inc.frontier_size is not None
    t_inc, t_cold = inc.truths(), cold.truths()
    agreement = sum(t_inc[o] == t_cold[o] for o in ds.objects) / len(ds.objects)
    assert agreement >= 0.9
    acc_inc = evaluate(ds, t_inc).accuracy
    acc_cold = evaluate(mirror, t_cold).accuracy
    assert abs(acc_inc - acc_cold) <= 0.05


@pytest.mark.parametrize(
    "factory",
    [
        lambda inc: TDHModel(max_iter=25, use_columnar=True, incremental=inc),
        lambda inc: DawidSkene(max_iter=25, use_columnar=True, incremental=inc),
        lambda inc: ZenCrowd(max_iter=25, use_columnar=True, incremental=inc),
        lambda inc: Lfc(max_iter=25, use_columnar=True, incremental=inc),
    ],
    ids=["TDH", "DS", "ZENCROWD", "LFC"],
)
@pytest.mark.parametrize("grow", [False, True], ids=["answer-only", "slot-growth"])
def test_saturated_frontier_is_bitwise_exact(factory, grow):
    """BirthPlaces' near-complete sources make any 1-hop frontier the full
    object set: the incremental fit must delegate to the full columnar fit
    and reproduce it bitwise — including when the window also *grew the slot
    layout* (a record claiming a brand-new candidate value), which used to
    degrade the warm start before reaching the saturation check."""

    def build():
        ds = make_birthplaces(size=120, seed=7)
        return ds

    def append(dataset):
        obj = dataset.objects[5]
        if grow:
            _grow_candidate_set(dataset, obj, "late-source")
        dataset.add_answer(Answer(obj, "w0", dataset.candidates(obj)[0]))

    ds = build()
    model = factory(True)
    warm = model.fit(ds)
    append(ds)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        inc = model.fit(ds, warm_start=warm)
    assert inc.frontier_size is None  # saturation delegated to the full fit

    mirror = build()
    cold_model = factory(False)
    warm_mirror = cold_model.fit(mirror)
    append(mirror)
    if isinstance(inc, TDHResult):
        expected = cold_model.fit(mirror, warm_start=warm_mirror)
    else:
        expected = cold_model.fit(mirror)
    assert inc.iterations == expected.iterations
    for o in ds.objects:
        assert np.array_equal(inc.confidences[o], expected.confidences[o])


def test_tdh_incremental_reuses_and_patches_em_state():
    ds = _sparse_heritages()
    model = TDHModel(max_iter=40, tol=1e-6, use_columnar=True, incremental=True)
    warm = model.fit(ds)
    assert warm.em_state is not None and warm.columnar_state is not None
    _add_random_answers(ds, 15, seed=9)
    inc = model.fit(ds, warm_start=warm)
    assert inc.frontier_size is not None
    assert inc.em_state is not None  # chained rounds keep warm-starting
    assert inc.columnar_state is not None
    # the patched per-claimant case sums stay close to a cold fit's
    cold = TDHModel(max_iter=40, tol=1e-6, use_columnar=True).fit(ds)
    g_inc = dict(zip(inc.em_state["claimants"], np.asarray(inc.em_state["g_sums"])))
    g_cold = dict(
        zip(cold.em_state["claimants"], np.asarray(cold.em_state["g_sums"]))
    )
    assert set(g_inc) == set(g_cold)
    worst = max(float(np.max(np.abs(g_inc[k] - g_cold[k]))) for k in g_cold)
    assert worst < 0.5  # case-responsibility mass, claimant-level


def test_incremental_without_warm_or_disabled_is_cold():
    ds = _sparse_heritages()
    model = TDHModel(max_iter=15, use_columnar=True, incremental=True)
    result = model.fit(ds)  # no warm_start: plain cold fit
    assert result.frontier_size is None
    off = TDHModel(max_iter=15, use_columnar=True)
    warm = off.fit(ds)
    _add_random_answers(ds, 5, seed=1)
    result = off.fit(ds, warm_start=warm)  # knob off: warm but full EM
    assert result.frontier_size is None


def test_frontier_hops_knob_validates_and_widens():
    with pytest.raises(ValueError, match="frontier_hops"):
        TDHModel(frontier_hops=-1)
    ds = _sparse_heritages()
    model0 = TDHModel(
        max_iter=20, use_columnar=True, incremental=True, frontier_hops=0
    )
    warm = model0.fit(ds)
    _add_random_answers(ds, 8, seed=2)
    inc = model0.fit(ds, warm_start=warm)
    # hops=0 re-converges only the touched objects themselves
    assert inc.frontier_size is not None and inc.frontier_size <= 8


# ---------------------------------------------------------------------------
# the crowd loop end to end
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [
        lambda: TDHModel(max_iter=20, use_columnar=True, incremental=True),
        lambda: DawidSkene(max_iter=20, use_columnar=True, incremental=True),
    ],
    ids=["TDH", "DS"],
)
def test_simulator_threads_warm_starts_into_incremental_models(factory):
    from repro.assignment import MaxEntropyAssigner

    ds = make_heritages(size=60, n_sources=120, seed=11)
    simulator = CrowdSimulator(
        ds, factory(), MaxEntropyAssigner(), make_worker_pool(4, seed=3), seed=5
    )
    history = simulator.run(rounds=3, tasks_per_worker=3)
    assert len(history.records) == 4
    assert all(np.isfinite(r.accuracy) for r in history.records)
    assert history.final.answers_collected > 0


def test_cli_exposes_the_incremental_knob():
    from repro.experiments.__main__ import build_parser
    from repro.experiments.common import FAST, inference_factories

    args = build_parser().parse_args(["fig6", "--incremental"])
    assert args.incremental is True
    factories = inference_factories(FAST, engine="columnar", incremental=True)
    for name in ("TDH", "LFC"):
        assert factories[name]().incremental is True

"""ColumnarHierarchy: the CSR-encoded hierarchy view behind the vectorized
hierarchy-aware algorithms (TDH, ASUMS, DOCS), plus the dataset-version
staleness contract of ``dataset.columnar()``.

Covers the tree shapes the CSR encoder must survive: single-node trees (root
only, and root plus one claimable value), hierarchy values that are never
claimed (absent from the encoding, so ancestor chains skip them), and the
multi-level numeric rounding bins of :mod:`repro.hierarchy.numeric`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.columnar import StaleEncodingError
from repro.data.model import Answer, DatasetError, Record, TruthDiscoveryDataset
from repro.datasets import claims_to_dataset
from repro.hierarchy.numeric import build_numeric_hierarchy, rounding_chain
from repro.hierarchy.tree import Hierarchy


def make_geo_hierarchy() -> Hierarchy:
    h = Hierarchy()
    h.add_path(["USA", "California", "LA"])
    h.add_path(["USA", "NY", "NYC"])
    h.add_path(["UK", "London"])
    return h


# ---------------------------------------------------------------------------
# tree-shape edge cases
# ---------------------------------------------------------------------------
def test_root_only_hierarchy_rejects_all_claims():
    """A single-node tree has no claimable values — the dataset refuses every
    claim, so the encoder only ever sees it empty."""
    h = Hierarchy()
    ds = TruthDiscoveryDataset(h, [])
    with pytest.raises(DatasetError):
        ds.add_record(Record("o", "s", h.root))
    col = ds.columnar()
    hier = col.hierarchy
    assert col.n_objects == col.n_slots == col.n_claims == 0
    assert hier.n_values == 0
    assert len(hier.anc_vids) == 0 and len(hier.slot_anc_slots) == 0


def test_single_value_hierarchy():
    """Root plus one claimable value: every CSR segment is empty, no object
    is in OH, and the value is its own depth-1 domain."""
    h = Hierarchy()
    h.add_edge("only", h.root)
    ds = TruthDiscoveryDataset(h, [Record("o", s, "only") for s in "ab"])
    hier = ds.columnar().hierarchy
    assert hier.n_values == 1
    assert list(hier.ancestors_of_vid(0)) == []
    assert list(hier.descendants_of_vid(0)) == []
    assert list(hier.ancestors_of_slot(0)) == []
    assert hier.slot_gsize.tolist() == [0]
    assert not hier.obj_has_hierarchy[0]
    assert hier.top_values[0] == "only"
    assert hier.depth[0] == 1


def test_value_absent_from_hierarchy_is_rejected():
    h = make_geo_hierarchy()
    ds = TruthDiscoveryDataset(h, [Record("o", "s", "LA")])
    with pytest.raises(DatasetError):
        ds.add_record(Record("o", "s2", "Atlantis"))


def test_unclaimed_intermediate_values_are_skipped_in_value_csr():
    """"California" sits between "LA" and "USA" in the tree but is never
    claimed: the value-level ancestor CSR (keyed by the claim table's value
    ids) must skip it while keeping nearest-first order."""
    h = make_geo_hierarchy()
    ds = TruthDiscoveryDataset(
        h, [Record("o", "s1", "LA"), Record("o", "s2", "USA")]
    )
    col = ds.columnar()
    hier = col.hierarchy
    la, usa = col.value_index["LA"], col.value_index["USA"]
    assert list(hier.ancestors_of_vid(la)) == [usa]  # California absent
    assert list(hier.descendants_of_vid(usa)) == [la]
    # The slot-level Go(v) inside Vo agrees with the object context.
    assert list(hier.ancestors_of_slot(0)) == [1]  # LA's slot -> USA's slot
    assert hier.obj_has_hierarchy[0]
    # Euler test still sees the full tree: USA is an ancestor of LA even
    # though the intermediate node is unencoded.
    assert hier.is_ancestor_vid(np.array([usa]), np.array([la])).tolist() == [True]
    assert hier.is_ancestor_vid(np.array([la]), np.array([usa])).tolist() == [False]


def test_sibling_subtrees_are_not_ancestors():
    h = make_geo_hierarchy()
    ds = TruthDiscoveryDataset(
        h,
        [
            Record("o", "s1", "LA"),
            Record("o", "s2", "NYC"),
            Record("o", "s3", "London"),
        ],
    )
    col = ds.columnar()
    hier = col.hierarchy
    la = col.value_index["LA"]
    nyc = col.value_index["NYC"]
    london = col.value_index["London"]
    pairs = np.array([[la, nyc], [nyc, la], [la, london], [london, nyc]])
    assert not hier.is_ancestor_vid(pairs[:, 0], pairs[:, 1]).any()
    # No candidate ancestors within Vo either: the object is outside OH.
    assert hier.slot_gsize.tolist() == [0, 0, 0]
    assert not hier.obj_has_hierarchy[0]


def test_domain_codes_match_depth1_ancestors():
    h = make_geo_hierarchy()
    ds = TruthDiscoveryDataset(
        h,
        [
            Record("o1", "s1", "LA"),
            Record("o1", "s2", "California"),
            Record("o2", "s1", "London"),
            Record("o3", "s1", "UK"),
        ],
    )
    col = ds.columnar()
    hier = col.hierarchy
    tops = {col.values[vid]: hier.top_values[vid] for vid in range(hier.n_values)}
    assert tops == {"LA": "USA", "California": "USA", "London": "UK", "UK": "UK"}
    # Dense codes are consistent with the decoded domain list.
    for vid in range(hier.n_values):
        assert hier.domains[hier.top_code[vid]] == hier.top_values[vid]


def test_numeric_rounding_bins_roundtrip():
    """Multi-level numeric bins: the CSR arrays must reproduce each claim's
    rounding chain (605.196 -> 605.2 -> 605 -> 610 -> 600) as its ancestor
    path, with depths decreasing along the chain."""
    values = [605.196, 605.2, 605.0, 610.0, 600.0, 98.3]
    hierarchy, canonical = build_numeric_hierarchy(values, max_digits=6)
    ds = TruthDiscoveryDataset(
        hierarchy,
        [Record("obj", f"s{i}", canonical[v]) for i, v in enumerate(values)],
    )
    col = ds.columnar()
    hier = col.hierarchy
    for raw in values:
        vid = col.value_index[canonical[raw]]
        chain = rounding_chain(raw, max_digits=6)
        expected = [col.value_index[a] for a in chain[1:] if a in col.value_index]
        assert list(hier.ancestors_of_vid(vid)) == expected
        depths = [hier.depth[vid], *(hier.depth[a] for a in expected)]
        assert depths == sorted(depths, reverse=True)
    assert hier.obj_has_hierarchy[0]
    # Slot-level Go(v) agrees with the context the dict engines use.
    ctx = ds.context("obj")
    for pos in range(ctx.size):
        assert [int(s) for s in hier.ancestors_of_slot(pos)] == ctx.ancestor_sets[pos]


def test_numeric_dataset_wrapper_encodes_hierarchy():
    claims = {
        "price": {"s1": 605.196, "s2": 605.2, "s3": 605.196, "s4": 599.0},
        "volume": {"s1": 1200.0, "s2": 1200.0, "s3": 1250.0},
    }
    ds = claims_to_dataset(claims, gold={"price": 605.196, "volume": 1200.0})
    col = ds.columnar()
    hier = col.hierarchy
    # Distinct canonical claims: {605.196, 605.2, 599.0} and {1200.0, 1250.0}.
    # The two objects share no values, so slots and value ids coincide.
    assert col.n_slots == 5
    assert hier.n_values == 5
    assert len(hier.slot_anc_offsets) == col.n_slots + 1


# ---------------------------------------------------------------------------
# staleness / version regression (the add_record/add_answer cache fix)
# ---------------------------------------------------------------------------
@pytest.fixture()
def geo_dataset():
    h = make_geo_hierarchy()
    return TruthDiscoveryDataset(
        h,
        [
            Record("o1", "s1", "LA"),
            Record("o1", "s2", "California"),
            Record("o2", "s1", "London"),
        ],
    )


def test_columnar_rebuilds_after_add_record(geo_dataset):
    ds = geo_dataset
    stale = ds.columnar()
    assert ds.columnar() is stale  # cached while unchanged
    ds.add_record(Record("o3", "s2", "NYC"))
    fresh = ds.columnar()
    assert fresh is not stale
    assert fresh.n_claims == stale.n_claims + 1
    assert fresh.n_objects == stale.n_objects + 1


def test_columnar_rebuilds_after_add_answer(geo_dataset):
    ds = geo_dataset
    stale = ds.columnar()
    ds.add_answer(Answer("o1", "w1", "LA"))
    fresh = ds.columnar()
    assert fresh is not stale
    assert fresh.n_claims == stale.n_claims + 1
    assert fresh.claim_is_answer.sum() == 1
    assert fresh.claimant_is_worker.sum() == 1


def test_stale_encoding_raises_on_assert_fresh(geo_dataset):
    ds = geo_dataset
    held = ds.columnar()
    held.assert_fresh(ds)  # fresh encoding passes
    ds.add_answer(Answer("o1", "w1", "California"))
    with pytest.raises(StaleEncodingError, match="re-fetch"):
        held.assert_fresh(ds)
    ds.columnar().assert_fresh(ds)  # the rebuilt encoding is fresh again


def test_overwriting_record_invalidates_encoding(geo_dataset):
    """Overwriting an existing (object, source) claim changes claim_pos even
    though claim counts stay constant — the version stamp must catch it."""
    ds = geo_dataset
    stale = ds.columnar()
    ds.add_record(Record("o1", "s2", "LA"))  # s2 changes its mind
    fresh = ds.columnar()
    assert fresh is not stale
    assert fresh.n_claims == stale.n_claims
    with pytest.raises(StaleEncodingError):
        stale.assert_fresh(ds)

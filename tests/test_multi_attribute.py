"""Tests for the multi-attribute extension (repro.core.multi_attribute)."""

import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset, Vote
from repro.core import MultiAttributeTruthDiscovery, TDHModel


@pytest.fixture()
def attribute_datasets():
    """Two attributes of the same celebrities: birthplace and residence."""
    geo = Hierarchy()
    geo.add_path(["USA", "NY", "NYC"])
    geo.add_path(["USA", "LA"])
    geo.add_path(["UK", "London"])

    birth = TruthDiscoveryDataset(
        geo,
        [
            Record("alice", "s1", "NYC"),
            Record("alice", "s2", "NY"),
            Record("bob", "s1", "London"),
            Record("bob", "s2", "London"),
        ],
        gold={"alice": "NYC", "bob": "London"},
        name="birthplace",
    )
    residence = TruthDiscoveryDataset(
        geo,
        [
            Record("alice", "s1", "LA"),
            Record("alice", "s3", "LA"),
            Record("bob", "s2", "NYC"),
        ],
        gold={"alice": "LA", "bob": "NYC"},
        name="residence",
    )
    return {"birthplace": birth, "residence": residence}


class TestFit:
    def test_fits_all_attributes(self, attribute_datasets):
        result = MultiAttributeTruthDiscovery().fit(attribute_datasets)
        assert set(result.attributes) == {"birthplace", "residence"}

    def test_truth_per_attribute(self, attribute_datasets):
        result = MultiAttributeTruthDiscovery().fit(attribute_datasets)
        assert result.truth("birthplace", "alice") == "NYC"
        assert result.truth("residence", "alice") == "LA"

    def test_truths_keyed_by_pair(self, attribute_datasets):
        result = MultiAttributeTruthDiscovery().fit(attribute_datasets)
        truths = result.truths()
        assert truths[("birthplace", "bob")] == "London"
        assert len(truths) == 4

    def test_record_fuses_across_attributes(self, attribute_datasets):
        result = MultiAttributeTruthDiscovery().fit(attribute_datasets)
        assert result.record("alice") == {"birthplace": "NYC", "residence": "LA"}

    def test_custom_model_factory(self, attribute_datasets):
        result = MultiAttributeTruthDiscovery(model_factory=Vote).fit(
            attribute_datasets
        )
        assert result.truth("birthplace", "bob") == "London"

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            MultiAttributeTruthDiscovery().fit({})


class TestAssign:
    def test_budget_respected_across_attributes(self, attribute_datasets):
        discovery = MultiAttributeTruthDiscovery()
        result = discovery.fit(attribute_datasets)
        assignment = discovery.assign(attribute_datasets, result, ["w0", "w1"], 2)
        assert set(assignment) == {"w0", "w1"}
        for tasks in assignment.values():
            assert len(tasks) <= 2
            for attribute, obj in tasks:
                assert attribute in attribute_datasets
                assert obj in attribute_datasets[attribute].objects

    def test_no_pair_assigned_twice(self, attribute_datasets):
        discovery = MultiAttributeTruthDiscovery()
        result = discovery.fit(attribute_datasets)
        assignment = discovery.assign(attribute_datasets, result, ["w0", "w1"], 3)
        flat = [pair for tasks in assignment.values() for pair in tasks]
        assert len(flat) == len(set(flat))

    def test_requires_tdh(self, attribute_datasets):
        discovery = MultiAttributeTruthDiscovery(model_factory=Vote)
        result = discovery.fit(attribute_datasets)
        with pytest.raises(TypeError):
            discovery.assign(attribute_datasets, result, ["w0"], 1)

    def test_uses_tdh_by_default(self, attribute_datasets):
        discovery = MultiAttributeTruthDiscovery()
        assert isinstance(discovery.model_factory(), TDHModel)

"""Shared fixtures: small seeded datasets and the paper's Table-1 example."""

from __future__ import annotations

import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.datasets import make_birthplaces, make_heritages


@pytest.fixture(scope="session")
def table1_dataset() -> TruthDiscoveryDataset:
    """The paper's introductory example (Table 1) plus enough extra claims
    for reliability estimation."""
    hierarchy = Hierarchy()
    hierarchy.add_path(["USA", "NY", "Liberty Island"])
    hierarchy.add_path(["USA", "LA"])
    hierarchy.add_path(["UK", "London", "Westminster"])
    hierarchy.add_path(["UK", "Manchester"])
    records = [
        Record("Statue of Liberty", "UNESCO", "NY"),
        Record("Statue of Liberty", "Wikipedia", "Liberty Island"),
        Record("Statue of Liberty", "Arrangy", "LA"),
        Record("Big Ben", "Quora", "Manchester"),
        Record("Big Ben", "tripadvisor", "London"),
        Record("Big Ben", "Wikipedia", "Westminster"),
        Record("Big Ben", "UNESCO", "London"),
        Record("Niagara Falls", "UNESCO", "NY"),
        Record("Niagara Falls", "Wikipedia", "NY"),
        Record("Niagara Falls", "Arrangy", "LA"),
    ]
    gold = {
        "Statue of Liberty": "Liberty Island",
        "Big Ben": "Westminster",
        "Niagara Falls": "NY",
    }
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="table1")


@pytest.fixture(scope="session")
def small_birthplaces() -> TruthDiscoveryDataset:
    """A 300-object synthetic BirthPlaces instance shared across tests."""
    return make_birthplaces(size=300, seed=7)


@pytest.fixture(scope="session")
def small_heritages() -> TruthDiscoveryDataset:
    """A 150-object synthetic Heritages instance shared across tests."""
    return make_heritages(size=150, n_sources=200, seed=11)


@pytest.fixture()
def geo_hierarchy() -> Hierarchy:
    """A small hand-built geographic hierarchy."""
    hierarchy = Hierarchy()
    hierarchy.add_path(["USA", "California", "LA", "Hollywood"])
    hierarchy.add_path(["USA", "California", "SF"])
    hierarchy.add_path(["USA", "NY", "NYC"])
    hierarchy.add_path(["France", "Paris"])
    return hierarchy

"""Hand-computed verification of the TDH E-step and M-step (Figure 4, Eq. 9-11).

A minimal instance small enough to work through on paper:

hierarchy:  root > USA > NY > NYC ;  root > USA > LA
object o:   claims  s1 -> NYC, s2 -> NY, s3 -> LA   (Vo = {NYC, NY, LA})
            Go(NYC) = {NY}, Go(NY) = {}, Go(LA) = {}   => o in OH

With mu = (0.5, 0.3, 0.2) over (NYC, NY, LA) and phi = (0.6, 0.3, 0.1) the
E-step quantities for each record follow Eq. (1) and Figure 4 exactly; the
test checks our implementation cell by cell against those numbers.
"""

import numpy as np
import pytest

from repro import Hierarchy, Record, TruthDiscoveryDataset
from repro.inference._structures import build_structure

PHI = np.array([0.6, 0.3, 0.1])
MU = np.array([0.5, 0.3, 0.2])  # over (NYC, NY, LA)


@pytest.fixture()
def structure():
    h = Hierarchy()
    h.add_path(["USA", "NY", "NYC"])
    h.add_path(["USA", "LA"])
    ds = TruthDiscoveryDataset(
        h,
        [
            Record("o", "s1", "NYC"),
            Record("o", "s2", "NY"),
            Record("o", "s3", "LA"),
        ],
    )
    s = build_structure(ds, "o")
    assert s.values == ["NYC", "NY", "LA"]
    return s


class TestLikelihoodByHand:
    """P(claim | truth) per Eq. (1); |Vo| = 3 throughout."""

    def test_claim_nyc(self, structure):
        row = structure.source_likelihood_row(0, PHI)
        # truth NYC: exact -> phi1 = 0.6
        assert row[0] == pytest.approx(0.6)
        # truth NY: NYC not in Go(NY) (it is a descendant) -> case 3.
        #   wrong slots = |Vo| - |Go(NY)| - 1 = 3 - 0 - 1 = 2 -> 0.1/2 = 0.05
        assert row[1] == pytest.approx(0.05)
        # truth LA: same case-3 arithmetic -> 0.05
        assert row[2] == pytest.approx(0.05)

    def test_claim_ny(self, structure):
        row = structure.source_likelihood_row(1, PHI)
        # truth NYC: NY in Go(NYC), |Go(NYC)| = 1 -> phi2/1 = 0.3
        assert row[0] == pytest.approx(0.3)
        # truth NY: exact -> 0.6
        assert row[1] == pytest.approx(0.6)
        # truth LA: case 3 -> 0.1 / (3 - 0 - 1) = 0.05
        assert row[2] == pytest.approx(0.05)

    def test_claim_la(self, structure):
        row = structure.source_likelihood_row(2, PHI)
        # truth NYC: LA not in Go(NYC) -> 0.1 / (3 - 1 - 1) = 0.1
        assert row[0] == pytest.approx(0.1)
        # truth NY: 0.1 / 2 = 0.05
        assert row[1] == pytest.approx(0.05)
        # truth LA: exact -> 0.6
        assert row[2] == pytest.approx(0.6)


class TestEStepByHand:
    """f and g per Figure 4 with mu = (0.5, 0.3, 0.2)."""

    def test_f_for_claim_nyc(self, structure):
        # joint = like * mu = (0.6*0.5, 0.05*0.3, 0.05*0.2) = (0.3, .015, .01)
        # Z = 0.325 ;  f = (0.92307..., 0.04615..., 0.03076...)
        row = structure.source_likelihood_row(0, PHI)
        joint = row * MU
        z = joint.sum()
        assert z == pytest.approx(0.325)
        f = joint / z
        np.testing.assert_allclose(
            f, [0.3 / 0.325, 0.015 / 0.325, 0.01 / 0.325], rtol=1e-12
        )

    def test_g_for_claim_ny(self, structure):
        # claim NY: joint = (0.3*0.5, 0.6*0.3, 0.05*0.2) = (0.15, 0.18, 0.01)
        # Z = 0.34
        # g1 = phi1 * mu[NY] / Z = 0.6*0.3/0.34
        # g2 = phi2 * sum_{v in Do(NY)} mu_v / |Go(v)| / Z = 0.3*(0.5/1)/0.34
        # g3 = 1 - g1 - g2
        row = structure.source_likelihood_row(1, PHI)
        z = float(row @ MU)
        assert z == pytest.approx(0.34)
        g1 = PHI[0] * MU[1] / z
        g2 = PHI[1] * float(structure.source_case2[1] @ MU) / z
        assert g1 == pytest.approx(0.18 / 0.34)
        assert g2 == pytest.approx(0.15 / 0.34)
        assert g1 + g2 <= 1.0 + 1e-12

    def test_g_sums_to_one_for_each_claim(self, structure):
        for u in range(3):
            row = structure.source_likelihood_row(u, PHI)
            z = float(row @ MU)
            g1 = PHI[0] * MU[u] / z
            g2 = PHI[1] * float(structure.source_case2[u] @ MU) / z
            g3_direct = PHI[2] * float(structure.source_case3[u] @ MU) / z
            assert g1 + g2 + g3_direct == pytest.approx(1.0, abs=1e-9)


class TestMStepByHand:
    def test_confidence_update_eq9(self):
        """One EM sweep from a known initialisation, checked against Eq. (9).

        With gamma = 2: mu_v = (sum_s f_{o,s}(v) + 1) / (|So| + |Vo|).
        """
        from repro import TDHModel

        h = Hierarchy()
        h.add_path(["USA", "NY", "NYC"])
        h.add_path(["USA", "LA"])
        ds = TruthDiscoveryDataset(
            h,
            [
                Record("o", "s1", "NYC"),
                Record("o", "s2", "NY"),
                Record("o", "s3", "LA"),
            ],
        )
        model = TDHModel(max_iter=1, tol=0.0)
        result = model.fit(ds)

        # Reproduce by hand: initial mu is the vote distribution (1/3 each);
        # initial phi is the prior mean alpha/sum(alpha) = (.375, .375, .25).
        structure = build_structure(ds, "o")
        mu0 = np.array([1 / 3, 1 / 3, 1 / 3])
        phi0 = np.array([3.0, 3.0, 2.0]) / 8.0
        f_sum = np.zeros(3)
        for u in (0, 1, 2):  # claims NYC, NY, LA by s1, s2, s3
            row = structure.source_likelihood_row(u, phi0)
            joint = row * mu0
            f_sum += joint / joint.sum()
        expected_mu = (f_sum + 1.0) / (3 + 3 * 1.0)
        np.testing.assert_allclose(result.confidences["o"], expected_mu, rtol=1e-10)

    def test_trust_update_eq10(self):
        """phi update: (sum_o g + alpha - 1) / (|Os| + sum(alpha - 1))."""
        from repro import TDHModel

        h = Hierarchy()
        h.add_edge("A", h.root)
        h.add_edge("B", h.root)
        ds = TruthDiscoveryDataset(
            h, [Record("o1", "s", "A"), Record("o2", "s", "B")]
        )
        model = TDHModel(max_iter=1, tol=0.0)
        result = model.fit(ds)
        phi = np.asarray(result.source_trustworthiness("s"))
        # Single-candidate objects: f = (1.0,), g = (g1, g2, 0) with
        # g1 = phi1/(phi1+phi2), g2 = phi2/(phi1+phi2) at the prior mean.
        phi0 = np.array([3.0, 3.0, 2.0]) / 8.0
        g1 = phi0[0] / (phi0[0] + phi0[1])
        g2 = phi0[1] / (phi0[0] + phi0[1])
        expected = (np.array([2 * g1, 2 * g2, 0.0]) + np.array([2.0, 2.0, 1.0])) / (
            2 + 5.0
        )
        np.testing.assert_allclose(phi, expected / expected.sum(), rtol=1e-9)

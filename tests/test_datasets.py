"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    BIRTHPLACES_PROFILES,
    SourceProfile,
    claims_to_dataset,
    dataset_names,
    load_dataset,
    make_birthplaces,
    make_geography,
    make_heritages,
    make_stock_claims,
    sample_truths,
)
from repro.eval import source_accuracy


class TestGeography:
    def test_height_respected(self):
        rng = np.random.default_rng(0)
        h = make_geography(height=4, branching=(3, 3, 3, 3), rng=rng)
        assert h.height <= 4
        h.validate()

    def test_max_nodes_cap(self):
        rng = np.random.default_rng(0)
        h = make_geography(height=5, branching=(5, 5, 5, 5, 5), rng=rng, max_nodes=200)
        assert len(h) <= 202

    def test_branching_must_cover_height(self):
        with pytest.raises(ValueError):
            make_geography(height=3, branching=(2, 2))

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            make_geography(height=0)

    def test_sample_truths_depth_bias(self):
        rng = np.random.default_rng(0)
        h = make_geography(height=4, branching=(3, 3, 3, 3), rng=rng)
        truths = sample_truths(h, 100, rng, min_depth=2)
        assert len(truths) == 100
        assert all(h.depth(t) >= 2 for t in truths)

    def test_sample_truths_no_candidates_raises(self):
        rng = np.random.default_rng(0)
        h = make_geography(height=1, branching=(3,), rng=rng)
        with pytest.raises(ValueError):
            sample_truths(h, 5, rng, min_depth=3)


class TestSourceProfile:
    def test_phi_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SourceProfile("s", (0.5, 0.5, 0.5), 0.5)

    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            SourceProfile("s", (0.5, 0.3, 0.2), 0.0)

    def test_paper_profiles_valid(self):
        assert len(BIRTHPLACES_PROFILES) == 7
        for profile in BIRTHPLACES_PROFILES:
            assert sum(profile.phi) == pytest.approx(1.0)


class TestBirthplaces:
    def test_every_object_has_records(self):
        ds = make_birthplaces(size=200, seed=1)
        assert len(ds.objects) == 200
        assert all(ds.records_for(obj) for obj in ds.objects)

    def test_gold_complete(self):
        ds = make_birthplaces(size=100, seed=1)
        assert set(ds.gold) == set(ds.objects)
        for value in ds.gold.values():
            assert value in ds.hierarchy

    def test_seed_reproducible(self):
        d1 = make_birthplaces(size=100, seed=5)
        d2 = make_birthplaces(size=100, seed=5)
        assert list(d1.iter_records()) == list(d2.iter_records())

    def test_different_seeds_differ(self):
        d1 = make_birthplaces(size=100, seed=5)
        d2 = make_birthplaces(size=100, seed=6)
        assert list(d1.iter_records()) != list(d2.iter_records())

    def test_seven_sources(self):
        ds = make_birthplaces(size=300, seed=1)
        assert len(ds.sources) == 7

    def test_claims_per_object_matches_paper_ratio(self):
        ds = make_birthplaces(size=500, seed=1)
        # paper: 13510 records / 6005 objects ~ 2.25
        assert 1.8 < ds.num_records / len(ds.objects) < 2.7

    def test_sources_have_generalization_tendency(self):
        """The Figure 1 property: some sources sit above the diagonal."""
        ds = make_birthplaces(size=500, seed=1)
        tendencies = []
        for source in ds.sources:
            stats = source_accuracy(ds, source)
            tendencies.append(stats["gen_accuracy"] - stats["accuracy"])
        assert max(tendencies) > 0.1

    def test_hierarchy_height(self):
        ds = make_birthplaces(size=50, seed=1)
        assert ds.hierarchy.height == 5


class TestHeritages:
    def test_long_tail_sources(self):
        ds = make_heritages(size=150, n_sources=200, seed=2)
        claims_per_source = [
            len(ds.objects_of_source(s)) for s in ds.sources
        ]
        assert np.mean(claims_per_source) < 15

    def test_gold_complete(self):
        ds = make_heritages(size=80, n_sources=100, seed=2)
        assert set(ds.gold) == set(ds.objects)

    def test_hierarchy_height(self):
        ds = make_heritages(size=50, n_sources=60, seed=2)
        assert ds.hierarchy.height == 6

    def test_source_accuracy_lower_than_birthplaces(self):
        """Heritages' mean source accuracy targets the paper's ~0.58."""
        ds = make_heritages(size=200, n_sources=300, seed=2)
        accuracies = [
            source_accuracy(ds, s)["accuracy"]
            for s in ds.sources
            if source_accuracy(ds, s)["claims"] >= 3
        ]
        assert 0.3 < float(np.mean(accuracies)) < 0.75


class TestStock:
    def test_attributes_validated(self):
        with pytest.raises(ValueError):
            make_stock_claims("volume")

    def test_claims_and_gold_align(self):
        claims, gold = make_stock_claims("eps", n_objects=50, seed=3)
        assert set(claims) == set(gold)
        assert all(per_obj for per_obj in claims.values())

    def test_seeded_reproducible(self):
        c1, g1 = make_stock_claims("eps", n_objects=30, seed=3)
        c2, g2 = make_stock_claims("eps", n_objects=30, seed=3)
        assert c1 == c2 and g1 == g2

    def test_claims_to_dataset_canonicalises(self):
        claims, gold = make_stock_claims("open_price", n_objects=30, seed=3)
        ds = claims_to_dataset(claims, gold)
        ds.hierarchy.validate()
        assert set(ds.gold) == set(gold)
        assert len(ds.objects) == 30

    def test_outliers_present(self):
        claims, gold = make_stock_claims("eps", n_objects=300, seed=3)
        outliers = 0
        for obj, per_obj in claims.items():
            truth = gold[obj]
            outliers += sum(
                1 for v in per_obj.values() if abs(v) > 5 * abs(truth) + 1e-9
            )
        assert outliers > 0


class TestRegistry:
    def test_names(self):
        assert set(dataset_names()) == {"birthplaces", "heritages", "stock"}

    def test_load_birthplaces(self):
        ds = load_dataset("birthplaces", size=50, seed=1)
        assert ds.name == "birthplaces"
        assert len(ds.objects) == 50

    def test_load_case_insensitive(self):
        ds = load_dataset("Heritages", size=30, n_sources=40, seed=1)
        assert ds.name == "heritages"

    def test_load_stock_with_attribute(self):
        ds = load_dataset("stock", attribute="eps", n_objects=20)
        assert ds.name == "stock-eps"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

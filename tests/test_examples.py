"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3


def test_quickstart_resolves_paper_example():
    script = pathlib.Path(__file__).parent.parent / "examples" / "quickstart.py"
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=120
    )
    assert "Liberty Island" in completed.stdout
    assert "Westminster" in completed.stdout

"""Tests for the bootstrap significance helpers."""

import pytest

from repro import TDHModel, Vote, make_birthplaces
from repro.eval import (
    accuracy_interval,
    paired_accuracy_difference,
)
from repro.eval.significance import BootstrapInterval


@pytest.fixture(scope="module")
def fitted_pair():
    dataset = make_birthplaces(size=250, seed=7)
    tdh = TDHModel(max_iter=20, tol=1e-4).fit(dataset).truths()
    vote = Vote().fit(dataset).truths()
    return dataset, tdh, vote


class TestAccuracyInterval:
    def test_estimate_within_bounds(self, fitted_pair):
        dataset, tdh, _ = fitted_pair
        interval = accuracy_interval(dataset, tdh, n_resamples=500)
        assert interval.lower <= interval.estimate <= interval.upper
        assert 0.0 <= interval.lower and interval.upper <= 1.0

    def test_reproducible_with_seed(self, fitted_pair):
        dataset, tdh, _ = fitted_pair
        a = accuracy_interval(dataset, tdh, n_resamples=200, seed=1)
        b = accuracy_interval(dataset, tdh, n_resamples=200, seed=1)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_wider_at_higher_confidence(self, fitted_pair):
        dataset, tdh, _ = fitted_pair
        narrow = accuracy_interval(dataset, tdh, confidence=0.8, n_resamples=800)
        wide = accuracy_interval(dataset, tdh, confidence=0.99, n_resamples=800)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower) - 1e-9

    def test_contains(self):
        interval = BootstrapInterval(0.5, 0.4, 0.6, 0.95)
        assert interval.contains(0.5)
        assert not interval.contains(0.7)

    def test_no_overlap_raises(self, fitted_pair):
        dataset, _, _ = fitted_pair
        with pytest.raises(ValueError):
            accuracy_interval(dataset, {"ghost": "x"})


class TestPairedDifference:
    def test_tdh_vs_vote_positive(self, fitted_pair):
        dataset, tdh, vote = fitted_pair
        diff = paired_accuracy_difference(dataset, tdh, vote, n_resamples=800)
        assert diff.estimate > 0.0  # TDH better on this dataset

    def test_self_difference_is_zero(self, fitted_pair):
        dataset, tdh, _ = fitted_pair
        diff = paired_accuracy_difference(dataset, tdh, tdh, n_resamples=200)
        assert diff.estimate == 0.0
        assert diff.lower == 0.0 and diff.upper == 0.0

    def test_antisymmetric(self, fitted_pair):
        dataset, tdh, vote = fitted_pair
        ab = paired_accuracy_difference(dataset, tdh, vote, n_resamples=400, seed=3)
        ba = paired_accuracy_difference(dataset, vote, tdh, n_resamples=400, seed=3)
        assert ab.estimate == pytest.approx(-ba.estimate)

"""Tests for the single-truth baseline algorithms (Table 3's roster)."""

import numpy as np
import pytest

from repro import (
    Accu,
    Asums,
    Crh,
    Docs,
    GuessLca,
    Hierarchy,
    Lfc,
    Mdc,
    PopAccu,
    Record,
    TruthDiscoveryDataset,
    Vote,
)
from repro.eval import evaluate

ALL_BASELINES = [
    Vote,
    lambda: Accu(max_iter=8),
    lambda: PopAccu(max_iter=8),
    lambda: Lfc(max_iter=10),
    lambda: Crh(max_iter=10),
    lambda: GuessLca(max_iter=10),
    lambda: Asums(max_iter=10),
    lambda: Mdc(max_iter=8),
    lambda: Docs(max_iter=10),
]


@pytest.fixture(params=ALL_BASELINES, ids=lambda f: f().name)
def baseline(request):
    return request.param()


class TestCommonContract:
    """Every baseline satisfies the TruthInferenceAlgorithm contract."""

    def test_fits_and_returns_all_objects(self, baseline, table1_dataset):
        result = baseline.fit(table1_dataset)
        assert set(result.confidences) == set(table1_dataset.objects)

    def test_confidence_normalises(self, baseline, table1_dataset):
        result = baseline.fit(table1_dataset)
        for obj in table1_dataset.objects:
            confidence = result.confidence(obj)
            assert sum(confidence.values()) == pytest.approx(1.0, abs=1e-6)
            assert all(p >= 0 for p in confidence.values())

    def test_truth_is_a_candidate(self, baseline, table1_dataset):
        result = baseline.fit(table1_dataset)
        for obj in table1_dataset.objects:
            assert result.truth(obj) in table1_dataset.candidates(obj)

    def test_deterministic(self, baseline, table1_dataset):
        t1 = baseline.fit(table1_dataset).truths()
        t2 = type(baseline)() .fit(table1_dataset).truths() if False else baseline.fit(table1_dataset).truths()
        assert t1 == t2

    def test_truth_sets_are_singletons(self, baseline, table1_dataset):
        result = baseline.fit(table1_dataset)
        for values in result.truth_sets().values():
            assert len(values) == 1

    def test_reasonable_accuracy_on_birthplaces(self, baseline, small_birthplaces):
        result = baseline.fit(small_birthplaces)
        report = evaluate(small_birthplaces, result.truths())
        # Far above random guessing; the dataset's majority accuracy is ~0.8.
        assert report.accuracy > 0.5


class TestVote:
    def test_majority_wins(self, table1_dataset):
        assert Vote().fit(table1_dataset).truth("Niagara Falls") == "NY"

    def test_counts_answers_too(self, table1_dataset):
        from repro import Answer

        ds = table1_dataset.copy()
        for w in range(5):
            ds.add_answer(Answer("Niagara Falls", f"w{w}", "LA"))
        assert Vote().fit(ds).truth("Niagara Falls") == "LA"

    def test_tie_breaks_to_first_claimed(self):
        h = Hierarchy()
        h.add_edge("A", h.root)
        h.add_edge("B", h.root)
        ds = TruthDiscoveryDataset(
            h, [Record("o", "s1", "A"), Record("o", "s2", "B")]
        )
        assert Vote().fit(ds).truth("o") == "A"


class TestAccu:
    def test_good_sources_get_high_accuracy(self, small_birthplaces):
        result = Accu(max_iter=8).fit(small_birthplaces)
        accuracy = result.source_accuracy
        # source_2 is the most precise generator profile (phi1 = 0.84).
        assert accuracy["source_2"] > 0.6

    def test_dependence_detection_discounts_copiers(self):
        """A source that copies another verbatim should not double the vote."""
        h = Hierarchy()
        for v in ("A", "B"):
            h.add_edge(v, h.root)
        records = []
        # 'honest1/2' claim A (the majority-correct value) on most objects;
        # 'original' claims B and 'copier' repeats it exactly.
        for i in range(20):
            records.append(Record(f"o{i}", "honest1", "A"))
            records.append(Record(f"o{i}", "honest2", "A"))
            records.append(Record(f"o{i}", "original", "B"))
            records.append(Record(f"o{i}", "copier", "B"))
        ds = TruthDiscoveryDataset(h, records)
        with_dep = Accu(max_iter=8, detect_dependence=True).fit(ds)
        # With copy detection the A-votes must not lose to the copied B-votes.
        assert all(t == "A" for t in with_dep.truths().values())

    def test_popaccu_differs_from_accu_with_skewed_false_values(
        self, small_heritages
    ):
        accu = Accu(max_iter=8).fit(small_heritages).truths()
        popaccu = PopAccu(max_iter=8).fit(small_heritages).truths()
        assert accu != popaccu  # popularity model changes some decisions


class TestLfc:
    def test_learned_quality_breaks_ties(self):
        """Anchor objects establish that 'bad' disagrees with the majority;
        on fresh 1-vs-1 conflicts LFC must side with the reliable source,
        where plain voting would tie."""
        h = Hierarchy()
        for v in ("A", "B", "X", "Y"):
            h.add_edge(v, h.root)
        records = []
        for i in range(20):
            for source in ("good1", "good2", "good3"):
                records.append(Record(f"anchor{i}", source, "A"))
            records.append(Record(f"anchor{i}", "bad", "B"))
        for i in range(10):
            records.append(Record(f"t{i}", "good1", "X"))
            records.append(Record(f"t{i}", "bad", "Y"))
        ds = TruthDiscoveryDataset(h, records)
        result = Lfc(max_iter=20).fit(ds)
        assert all(result.truth(f"t{i}") == "X" for i in range(10))


class TestAsums:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Asums(tau=0.0)
        with pytest.raises(ValueError):
            Asums(tau=1.5)

    def test_trust_scores_in_unit_interval(self, small_birthplaces):
        result = Asums(max_iter=10).fit(small_birthplaces)
        trust = result.trust
        assert all(0.0 <= t <= 1.0 + 1e-9 for t in trust.values())

    def test_prefers_specific_value_when_supported(self, table1_dataset):
        result = Asums(max_iter=20, tau=0.5).fit(table1_dataset)
        # With a generous threshold ASUMS picks the deeper candidate.
        assert result.truth("Statue of Liberty") in {"Liberty Island", "NY"}


class TestDocs:
    def test_domains_derived_from_hierarchy(self, table1_dataset):
        docs = Docs()
        domain = docs.object_domain(table1_dataset, "Big Ben")
        assert domain == "UK"
        assert docs.object_domain(table1_dataset, "Niagara Falls") == "USA"

    def test_domain_accuracy_exposed(self, table1_dataset):
        result = Docs(max_iter=10).fit(table1_dataset)
        assert result.domain_accuracy  # non-empty
        assert all(0 < acc < 1 for acc in result.domain_accuracy.values())


class TestMdc:
    def test_difficulty_bounded(self, table1_dataset):
        result = Mdc(max_iter=5).fit(table1_dataset)
        assert all(
            0.05 <= d <= 5.0 for d in result.inverse_difficulty.values()
        )

    def test_reliability_bounded(self, table1_dataset):
        result = Mdc(max_iter=5).fit(table1_dataset)
        assert all(-5.0 <= r <= 5.0 for r in result.reliability.values())


class TestCrh:
    def test_weights_positive_for_agreeing_sources(self, small_birthplaces):
        result = Crh(max_iter=10).fit(small_birthplaces)
        weights = result.source_weights
        assert all(np.isfinite(w) for w in weights.values())
        # The best profile source should outweigh the worst.
        assert weights["source_2"] > weights["source_7"]

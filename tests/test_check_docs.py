"""The docs checker itself: failure reporting, skipping, exit codes.

``tests/test_docs.py`` runs ``scripts/check_docs.py`` over the *real* docs
tree; this module points the checker at synthetic trees (by monkeypatching
its ``REPO_ROOT`` module global) to pin down the behaviors the real tree
can't exercise without breaking itself:

* a failing python snippet is reported with its ``file:line`` anchor;
* fenced blocks in other languages (text diagrams, yaml, output transcripts)
  are skipped, not executed;
* python blocks within one file share a namespace, across files they don't;
* unparseable / unknown / non-checkable experiments-CLI lines each produce
  a distinct failure;
* ``main()`` propagates failures as exit code 1, a healthy tree as 0, and a
  tree with nothing to check as 1 (the vacuous-checker guard).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

GOOD_CLI = "PYTHONPATH=src python -m repro.experiments table3\n"


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_under_test", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def make_tree(tmp_path, docs):
    """A minimal repo tree: ``README.md`` plus ``docs/<name>: text``."""
    (tmp_path / "docs").mkdir(exist_ok=True)
    (tmp_path / "README.md").write_text("# stub\n")
    for name, text in docs.items():
        (tmp_path / "docs" / name).write_text(text)
    return tmp_path


def checker_on(monkeypatch, tmp_path, docs):
    checker = load_checker()
    monkeypatch.setattr(checker, "REPO_ROOT", make_tree(tmp_path, docs))
    return checker


def test_failing_snippet_reported_with_file_and_line(monkeypatch, tmp_path):
    doc = "intro\n\n```python\nx = 1\n```\n\nmore prose\n\n```python\nboom()\n```\n"
    checker = checker_on(monkeypatch, tmp_path, {"guide.md": doc})
    failures = checker.check_python_blocks()
    assert len(failures) == 1
    # The failing fence opens on line 9 of the file; the passing one doesn't report.
    assert failures[0].startswith("guide.md:9: python snippet failed:")
    assert "boom" in failures[0]


def test_non_python_fences_are_skipped(monkeypatch, tmp_path):
    # ``text`` fences (the architecture diagrams) and ``yaml`` must never
    # be exec'd even when their bodies are nonsense as python.
    doc = (
        "```text\nwriters --> queue --> worker\n```\n"
        "```yaml\n- not: python\n```\n"
        "```python\nok = True\n```\n"
    )
    checker = checker_on(monkeypatch, tmp_path, {"d.md": doc})
    assert checker.check_python_blocks() == []
    f = tmp_path / "docs" / "d.md"
    assert [body for _, body in checker.fenced_blocks(f, "python")] == ["ok = True\n"]
    assert len(list(checker.fenced_blocks(f, "text"))) == 1


def test_blocks_share_namespace_within_file_not_across(monkeypatch, tmp_path):
    docs = {
        "a.md": "```python\nshared = 41\n```\n```python\nassert shared == 41\n```\n",
        "b.md": "```python\nassert 'shared' not in dir()\n```\n",
    }
    checker = checker_on(monkeypatch, tmp_path, docs)
    assert checker.check_python_blocks() == []


def test_cli_line_failure_modes(monkeypatch, tmp_path):
    doc = (
        "```bash\n"
        + GOOD_CLI  # parses: counted, no failure
        + "python -m repro.experiments no_such_exp\n"  # rejected by the parser
        + "python -m repro.experiments table3 --no-such-flag\n"  # doesn't parse
        + "python -m repro.experiments.main table3  # not the checkable form\n"
        + "echo unrelated line without the marker\n"  # ignored entirely
        + "```\n"
    )
    checker = checker_on(monkeypatch, tmp_path, {"guide.md": doc})
    failures, checked = checker.check_cli_lines()
    assert checked == 3  # good + unknown + unparseable reached the parser
    assert len(failures) == 3
    # The parser enforces the experiment-name choices itself, so both the
    # unknown name and the unknown flag surface as parse failures.
    assert sum("no longer parses" in f for f in failures) == 2
    assert any("no_such_exp" in f for f in failures)
    assert sum("not in checkable form" in f for f in failures) == 1
    # Every failure is anchored to guide.md with a line number.
    assert all(f.startswith("guide.md:") for f in failures)


def test_main_exit_codes(monkeypatch, tmp_path, capsys):
    healthy = {
        "guide.md": "```python\nvalue = 2 + 2\n```\n```bash\n" + GOOD_CLI + "```\n"
    }
    checker = checker_on(monkeypatch, tmp_path, healthy)
    assert checker.main() == 0
    assert "docs OK (1 python snippet(s) executed, 1 CLI line(s) parsed)" in (
        capsys.readouterr().out
    )

    broken = {
        "guide.md": "```python\nraise ValueError('rotted')\n```\n```bash\n"
        + GOOD_CLI
        + "```\n"
    }
    checker = checker_on(monkeypatch, tmp_path, broken)
    assert checker.main() == 1
    out = capsys.readouterr().out
    assert "FAIL guide.md:1: python snippet failed:" in out
    assert "rotted" in out


def test_main_vacuous_trees_fail(monkeypatch, tmp_path, capsys):
    # No python snippets AND no CLI lines: both guards trip.
    checker = checker_on(monkeypatch, tmp_path, {"guide.md": "prose only\n"})
    assert checker.main() == 1
    out = capsys.readouterr().out
    assert "no python snippets" in out
    assert "no experiments-CLI lines" in out

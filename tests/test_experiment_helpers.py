"""Tests for the experiment-harness helpers (common, crowd_runs, fig8 math)."""

import pytest

import repro.experiments.common as common
from repro.experiments.common import (
    ExperimentScale,
    assigner_factories,
    format_series,
    format_table,
    inference_factories,
    make_combo,
    scale,
)
from repro.experiments.crowd_runs import run_combo, run_combos
from repro.experiments.fig8_cost import cost_saving

TINY = ExperimentScale(
    birthplaces_size=60,
    heritages_size=40,
    heritages_sources=50,
    rounds=2,
    workers=3,
    tasks_per_worker=2,
    em_iterations=5,
)


class TestScale:
    def test_fast_is_default(self):
        assert scale() is common.FAST

    def test_full_uses_paper_sizes(self):
        assert scale(full=True).birthplaces_size == 6005
        assert scale(full=True).heritages_size == 785
        assert scale(full=True).rounds == 50

    def test_em_tol(self):
        assert TINY.em_tol == 1e-4


class TestFactories:
    def test_ten_inference_algorithms(self):
        factories = inference_factories(TINY)
        assert len(factories) == 10
        for name, factory in factories.items():
            algo = factory()
            assert algo.name == name

    def test_four_assigners(self):
        factories = assigner_factories()
        assert set(factories) == {"EAI", "QASCA", "ME", "MB"}

    def test_make_combo(self):
        model, assigner = make_combo("TDH", "EAI", TINY)
        assert model.name == "TDH"
        assert assigner.name == "EAI"

    def test_table4_combos_are_instantiable(self):
        for inference, assigners in common.TABLE4_COMBOS.items():
            for assigner in assigners:
                model, task_assigner = make_combo(inference, assigner, TINY)
                assert model.name == inference
                assert task_assigner.name == assigner


class TestRunCombo:
    def test_run_combo_returns_history(self, small_birthplaces):
        history = run_combo(small_birthplaces, "VOTE", "ME", TINY)
        assert len(history.records) == TINY.rounds + 1

    def test_run_combos_keys(self, small_birthplaces):
        histories = run_combos(
            small_birthplaces, [("VOTE", "ME"), ("TDH", "EAI")], TINY
        )
        assert set(histories) == {"VOTE+ME", "TDH+EAI"}

    def test_custom_rounds_override(self, small_birthplaces):
        history = run_combo(small_birthplaces, "VOTE", "ME", TINY, rounds=1)
        assert history.final.round == 1


class TestCostSaving:
    def test_never_reaching_target(self):
        assert cost_saving([0.5, 0.6, 0.7], 0.9) == 0.0

    def test_immediate_reach(self):
        assert cost_saving([0.9, 0.92, 0.95], 0.9) == 1.0

    def test_midway(self):
        # reaches 0.8 at index 2 of 4 -> saves half the rounds
        assert cost_saving([0.5, 0.7, 0.8, 0.85, 0.9], 0.8) == pytest.approx(0.5)

    def test_minimise_mode(self):
        assert cost_saving([0.5, 0.3, 0.1], 0.3, maximize=False) == pytest.approx(0.5)

    def test_single_point_series(self):
        assert cost_saving([0.5], 0.4) == 0.0


class TestFormatting:
    def test_format_table_width_alignment(self):
        text = format_table(
            [{"Name": "alpha", "V": 1.0}, {"Name": "b", "V": 2.0}],
            ["Name", "V"],
        )
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert all(len(line) >= len("Name  V") for line in lines[:2])

    def test_format_table_missing_cell(self):
        text = format_table([{"A": 1.0}], ["A", "B"])
        assert "-" in text

    def test_format_series_nan_padding(self):
        text = format_series({"x": [1.0]}, [0, 1])
        assert "nan" in text

"""Unit tests for the hierarchy tree substrate."""

import pytest

from repro.hierarchy import Hierarchy, HierarchyError, ROOT, generalization_chain


@pytest.fixture()
def tree() -> Hierarchy:
    h = Hierarchy()
    h.add_path(["USA", "California", "LA", "Hollywood"])
    h.add_path(["USA", "NY", "Liberty Island"])
    h.add_path(["UK", "London"])
    return h


class TestConstruction:
    def test_empty_hierarchy_has_only_root(self):
        h = Hierarchy()
        assert len(h) == 1
        assert h.root == ROOT

    def test_custom_root_label(self):
        h = Hierarchy(root="Earth")
        assert h.root == "Earth"
        h.add_edge("USA", "Earth")
        assert "USA" in h

    def test_add_edge_attaches_child(self, tree):
        assert "California" in tree
        assert tree.parent("California") == "USA"

    def test_add_edge_unknown_parent_raises(self):
        h = Hierarchy()
        with pytest.raises(HierarchyError, match="not in the hierarchy"):
            h.add_edge("LA", "California")

    def test_add_edge_duplicate_is_noop(self, tree):
        before = len(tree)
        tree.add_edge("California", "USA")
        assert len(tree) == before

    def test_add_edge_conflicting_parent_raises(self, tree):
        with pytest.raises(HierarchyError, match="cannot move"):
            tree.add_edge("California", "UK")

    def test_root_cannot_be_child(self, tree):
        with pytest.raises(HierarchyError, match="root cannot be a child"):
            tree.add_edge(tree.root, "USA")

    def test_add_path_reuses_prefix(self, tree):
        size = len(tree)
        tree.add_path(["USA", "California", "SF"])
        assert len(tree) == size + 1
        assert tree.parent("SF") == "California"

    def test_add_path_conflicting_prefix_raises(self, tree):
        with pytest.raises(HierarchyError, match="conflicting"):
            tree.add_path(["UK", "California"])

    def test_len_counts_root(self, tree):
        # root + USA,California,LA,Hollywood,NY,Liberty Island,UK,London
        assert len(tree) == 9


class TestQueries:
    def test_contains(self, tree):
        assert "LA" in tree
        assert "Tokyo" not in tree

    def test_parent_of_root_is_none(self, tree):
        assert tree.parent(tree.root) is None

    def test_parent_unknown_raises(self, tree):
        with pytest.raises(KeyError):
            tree.parent("Tokyo")

    def test_children(self, tree):
        assert set(tree.children("USA")) == {"California", "NY"}
        assert tree.children("Hollywood") == ()

    def test_depth(self, tree):
        assert tree.depth(tree.root) == 0
        assert tree.depth("USA") == 1
        assert tree.depth("Hollywood") == 4

    def test_height(self, tree):
        assert tree.height == 4

    def test_height_of_empty_tree(self):
        assert Hierarchy().height == 0

    def test_iteration_yields_all_nodes(self, tree):
        assert set(iter(tree)) == set(tree.nodes())
        assert len(list(tree.nodes())) == len(tree)

    def test_non_root_nodes_excludes_root(self, tree):
        nodes = set(tree.non_root_nodes())
        assert tree.root not in nodes
        assert len(nodes) == len(tree) - 1


class TestAncestry:
    def test_ancestors_nearest_first(self, tree):
        assert tree.ancestors("Hollywood") == ["LA", "California", "USA"]

    def test_ancestors_exclude_root(self, tree):
        assert tree.root not in tree.ancestors("Hollywood")
        assert tree.ancestors("USA") == []

    def test_ancestors_with_self(self, tree):
        assert tree.ancestors_with_self("LA") == ["LA", "California", "USA"]

    def test_is_ancestor_true(self, tree):
        assert tree.is_ancestor("USA", "Hollywood")
        assert tree.is_ancestor("California", "LA")

    def test_is_ancestor_false_for_self(self, tree):
        assert not tree.is_ancestor("LA", "LA")

    def test_is_ancestor_false_for_root(self, tree):
        assert not tree.is_ancestor(tree.root, "LA")

    def test_is_ancestor_false_across_branches(self, tree):
        assert not tree.is_ancestor("UK", "Hollywood")
        assert not tree.is_ancestor("NY", "LA")

    def test_is_ancestor_false_for_descendant(self, tree):
        assert not tree.is_ancestor("Hollywood", "USA")

    def test_is_ancestor_unknown_candidate(self, tree):
        assert not tree.is_ancestor("Tokyo", "LA")

    def test_is_descendant_mirrors_is_ancestor(self, tree):
        assert tree.is_descendant("Hollywood", "USA")
        assert not tree.is_descendant("USA", "Hollywood")

    def test_descendants(self, tree):
        assert set(tree.descendants("California")) == {"LA", "Hollywood"}
        assert set(tree.descendants("USA")) == {
            "California", "LA", "Hollywood", "NY", "Liberty Island",
        }

    def test_descendants_of_leaf_empty(self, tree):
        assert tree.descendants("Hollywood") == []

    def test_subtree_size(self, tree):
        assert tree.subtree_size("Hollywood") == 1
        assert tree.subtree_size("California") == 3

    def test_generalization_chain(self, tree):
        assert generalization_chain(tree, "LA") == ["LA", "California", "USA"]


class TestDistance:
    def test_distance_to_self_is_zero(self, tree):
        assert tree.distance("LA", "LA") == 0

    def test_distance_parent_child(self, tree):
        assert tree.distance("LA", "California") == 1
        assert tree.distance("California", "LA") == 1

    def test_distance_within_branch(self, tree):
        assert tree.distance("Hollywood", "USA") == 3

    def test_distance_across_branches(self, tree):
        # Hollywood -> ... -> USA -> root -> UK -> London
        assert tree.distance("Hollywood", "London") == 6

    def test_distance_siblings(self, tree):
        assert tree.distance("California", "NY") == 2

    def test_lowest_common_ancestor(self, tree):
        assert tree.lowest_common_ancestor("Hollywood", "Liberty Island") == "USA"
        assert tree.lowest_common_ancestor("LA", "Hollywood") == "LA"
        assert tree.lowest_common_ancestor("USA", "UK") == tree.root

    def test_distance_unknown_raises(self, tree):
        with pytest.raises(KeyError):
            tree.distance("Tokyo", "LA")

    def test_path_to_root(self, tree):
        assert tree.path_to_root("LA") == ["LA", "California", "USA", tree.root]
        assert tree.path_to_root(tree.root) == [tree.root]


class TestStructure:
    def test_leaves(self, tree):
        assert set(tree.leaves()) == {"Hollywood", "Liberty Island", "London"}

    def test_validate_passes_on_wellformed(self, tree):
        tree.validate()  # should not raise

    def test_validate_detects_orphans(self, tree):
        # Corrupt internals deliberately: node with unreachable parent.
        tree._children["Ghost"] = []
        tree._parent["Ghost"] = "Nowhere"
        tree._depth["Ghost"] = 1
        with pytest.raises(HierarchyError, match="unreachable"):
            tree.validate()

"""Structural tests for the columnar claim encoding itself: round-tripping,
CSR invariants, segment primitives, the pair expansion, and cache behaviour
on the dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.columnar import ColumnarClaims
from repro.data.model import Answer, Record
from repro.datasets import make_heritages


@pytest.fixture()
def dataset(table1_dataset):
    ds = table1_dataset.copy()
    ds.add_answer(Answer("Statue of Liberty", "w1", "Liberty Island"))
    ds.add_answer(Answer("Big Ben", "w1", "London"))
    ds.add_answer(Answer("Big Ben", "w2", "Westminster"))
    return ds


def test_encoding_round_trips_claims(dataset):
    col = dataset.columnar()
    assert col.objects == dataset.objects
    assert col.n_claims == dataset.num_records + dataset.num_answers

    # Rebuild (object, claimant, value) triples from the arrays and compare
    # with the dict representation.
    decoded = set()
    for j in range(col.n_claims):
        obj = col.objects[int(col.claim_obj[j])]
        claimant = col.claimants[int(col.claim_claimant[j])]
        value = col.values[int(col.claim_vid[j])]
        decoded.add((obj, claimant, value))
    expected = set()
    for record in dataset.iter_records():
        expected.add((record.object, record.source, record.value))
    for answer in dataset.iter_answers():
        expected.add((answer.object, ("worker", answer.worker), answer.value))
    assert decoded == expected


def test_csr_slices_match_contexts(dataset):
    col = dataset.columnar()
    for oid, obj in enumerate(col.objects):
        ctx = dataset.context(obj)
        start, end = int(col.value_offsets[oid]), int(col.value_offsets[oid + 1])
        assert end - start == ctx.size
        assert [col.values[int(v)] for v in col.slot_vid[start:end]] == ctx.values
        n_claims = len(dataset.records_for(obj)) + len(dataset.answers_for(obj))
        assert int(col.claim_offsets[oid + 1] - col.claim_offsets[oid]) == n_claims
    assert int(col.value_offsets[-1]) == col.n_slots
    assert np.all(col.claim_slot == col.value_offsets[col.claim_obj] + col.claim_pos)


def test_segment_primitives_match_loops(dataset):
    col = dataset.columnar()
    rng = np.random.default_rng(5)
    flat = rng.random(col.n_slots)
    norm = col.segment_normalize(flat)
    argmax = col.segment_argmax_slot(flat)
    soft = col.segment_softmax(np.log(flat))
    for oid in range(col.n_objects):
        start, end = int(col.value_offsets[oid]), int(col.value_offsets[oid + 1])
        seg = flat[start:end]
        np.testing.assert_allclose(norm[start:end], seg / seg.sum())
        assert int(argmax[oid]) == start + int(np.argmax(seg))
        np.testing.assert_allclose(soft[start:end], seg / seg.sum())


def test_segment_argmax_breaks_ties_to_first(dataset):
    col = dataset.columnar()
    flat = np.ones(col.n_slots)
    argmax = col.segment_argmax_slot(flat)
    assert np.all(argmax == col.value_offsets[:-1])


def test_segment_normalize_uniform_fallback(dataset):
    col = dataset.columnar()
    flat = np.zeros(col.n_slots)
    norm = col.segment_normalize(flat)
    np.testing.assert_allclose(norm, 1.0 / col.sizes[col.slot_obj])


def test_pair_expansion_shape(dataset):
    col = dataset.columnar()
    pairs = col.pairs
    assert col.pairs is pairs  # cached
    expected_rows = int(col.sizes[col.claim_obj].sum())
    assert len(pairs.pair_claim) == expected_rows
    assert len(pairs.pair_slot) == expected_rows
    # Each claim pairs with exactly its object's candidate slots, and exactly
    # one pair per claim hits the claimed slot.
    assert np.all(col.claim_obj[pairs.pair_claim] == col.slot_obj[pairs.pair_slot])
    assert int(pairs.pair_is_claimed.sum()) == col.n_claims
    assert pairs.n_cells <= expected_rows
    assert pairs.n_totals <= pairs.n_cells


def test_cache_reuse_and_invalidation(dataset):
    col = dataset.columnar()
    assert dataset.columnar() is col
    dataset.add_answer(Answer("Niagara Falls", "w3", "NY"))
    rebuilt = dataset.columnar()
    assert rebuilt is not col
    assert rebuilt.n_claims == col.n_claims + 1
    dataset.add_record(Record("Niagara Falls", "new_source", "LA"))
    assert dataset.columnar().n_claims == col.n_claims + 2


def test_copy_carries_encoding_and_scaled_gets_fresh():
    """A claim-identical ``copy()`` shares the fresh encoding snapshot (no
    rebuild); ``scaled()`` re-ingests and must encode from scratch. Deeper
    carry-forward/divergence behaviour lives in tests/test_columnar_appender.py.
    """
    ds = make_heritages(size=40, n_sources=60, seed=11)
    col = ds.columnar()
    clone = ds.copy()
    assert clone.columnar() is col  # carried forward, versions match
    assert clone.columnar().n_claims == col.n_claims
    scaled = ds.scaled(3)
    assert scaled.columnar().n_objects == 3 * col.n_objects


def test_standalone_build_matches_cached(dataset):
    direct = ColumnarClaims(dataset)
    cached = dataset.columnar()
    assert direct.objects == cached.objects
    assert np.array_equal(direct.claim_slot, cached.claim_slot)
    assert np.array_equal(direct.value_offsets, cached.value_offsets)

"""Tests for the numeric algorithms (CATD, MEAN, CRH-numeric; Table 6)."""

import numpy as np
import pytest

from repro import Catd, Mean, TDHModel
from repro.inference import CrhNumeric, Median
from repro.datasets import claims_to_dataset, make_stock_claims
from repro.eval import evaluate_numeric


@pytest.fixture(scope="module")
def clean_claims():
    """Three sources, no outliers: everyone near the truth."""
    return {
        "a": {"s1": 10.0, "s2": 10.2, "s3": 9.8},
        "b": {"s1": 5.0, "s2": 5.1, "s3": 4.9},
    }


@pytest.fixture(scope="module")
def outlier_claims():
    """One source reports a decimal-shift outlier on every object."""
    return {
        f"o{i}": {"s1": 10.0 + i, "s2": 10.0 + i, "s3": 10.1 + i, "bad": (10.0 + i) * 100}
        for i in range(10)
    }


class TestMean:
    def test_exact_on_clean_symmetric_data(self, clean_claims):
        estimates = Mean().fit(clean_claims)
        assert estimates["a"] == pytest.approx(10.0, abs=1e-9)
        assert estimates["b"] == pytest.approx(5.0, abs=1e-9)

    def test_dragged_by_outliers(self, outlier_claims):
        estimates = Mean().fit(outlier_claims)
        assert estimates["o0"] > 100  # pulled far from 10

    def test_median_robust(self, outlier_claims):
        estimates = Median().fit(outlier_claims)
        assert estimates["o0"] == pytest.approx(10.0, abs=0.2)


class TestCatd:
    def test_close_on_clean_data(self, clean_claims):
        estimates = Catd().fit(clean_claims)
        assert estimates["a"] == pytest.approx(10.0, abs=0.3)

    def test_downweights_consistently_bad_source(self, outlier_claims):
        catd = Catd().fit(outlier_claims)
        mean = Mean().fit(outlier_claims)
        truth = 10.0
        assert abs(catd["o0"] - truth) < abs(mean["o0"] - truth)

    def test_weights_exposed_and_positive(self, outlier_claims):
        algo = Catd()
        algo.fit(outlier_claims)
        assert all(w >= 0 for w in algo.weights.values())
        # The outlier source must get (much) less weight than the good ones.
        assert algo.weights["bad"] < algo.weights["s1"]


class TestCrhNumeric:
    def test_close_on_clean_data(self, clean_claims):
        estimates = CrhNumeric().fit(clean_claims)
        assert estimates["a"] == pytest.approx(10.0, abs=0.3)

    def test_weight_reduces_outlier_influence(self, outlier_claims):
        crh = CrhNumeric().fit(outlier_claims)
        mean = Mean().fit(outlier_claims)
        assert abs(crh["o0"] - 10.0) <= abs(mean["o0"] - 10.0)


class TestStockIntegration:
    def test_tdh_beats_averagers_on_stock(self):
        claims, gold = make_stock_claims("eps", n_objects=80, seed=23)
        dataset = claims_to_dataset(claims, gold)
        tdh = TDHModel(max_iter=20, tol=1e-4).fit(dataset)
        tdh_report = evaluate_numeric(
            {obj: float(v) for obj, v in tdh.truths().items()}, gold
        )
        mean_report = evaluate_numeric(Mean().fit(claims), gold)
        catd_report = evaluate_numeric(Catd().fit(claims), gold)
        assert tdh_report.mae < mean_report.mae
        assert tdh_report.mae < catd_report.mae

    def test_selection_immune_to_scale_outliers(self):
        claims, gold = make_stock_claims("open_price", n_objects=60, seed=5)
        dataset = claims_to_dataset(claims, gold)
        tdh = TDHModel(max_iter=20, tol=1e-4).fit(dataset)
        report = evaluate_numeric(
            {obj: float(v) for obj, v in tdh.truths().items()}, gold
        )
        # Relative error stays tiny despite 10x/100x outliers in the claims.
        assert report.relative_error < 0.05

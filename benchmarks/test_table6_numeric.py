"""Bench: Table 6 — numeric truth discovery on the stock dataset.

Shape: TDH has the lowest MAE on every attribute; the averaging baselines
(MEAN, CATD) are hurt most by the injected scale outliers.
"""

from repro.experiments import table6_numeric
from repro.experiments.common import format_table


def test_table6(benchmark):
    results = benchmark.pedantic(table6_numeric.run, rounds=1, iterations=1)
    for attribute, rows in results.items():
        print()
        print(
            format_table(
                rows, ["Algorithm", "MAE", "R/E"],
                title=f"Table 6 ({attribute})",
            )
        )
        by_algo = {r["Algorithm"]: r for r in rows}
        best_mae = min(r["MAE"] for r in rows)
        assert by_algo["TDH"]["MAE"] <= best_mae + 1e-12, attribute
        # Averaging methods suffer from outliers.
        assert by_algo["MEAN"]["MAE"] > by_algo["TDH"]["MAE"]
        assert by_algo["CATD"]["MAE"] > by_algo["TDH"]["MAE"]

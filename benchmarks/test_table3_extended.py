"""Bench: extended Table 3 — the paper's roster plus seven classic algorithms.

TDH must stay on top even against the wider field; the link-analysis family
(no reliability/generalization separation) should trail the probabilistic
models on the hierarchy-rich datasets.
"""

from repro.experiments import table3_extended
from repro.experiments.common import format_table


def test_table3_extended(benchmark):
    results = benchmark.pedantic(table3_extended.run, rounds=1, iterations=1)
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows,
                ["Algorithm", "Accuracy", "GenAccuracy", "AvgDistance"],
                title=f"Extended Table 3 ({ds_name})",
            )
        )
        by_algo = {r["Algorithm"]: r for r in rows}
        best = max(r["Accuracy"] for r in rows)
        assert by_algo["TDH"]["Accuracy"] == best, ds_name
        # The confusion-matrix crowd classics should behave like LFC-family
        # members — well above the weakest link-analysis baseline.
        weakest_link = min(
            by_algo[name]["Accuracy"]
            for name in ("SUMS", "AVGLOG", "INVEST", "POOLED")
        )
        assert by_algo["DS"]["Accuracy"] >= weakest_link - 0.05

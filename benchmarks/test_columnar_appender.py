"""Append-vs-rebuild round latency: the incremental encoding benchmark.

Two measurements feed the ``BENCH_columnar.json`` artifact (merged into the
existing report — the speedup benchmark owns the other keys):

* ``appender`` — one simulated crowdsourcing round (10 workers x 5 answers)
  appended to a 5,000-object dataset through ``dataset.columnar()`` (the
  :class:`~repro.data.columnar.ColumnarAppender` path), against a cold
  ``ColumnarClaims(dataset)`` rebuild of the same state. The acceptance bar
  is **>= 10x** (measured ~25-40x; steady-state appends are faster still
  because the first-occurrence tables are already warm).
* ``crowd_loop`` — a Figure-6-style TDH+EAI loop run under
  ``--engine columnar`` and ``--engine reference``: the assignment
  sequences, per-round accuracies and final truths must match **exactly**,
  and the per-engine wall times are recorded.

Parity/equality assertions run in the default suite (deterministic); the
wall-clock threshold lives in a ``slow``-marked test so only the
non-blocking CI bench job (which passes ``--runslow``) can fail on a loaded
runner.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.assignment import EAIAssigner
from repro.crowd.simulator import CrowdSimulator
from repro.crowd.workers import make_worker_pool
from repro.data.columnar import ColumnarClaims
from repro.data.model import Answer
from repro.datasets import make_birthplaces
from repro.inference import TDHModel

N_OBJECTS = 5000
MIN_APPEND_SPEEDUP = 10.0


def simulate_round(dataset, rng, round_seed: int, tasks: int = 5) -> int:
    workers = make_worker_pool(10, seed=round_seed)
    objects = dataset.objects
    collected = 0
    for worker in workers:
        # Only unanswered objects: a repeat (object, worker) pair would be an
        # in-place overwrite, which poisons the append log and would turn the
        # timed "append" into a rebuild.
        answered = set(dataset.objects_of_worker(worker.worker_id))
        pool = [obj for obj in objects if obj not in answered]
        for i in rng.choice(len(pool), size=min(tasks, len(pool)), replace=False):
            obj = pool[int(i)]
            dataset.add_answer(
                Answer(obj, worker.worker_id, worker.answer(dataset, obj, rng))
            )
            collected += 1
    return collected


@pytest.fixture(scope="module")
def appender_report(merge_bench_artifact):
    """Append one simulated round at the 5k scale; record append vs rebuild."""
    dataset = make_birthplaces(size=N_OBJECTS, seed=7)
    dataset.columnar()  # prime the cache: the append log starts here
    rng = np.random.default_rng(0)
    collected = simulate_round(dataset, rng, round_seed=3)

    t0 = time.perf_counter()
    appended = dataset.columnar()  # incremental catch-up via ColumnarAppender
    append_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold = ColumnarClaims(dataset)
    rebuild_seconds = time.perf_counter() - t0

    arrays_equal = all(
        np.array_equal(getattr(appended, name), getattr(cold, name))
        for name in (
            "claim_obj",
            "claim_claimant",
            "claim_slot",
            "claim_is_answer",
            "claim_offsets",
            "value_offsets",
            "slot_vid",
        )
    ) and appended.claimants == cold.claimants

    # a second round, now with warm first-occurrence tables
    collected += simulate_round(dataset, rng, round_seed=4)
    t0 = time.perf_counter()
    dataset.columnar()
    warm_append_seconds = time.perf_counter() - t0

    report = {
        "dataset": {"objects": N_OBJECTS, "claims": cold.n_claims},
        "answers_per_round": collected // 2,
        "append_seconds": append_seconds,
        "warm_append_seconds": warm_append_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / append_seconds if append_seconds > 0 else float("inf"),
        "arrays_equal": arrays_equal,
    }
    merge_bench_artifact(appender=report)
    return report


@pytest.fixture(scope="module")
def crowd_loop_report(merge_bench_artifact):
    """Fig-6-style TDH+EAI loop under both engines; equality + wall times."""

    def run(engine: str):
        dataset = make_birthplaces(size=400, seed=7)
        simulator = CrowdSimulator(
            dataset,
            TDHModel(max_iter=20, tol=1e-4, use_columnar=engine),
            EAIAssigner(use_columnar=engine),
            make_worker_pool(8, seed=3),
            rng=np.random.default_rng(11),
        )
        t0 = time.perf_counter()
        history = simulator.run(rounds=3, tasks_per_worker=5)
        return simulator, history, time.perf_counter() - t0

    sim_col, hist_col, col_seconds = run("columnar")
    sim_ref, hist_ref, ref_seconds = run("reference")
    report = {
        "rounds": 3,
        "objects": 400,
        "assignments_equal": sim_col.assignment_log == sim_ref.assignment_log,
        "truths_equal": (
            sim_col._previous_result.truths() == sim_ref._previous_result.truths()
        ),
        "accuracy_series_equal": (
            hist_col.series("accuracy") == hist_ref.series("accuracy")
        ),
        "columnar_seconds": col_seconds,
        "reference_seconds": ref_seconds,
        "loop_speedup": ref_seconds / col_seconds if col_seconds > 0 else float("inf"),
    }
    merge_bench_artifact(crowd_loop=report)
    return report


def test_appended_encoding_matches_cold_rebuild(appender_report, merge_bench_artifact):
    """Deterministic half: the spliced encoding is array-equal to a rebuild
    at the 5k scale and the artifact section is written."""
    assert appender_report["arrays_equal"]
    assert merge_bench_artifact.path.exists()
    assert "appender" in json.loads(merge_bench_artifact.path.read_text())


def test_crowd_loop_engines_agree(crowd_loop_report):
    """Deterministic half of the loop benchmark: exact engine agreement."""
    assert crowd_loop_report["assignments_equal"]
    assert crowd_loop_report["truths_equal"]
    assert crowd_loop_report["accuracy_series_equal"]


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_append_speedup_threshold(appender_report):
    """Timing half: one appended round beats a cold rebuild by >= 10x."""
    assert appender_report["speedup"] >= MIN_APPEND_SPEEDUP, appender_report

"""Append-vs-rebuild round latency: the incremental encoding benchmark.

Two measurements feed the ``BENCH_columnar.json`` artifact (merged into the
existing report — the speedup benchmark owns the other keys):

* ``appender`` — one simulated crowdsourcing round (10 workers x 5 answers)
  appended to a 5,000-object dataset through ``dataset.columnar()`` (the
  :class:`~repro.data.columnar.ColumnarAppender` path), against a cold
  ``ColumnarClaims(dataset)`` rebuild of the same state. The acceptance bar
  is **>= 10x** (measured ~25-40x; steady-state appends are faster still
  because the first-occurrence tables are already warm).
* ``appender.pair_splice`` — the per-round refresh of the claim x
  candidate :class:`~repro.data.columnar.PairExpansion`: one simulated
  round spliced through :meth:`PairExpansion.spliced` against the cold
  re-factorization every post-append fit used to pay. The acceptance bar
  is **>= 3x**: a measured bound, not a modest ambition — the ``np.unique``
  sorts the splice eliminates are only ~55% of a cold build (the rest is
  writing the six O(pairs) arrays, which any refresh must do), so ~3.5-4.5x
  is the ceiling of *any* splice at these scales.
* ``crowd_loop`` — a Figure-6-style TDH+EAI loop run under
  ``--engine columnar`` and ``--engine reference``: the assignment
  sequences, per-round accuracies and final truths must match **exactly**,
  and the per-engine wall times are recorded.

Parity/equality assertions run in the default suite (deterministic); the
wall-clock threshold lives in a ``slow``-marked test so only the
non-blocking CI bench job (which passes ``--runslow``) can fail on a loaded
runner.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.assignment import EAIAssigner
from repro.crowd.simulator import CrowdSimulator
from repro.crowd.workers import make_worker_pool
from repro.data.columnar import ColumnarClaims
from repro.data.model import Answer
from repro.datasets import make_birthplaces
from repro.inference import TDHModel

N_OBJECTS = 5000
MIN_APPEND_SPEEDUP = 10.0
MIN_PAIR_SPLICE_SPEEDUP = 3.0


def simulate_round(dataset, rng, round_seed: int, tasks: int = 5) -> int:
    workers = make_worker_pool(10, seed=round_seed)
    objects = dataset.objects
    collected = 0
    for worker in workers:
        # Only unanswered objects: a repeat (object, worker) pair would be an
        # in-place overwrite, which poisons the append log and would turn the
        # timed "append" into a rebuild.
        answered = set(dataset.objects_of_worker(worker.worker_id))
        pool = [obj for obj in objects if obj not in answered]
        for i in rng.choice(len(pool), size=min(tasks, len(pool)), replace=False):
            obj = pool[int(i)]
            dataset.add_answer(
                Answer(obj, worker.worker_id, worker.answer(dataset, obj, rng))
            )
            collected += 1
    return collected


@pytest.fixture(scope="module")
def appender_report(merge_bench_artifact):
    """Append one simulated round at the 5k scale; record append vs rebuild."""
    dataset = make_birthplaces(size=N_OBJECTS, seed=7)
    dataset.columnar()  # prime the cache: the append log starts here
    rng = np.random.default_rng(0)
    collected = simulate_round(dataset, rng, round_seed=3)

    t0 = time.perf_counter()
    appended = dataset.columnar()  # incremental catch-up via ColumnarAppender
    append_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold = ColumnarClaims(dataset)
    rebuild_seconds = time.perf_counter() - t0

    arrays_equal = all(
        np.array_equal(getattr(appended, name), getattr(cold, name))
        for name in (
            "claim_obj",
            "claim_claimant",
            "claim_slot",
            "claim_is_answer",
            "claim_offsets",
            "value_offsets",
            "slot_vid",
        )
    ) and appended.claimants == cold.claimants

    # a second round, now with warm first-occurrence tables
    collected += simulate_round(dataset, rng, round_seed=4)
    t0 = time.perf_counter()
    dataset.columnar()
    warm_append_seconds = time.perf_counter() - t0

    report = {
        "dataset": {"objects": N_OBJECTS, "claims": cold.n_claims},
        "answers_per_round": collected // 2,
        "append_seconds": append_seconds,
        "warm_append_seconds": warm_append_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / append_seconds if append_seconds > 0 else float("inf"),
        "arrays_equal": arrays_equal,
    }
    merge_bench_artifact(appender=report)
    return report


@pytest.fixture(scope="module")
def pair_splice_report(appender_report, merge_bench_artifact):
    """Splice vs cold re-factorization of the pair expansion after a round.

    A first round introduces the worker panel (new claimants renumber the
    decode table, which the splice refuses); the timed second round is the
    steady-state crowdsourcing shape — answers from known workers — where
    the expansion is spliced. The measured cold build is exactly the
    ``PairExpansion(col)`` every post-append fit paid before the splice.
    """
    from repro.data.columnar import PairExpansion

    # 4x the appender scale: the splice's advantage is asymptotic (it
    # removes the O(pairs log pairs) np.unique), so it is measured at the
    # size the sharding benchmark also uses.
    dataset = make_birthplaces(size=4 * N_OBJECTS, seed=7)
    rng = np.random.default_rng(2)
    simulate_round(dataset, rng, round_seed=13)  # worker panel becomes known
    col = dataset.columnar()
    col.pairs  # the expansion a previous fit would have built
    # Same panel (same round_seed) answering fresh objects each round.
    answers = simulate_round(dataset, rng, round_seed=13)

    captured = {}
    original = PairExpansion.__dict__["spliced"].__func__

    def capturing(cls, old, new_col, inserted, **kwargs):
        captured["args"] = (old, new_col, inserted, kwargs)
        return original(cls, old, new_col, inserted, **kwargs)

    PairExpansion.spliced = classmethod(capturing)
    try:
        t0 = time.perf_counter()
        appended = dataset.columnar()
        refresh_seconds = time.perf_counter() - t0
    finally:
        PairExpansion.spliced = classmethod(original)
    assert appended._pairs is not None and "args" in captured

    # Best-of-N for both sides: single-shot wall clocks jitter far more
    # than the splice/rebuild gap on a loaded runner.
    def best_of(fn, repeats: int = 7) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    s_old, s_col, s_ins, s_kwargs = captured["args"]
    splice_seconds = best_of(
        lambda: PairExpansion.spliced(s_old, s_col, s_ins, **s_kwargs)
    )
    rebuild_seconds = best_of(lambda: PairExpansion(appended))
    cold = PairExpansion(appended)

    def canonical(index):
        # Spliced expansions keep cell ids append-stable; cold builds use
        # np.unique order — compare the partitions, which is what EM sees.
        uniq, first, inv = np.unique(index, return_index=True, return_inverse=True)
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[np.argsort(first)] = np.arange(len(uniq))
        return rank[inv]

    spliced = appended.pairs
    arrays_equal = (
        all(
            np.array_equal(getattr(spliced, name), getattr(cold, name))
            for name in ("pair_claim", "pair_slot", "pair_size", "pair_is_claimed")
        )
        and spliced.n_cells == cold.n_cells
        and spliced.n_totals == cold.n_totals
        and np.array_equal(canonical(spliced.cell_index), canonical(cold.cell_index))
        and np.array_equal(canonical(spliced.total_index), canonical(cold.total_index))
    )

    report = dict(appender_report)
    report["pair_splice"] = {
        "objects": 4 * N_OBJECTS,
        "answers_appended": answers,
        "pairs": len(cold.pair_claim),
        "splice_seconds": splice_seconds,
        "refresh_with_pairs_seconds": refresh_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / splice_seconds if splice_seconds > 0 else float("inf"),
        "arrays_equal": arrays_equal,
    }
    merge_bench_artifact(appender=report)
    return report["pair_splice"]


@pytest.fixture(scope="module")
def crowd_loop_report(merge_bench_artifact):
    """Fig-6-style TDH+EAI loop under both engines; equality + wall times."""

    def run(engine: str):
        dataset = make_birthplaces(size=400, seed=7)
        simulator = CrowdSimulator(
            dataset,
            TDHModel(max_iter=20, tol=1e-4, use_columnar=engine),
            EAIAssigner(use_columnar=engine),
            make_worker_pool(8, seed=3),
            rng=np.random.default_rng(11),
        )
        t0 = time.perf_counter()
        history = simulator.run(rounds=3, tasks_per_worker=5)
        return simulator, history, time.perf_counter() - t0

    sim_col, hist_col, col_seconds = run("columnar")
    sim_ref, hist_ref, ref_seconds = run("reference")
    report = {
        "rounds": 3,
        "objects": 400,
        "assignments_equal": sim_col.assignment_log == sim_ref.assignment_log,
        "truths_equal": (
            sim_col._previous_result.truths() == sim_ref._previous_result.truths()
        ),
        "accuracy_series_equal": (
            hist_col.series("accuracy") == hist_ref.series("accuracy")
        ),
        "columnar_seconds": col_seconds,
        "reference_seconds": ref_seconds,
        "loop_speedup": ref_seconds / col_seconds if col_seconds > 0 else float("inf"),
    }
    merge_bench_artifact(crowd_loop=report)
    return report


def test_appended_encoding_matches_cold_rebuild(appender_report, merge_bench_artifact):
    """Deterministic half: the spliced encoding is array-equal to a rebuild
    at the 5k scale and the artifact section is written."""
    assert appender_report["arrays_equal"]
    assert merge_bench_artifact.path.exists()
    assert "appender" in json.loads(merge_bench_artifact.path.read_text())


def test_crowd_loop_engines_agree(crowd_loop_report):
    """Deterministic half of the loop benchmark: exact engine agreement."""
    assert crowd_loop_report["assignments_equal"]
    assert crowd_loop_report["truths_equal"]
    assert crowd_loop_report["accuracy_series_equal"]


def test_pair_splice_matches_cold_factorization(pair_splice_report):
    """Deterministic half: the spliced expansion is array-equal to the cold
    ``np.unique`` factorization after a steady-state round."""
    assert pair_splice_report["arrays_equal"]


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_append_speedup_threshold(appender_report):
    """Timing half: one appended round beats a cold rebuild by >= 10x."""
    assert appender_report["speedup"] >= MIN_APPEND_SPEEDUP, appender_report


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_pair_splice_speedup_threshold(pair_splice_report):
    """Timing half: the per-round pair refresh beats the cold
    re-factorization by >= 3x (see the module docstring for why 3x is the
    honest bar: the eliminated sorts are ~55% of a cold build)."""
    assert (
        pair_splice_report["speedup"] >= MIN_PAIR_SPLICE_SPEEDUP
    ), pair_splice_report

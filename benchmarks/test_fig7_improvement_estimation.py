"""Bench: Figure 7 — actual vs estimated accuracy improvement.

EAI's estimate must track the realised improvement more closely than QASCA's,
and QASCA must overestimate on average (positive bias) — the paper's central
task-assignment finding.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig7_estimation


def test_fig7(benchmark):
    results = benchmark.pedantic(fig7_estimation.run, rounds=1, iterations=1)
    for ds_name, per_assigner in results.items():
        print(f"\nFigure 7 ({ds_name}):")
        for assigner, data in per_assigner.items():
            print(
                f"  {assigner:6s} mean|est-act| = {data['mean_abs_error_pp']:.3f} pp,"
                f" bias = {data['mean_bias_pp']:+.3f} pp"
            )
        eai = per_assigner["EAI"]
        qasca = per_assigner["QASCA"]
        assert eai["mean_abs_error_pp"] <= qasca["mean_abs_error_pp"] + 1e-9, ds_name
        assert qasca["mean_bias_pp"] > 0.0, "QASCA should overestimate"

"""Bench: Figure 11 — final accuracy vs worker quality pi_p.

Accuracy grows with pi_p and TDH+EAI stays on top across the sweep.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig11_worker_quality
from repro.experiments.common import format_series

PI_VALUES = (0.55, 0.75, 0.95)


def test_fig11(benchmark):
    results = benchmark.pedantic(
        fig11_worker_quality.run,
        kwargs={"pi_values": PI_VALUES},
        rounds=1,
        iterations=1,
    )
    for ds_name, data in results.items():
        xs = data.pop("pi_p")
        print()
        print(format_series(data, xs, x_label="pi_p", title=f"Figure 11 ({ds_name})"))
        tdh = data["TDH+EAI"]
        # Monotone-ish growth with worker quality.
        assert tdh[-1] >= tdh[0] - 0.02
        # TDH+EAI best (or within noise of best) at the highest pi_p.
        finals = {combo: series[-1] for combo, series in data.items()}
        assert finals["TDH+EAI"] >= max(finals.values()) - 0.02

"""Bench: Figure 17 — crowdsourcing with the simulated AMT panel (Heritages).

With 20 mixed-quality workers the trends match the human-panel experiment:
TDH+EAI ends on top on all three measures.
"""

from repro.experiments import fig17_amt
from repro.experiments.common import format_series


def test_fig17(benchmark):
    results = benchmark.pedantic(
        fig17_amt.run, kwargs={"rounds": 8}, rounds=1, iterations=1
    )
    data = results["Heritages"]
    rounds = data["rounds"]
    print()
    print(format_series(data["accuracy"], rounds, title="Figure 17 — Accuracy"))
    finals = {combo: series[-1] for combo, series in data["accuracy"].items()}
    assert finals["TDH+EAI"] >= max(finals.values()) - 0.02
    dist_finals = {c: s[-1] for c, s in data["avg_distance"].items()}
    assert dist_finals["TDH+EAI"] <= min(dist_finals.values()) + 0.05

"""Serving-layer load benchmark: sustained write throughput + read latency.

Drives a live :class:`~repro.serving.TruthService` (real worker task, real
asyncio scheduling) over the same sparse 5,000-object substrate the
incremental-EM benchmark uses — 5 uniform claims per object from a 15,000
source pool, so a micro-batch's dirty frontier stays a small fraction of the
dataset and the steady-state refits run on the incremental path.

The load shape is deliberately *append-only*: each concurrent writer owns a
disjoint partition of the objects and a private worker id, so no
``(object, worker)`` pair repeats and the write stream never triggers the
in-place-overwrite oplog clear (overwrite handling is covered functionally
in ``tests/test_serving.py``; here we benchmark the hot path). Concurrent
readers time ``get_truths`` over a fixed 32-object sample throughout the run.

A *mixed-traffic* fixture then reruns a smaller load with answer writers
plus a claims writer appending records that grow the slot layout — fresh
sources naming brand-new candidate values, plus brand-new objects. Its
``mixed_traffic`` artifact section records the steady-state incremental
fraction (1.0 = every post-startup batch rode the frontier), the
``warm_start_degradations`` counter (0 = the slot-growth splice served every
record append warm), and truth agreement against a cold fit of a mirror
dataset fed the identical stream.

Results land in ``BENCH_service.json`` at the repo root (a separate artifact
from ``BENCH_columnar.json`` — this one is service-level: writes/sec and
read-latency percentiles, not per-engine speedups). Deterministic shape
assertions (every write applied, truths match a cold fit of the identical
final state) run in the default suite; the throughput/latency thresholds are
``slow``-marked so only the non-blocking CI bench job can fail on a loaded
runner.

A second module fixture reruns the identical load with a write-ahead journal
attached (``fsync="checkpoint"``), then times a full crash recovery of the
resulting 5k-object journal — the ``journal`` / ``recovery`` sections of the
artifact quantify what durability costs (journal-on vs journal-off
writes/sec) and what a restart costs (replay seconds vs the recovery's total
including its initial refit).
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.data.model import Answer, Record, TruthDiscoveryDataset
from repro.datasets.geography import make_geography, sample_truths
from repro.datasets.synthetic import _claim_value, _wrong_pool
from repro.inference import TDHModel
from repro.serving import (
    LatencyRecorder,
    TruthService,
    WriteAheadJournal,
    rebuild_dataset,
    recover,
    scan_journal,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_OBJECTS = 5000
N_SOURCES = 15000
CLAIMS_PER_OBJECT = 5
N_WRITERS = 4
WRITES_PER_WRITER = 48
TOTAL_WRITES = N_WRITERS * WRITES_PER_WRITER
BATCH_MAX = 64
READ_SAMPLE = 32
MIN_WRITES_PER_SEC = 20.0
MAX_READ_P99_US = 50_000.0
MIN_JOURNAL_WRITES_PER_SEC = 10.0
MAX_REPLAY_SECONDS = 30.0
MIXED_WRITES_PER_WRITER = 24
MIXED_CLAIMS = 12
COMPACT_HISTORY = 8000  # single-write batches: a long-history journal
MIN_COMPACTION_REPLAY_REDUCTION = 5.0


def make_sparse_dataset(seed: int = 29) -> TruthDiscoveryDataset:
    """The incremental benchmark's substrate (duplicated: benchmarks/ is not
    a package): uniform sparse claims, claimant degree ~O(1)."""
    rng = np.random.default_rng(seed)
    hierarchy = make_geography(
        height=5, branching=(4, 6, 5, 4, 2), rng=rng, max_nodes=3000
    )
    truths = sample_truths(hierarchy, N_OBJECTS, rng, min_depth=2)
    objects = [f"entity_{i}" for i in range(N_OBJECTS)]
    gold = dict(zip(objects, truths))
    pool = _wrong_pool(hierarchy, rng)
    records: List[Record] = []
    for obj, truth in zip(objects, truths):
        misinformation = pool[int(rng.integers(len(pool)))]
        chosen = rng.choice(N_SOURCES, size=CLAIMS_PER_OBJECT, replace=False)
        for idx in chosen:
            value = _claim_value(
                truth, hierarchy, (0.7, 0.2, 0.1), misinformation, pool, rng
            )
            records.append(Record(obj, f"src_{idx}", value))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="sparse5k")


def writer_stream(dataset: TruthDiscoveryDataset, writer_id: int, seed: int = 41):
    """``(object, worker, value)`` triples for one writer: a disjoint object
    partition and a private worker id keep the combined stream append-only."""
    rng = np.random.default_rng(seed + writer_id)
    partition = dataset.objects[writer_id::N_WRITERS]
    picks = rng.choice(len(partition), size=WRITES_PER_WRITER, replace=False)
    stream = []
    for i in picks:
        obj = partition[int(i)]
        candidates = sorted(dataset.candidates(obj), key=str)
        truth = dataset.gold[obj]
        value = (
            truth
            if truth in candidates and rng.random() < 0.7
            else candidates[int(rng.integers(len(candidates)))]
        )
        stream.append((obj, f"bench_w{writer_id}", value))
    return stream


def claim_stream(dataset: TruthDiscoveryDataset, seed: int = 97):
    """``(object, source, value)`` triples that grow the slot layout: fresh
    sources naming a candidate value brand-new to each picked object, plus
    two brand-new objects — every one an append (no overwrites), so the
    warm-start gate must serve all of them incrementally."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(dataset.objects), size=MIXED_CLAIMS - 2, replace=False)
    claims = []
    for n, i in enumerate(picks):
        obj = dataset.objects[int(i)]
        candidates = dataset.candidates(obj)
        fresh = next(
            v for v in dataset.hierarchy.non_root_nodes() if v not in candidates
        )
        claims.append((obj, f"mx_src_{n}", fresh))
    value = next(iter(dataset.hierarchy.non_root_nodes()))
    claims.append(("mx_entity_a", "mx_src_new_a", value))
    claims.append(("mx_entity_b", "mx_src_new_b", value))
    return claims


@pytest.fixture(scope="module")
def serving_report() -> Dict[str, object]:
    base = make_sparse_dataset()
    mirror = make_sparse_dataset()
    streams = [writer_stream(base, k) for k in range(N_WRITERS)]
    read_latency = LatencyRecorder()
    sample = base.objects[:: N_OBJECTS // READ_SAMPLE][:READ_SAMPLE]

    async def load() -> Dict[str, object]:
        service = TruthService(
            base,
            TDHModel(use_columnar=True, incremental=True),
            max_pending=512,
            batch_max=BATCH_MAX,
        )
        writing = True

        async def writer(stream) -> None:
            for n, (obj, worker, value) in enumerate(stream):
                await service.append_answer(obj, worker, value)
                if n % 8 == 0:
                    await asyncio.sleep(0)

        async def reader() -> None:
            while writing:
                t0 = time.perf_counter()
                reads = service.get_truths(sample)
                read_latency.record(time.perf_counter() - t0)
                assert len({r.epoch for r in reads.values()}) == 1
                await asyncio.sleep(0)

        async with service:
            t_start = time.perf_counter()
            reader_task = asyncio.create_task(reader())
            await asyncio.gather(*(writer(s) for s in streams))
            final = await service.drain()
            run_seconds = time.perf_counter() - t_start
            writing = False
            await reader_task
        stats = service.stats()
        return {
            "stats": stats,
            "final_epoch": final.epoch,
            "final_truths": dict(final.truths),
            "run_seconds": run_seconds,
        }

    outcome = asyncio.run(load())
    stats = outcome["stats"]

    for stream in streams:  # identical stream onto the mirror, then cold-fit it
        for obj, worker, value in stream:
            mirror.add_answer(Answer(obj, worker, value))
    cold_truths = TDHModel(use_columnar=True).fit(mirror).truths()
    final_truths = outcome["final_truths"]
    agreement = float(
        np.mean([final_truths[o] == t for o, t in cold_truths.items()])
    )

    latency = read_latency.summary()
    report: Dict[str, object] = {
        "objects": N_OBJECTS,
        "claims": N_OBJECTS * CLAIMS_PER_OBJECT,
        "writers": N_WRITERS,
        "writes": TOTAL_WRITES,
        "batch_max": BATCH_MAX,
        "run_seconds": outcome["run_seconds"],
        "writes_applied": stats["writes_applied"],
        "writes_per_sec": stats["writes_applied"] / outcome["run_seconds"],
        "batches": stats["batches"],
        "final_epoch": outcome["final_epoch"],
        "fits_incremental": stats["fits_incremental"],
        "fits_cold": stats["fits_cold"],
        "fit_seconds_total": stats["fit_seconds_total"],
        "read_latency": {
            "sample_objects": len(sample),
            "count": latency.get("count", 0),
            "p50_us": latency.get("p50_us"),
            "p99_us": latency.get("p99_us"),
        },
        "truth_agreement": agreement,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.fixture(scope="module")
def journal_report(serving_report, tmp_path_factory) -> Dict[str, object]:
    """The identical load journal-on vs journal-off, then a timed recovery.

    Both runs happen back-to-back inside this fixture (after
    ``serving_report`` has already warmed the process) so the journal-on /
    journal-off writes/sec comparison is like for like — comparing against
    the *first* load of the process would mostly measure warm-up. Merges
    ``journal`` and ``recovery`` sections into the artifact.
    """
    path = tmp_path_factory.mktemp("wal") / "bench.wal"

    async def load(journal) -> Dict[str, object]:
        base = make_sparse_dataset()
        streams = [writer_stream(base, k) for k in range(N_WRITERS)]
        sample = base.objects[:: N_OBJECTS // READ_SAMPLE][:READ_SAMPLE]
        service = TruthService(
            base,
            TDHModel(use_columnar=True, incremental=True),
            max_pending=512,
            batch_max=BATCH_MAX,
            journal=journal,
        )
        writing = True

        async def writer(stream) -> None:
            for n, (obj, worker, value) in enumerate(stream):
                await service.append_answer(obj, worker, value)
                if n % 8 == 0:
                    await asyncio.sleep(0)

        async def reader() -> None:
            while writing:
                reads = service.get_truths(sample)
                assert len({r.epoch for r in reads.values()}) == 1
                await asyncio.sleep(0)

        async with service:
            t_start = time.perf_counter()
            reader_task = asyncio.create_task(reader())
            await asyncio.gather(*(writer(s) for s in streams))
            final = await service.drain()
            run_seconds = time.perf_counter() - t_start
            writing = False
            await reader_task
        return {
            "stats": service.stats(),
            "final_epoch": final.epoch,
            "final_truths": dict(final.truths),
            "run_seconds": run_seconds,
        }

    async def recover_timed() -> Dict[str, object]:
        t_recover = time.perf_counter()
        recovered, recovery = await recover(
            path, TDHModel(use_columnar=True, incremental=True), run_worker=False
        )
        recover_total_seconds = time.perf_counter() - t_recover
        recovered_truths = {o: r.value for o, r in recovered.get_truths().items()}
        await recovered.stop()
        return {
            "recovery": recovery,
            "recover_total_seconds": recover_total_seconds,
            "recovered_truths": recovered_truths,
        }

    baseline = asyncio.run(load(None))
    outcome = asyncio.run(load(WriteAheadJournal(path, fsync="checkpoint")))
    recovered = asyncio.run(recover_timed())
    stats = outcome["stats"]
    recovery = recovered["recovery"]
    baseline_wps = baseline["stats"]["writes_applied"] / baseline["run_seconds"]
    journal_wps = stats["writes_applied"] / outcome["run_seconds"]
    sections: Dict[str, object] = {
        "journal": {
            "fsync": "checkpoint",
            "writes": TOTAL_WRITES,
            "writes_applied": stats["writes_applied"],
            "run_seconds": outcome["run_seconds"],
            "writes_per_sec": journal_wps,
            "baseline_writes_per_sec": baseline_wps,
            "overhead_pct": 100.0 * (1.0 - journal_wps / baseline_wps),
            "records_appended": stats["journal"]["records_appended"],
            "bytes_appended": stats["journal"]["bytes_appended"],
            "fsyncs": stats["journal"]["fsyncs"],
            "file_bytes": stats["journal"]["file_bytes"],
        },
        "recovery": {
            "objects": N_OBJECTS,
            "entries": recovery.entries,
            "batches_replayed": recovery.batches_replayed,
            "writes_replayed": recovery.writes_replayed,
            "truncated_records": recovery.truncated_records,
            "resume_epoch": recovery.resume_epoch,
            "replay_seconds": recovery.replay_seconds,
            "total_recover_seconds": recovered["recover_total_seconds"],
        },
    }
    artifact = json.loads(ARTIFACT.read_text())
    artifact.update(sections)
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    return {
        "final_epoch": outcome["final_epoch"],
        "final_truths": outcome["final_truths"],
        "recovered_truths": recovered["recovered_truths"],
        "recovery_report": recovery,
        **sections,
    }


@pytest.fixture(scope="module")
def mixed_report(serving_report) -> Dict[str, object]:
    """Mixed claim+answer traffic: answer writers plus a claims writer whose
    records grow the slot layout (brand-new candidate values, brand-new
    objects). Steady state must stay on the incremental path — the
    slot-growth splice, not a cold refit, absorbs each record append — and
    the served truths must track a cold fit of the identical final state.
    Merges a ``mixed_traffic`` section into the artifact."""
    base = make_sparse_dataset()
    mirror = make_sparse_dataset()
    answer_streams = [
        writer_stream(base, k)[:MIXED_WRITES_PER_WRITER] for k in range(N_WRITERS)
    ]
    claims = claim_stream(base)
    total_writes = N_WRITERS * MIXED_WRITES_PER_WRITER + MIXED_CLAIMS

    async def load() -> Dict[str, object]:
        service = TruthService(
            base,
            TDHModel(use_columnar=True, incremental=True),
            max_pending=512,
            batch_max=BATCH_MAX,
        )

        async def answer_writer(stream) -> None:
            for n, (obj, worker, value) in enumerate(stream):
                await service.append_answer(obj, worker, value)
                if n % 8 == 0:
                    await asyncio.sleep(0)

        async def claims_writer() -> None:
            for obj, source, value in claims:
                await service.append_claim(obj, source, value)
                await asyncio.sleep(0)  # interleave with the answer writers

        async with service:
            t_start = time.perf_counter()
            await asyncio.gather(
                claims_writer(), *(answer_writer(s) for s in answer_streams)
            )
            final = await service.drain()
            run_seconds = time.perf_counter() - t_start
        return {
            "stats": service.stats(),
            "final_truths": dict(final.truths),
            "run_seconds": run_seconds,
        }

    outcome = asyncio.run(load())
    stats = outcome["stats"]

    for stream in answer_streams:
        for obj, worker, value in stream:
            mirror.add_answer(Answer(obj, worker, value))
    for obj, source, value in claims:
        mirror.add_record(Record(obj, source, value))
    cold_truths = TDHModel(use_columnar=True).fit(mirror).truths()
    final_truths = outcome["final_truths"]
    agreement = float(
        np.mean([final_truths[o] == t for o, t in cold_truths.items()])
    )

    section: Dict[str, object] = {
        "objects": N_OBJECTS,
        "answers": N_WRITERS * MIXED_WRITES_PER_WRITER,
        "claims": MIXED_CLAIMS,
        "new_objects": 2,
        "writes": total_writes,
        "writes_applied": stats["writes_applied"],
        "run_seconds": outcome["run_seconds"],
        "writes_per_sec": stats["writes_applied"] / outcome["run_seconds"],
        "batches": stats["batches"],
        "fits_incremental": stats["fits_incremental"],
        "fits_cold": stats["fits_cold"],
        "incremental_fraction": stats["fits_incremental"] / max(stats["batches"], 1),
        "warm_start_degradations": stats["warm_start_degradations"],
        "warm_start_degradation_reasons": stats["warm_start_degradation_reasons"],
        "truth_agreement": agreement,
    }
    artifact = json.loads(ARTIFACT.read_text())
    artifact["mixed_traffic"] = section
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    return section


@pytest.fixture(scope="module")
def compaction_report(serving_report, tmp_path_factory) -> Dict[str, object]:
    """Compaction bounds recovery replay by data size, not history length.

    Builds a deliberately long-history journal over the 5k-object substrate —
    ``COMPACT_HISTORY`` single-write batches, each followed by its
    checkpoint, the worst case frames-per-write shape a long supervised run
    produces — then times a full ``rebuild_dataset`` replay before and after
    ``compact()``. The post-compaction file is two entries (base +
    checkpoint) whatever the history was; the rebuilt claim state and
    version stamps must be identical either way. Merges a ``compaction``
    section into the artifact.
    """
    path = tmp_path_factory.mktemp("compact") / "compact.wal"
    dataset = make_sparse_dataset()
    journal = WriteAheadJournal(path, fsync="never")
    journal.append_base(dataset)
    rng = np.random.default_rng(71)
    objects = dataset.objects
    for b in range(COMPACT_HISTORY):
        obj = objects[int(rng.integers(len(objects)))]
        candidates = dataset.candidates(obj)
        claim = Answer(obj, f"cw{b}", candidates[int(rng.integers(len(candidates)))])
        journal.append_batch([claim])
        dataset.add_answer(claim)
        journal.append_checkpoint(
            epoch=b + 1,
            dataset_version=dataset.version,
            records_version=dataset.records_version,
            applied_writes=b + 1,
        )
    entries_before = len(scan_journal(path).entries)

    t0 = time.perf_counter()
    rebuilt_before, replay_before = rebuild_dataset(path)
    replay_seconds_before = time.perf_counter() - t0

    info = journal.compact(
        dataset,
        epoch=COMPACT_HISTORY,
        dataset_version=dataset.version,
        records_version=dataset.records_version,
        applied_writes=COMPACT_HISTORY,
    )
    entries_after = len(scan_journal(path).entries)

    t0 = time.perf_counter()
    rebuilt_after, replay_after = rebuild_dataset(path)
    replay_seconds_after = time.perf_counter() - t0
    journal.close()

    lossless = (
        rebuilt_before._records_by_object == rebuilt_after._records_by_object
        and rebuilt_before._answers_by_object == rebuilt_after._answers_by_object
        and rebuilt_before.version == rebuilt_after.version == dataset.version
        and rebuilt_before.records_version
        == rebuilt_after.records_version
        == dataset.records_version
    )
    section: Dict[str, object] = {
        "objects": N_OBJECTS,
        "history_batches": COMPACT_HISTORY,
        "entries_before": entries_before,
        "entries_after": entries_after,
        "bytes_before": info["before_bytes"],
        "bytes_after": info["after_bytes"],
        "batches_replayed_before": replay_before["batches"],
        "batches_replayed_after": replay_after["batches"],
        "replay_seconds_before": replay_seconds_before,
        "replay_seconds_after": replay_seconds_after,
        "replay_reduction": replay_seconds_before / replay_seconds_after,
        "lossless": lossless,
    }
    artifact = json.loads(ARTIFACT.read_text())
    artifact["compaction"] = section
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    return section


def test_every_write_applied_and_truths_match_cold_fit(serving_report):
    """Deterministic half: the load was fully absorbed (no rejects, every
    write published), the steady state ran incrementally, and the served
    truths equal a cold fit of the identical final dataset."""
    assert serving_report["writes_applied"] == TOTAL_WRITES
    assert serving_report["final_epoch"] == serving_report["batches"]
    assert serving_report["fits_incremental"] > 0
    assert serving_report["truth_agreement"] >= 0.999
    assert ARTIFACT.exists()
    assert json.loads(ARTIFACT.read_text())["writes"] == TOTAL_WRITES


def test_journaled_load_is_durable_and_recovery_is_exact(journal_report):
    """Deterministic half of the durability bench: every write absorbed with
    the journal attached, recovery replayed the whole accepted stream with
    nothing truncated, and the recovered truths track the live ones."""
    assert journal_report["journal"]["writes_applied"] == TOTAL_WRITES
    report = journal_report["recovery_report"]
    assert report.writes_replayed == TOTAL_WRITES
    assert report.writes_rejected == 0
    assert report.truncated_records == 0 and report.tail_bytes_dropped == 0
    assert report.resume_epoch == journal_report["final_epoch"] + 1
    final = journal_report["final_truths"]
    recovered = journal_report["recovered_truths"]
    agreement = float(np.mean([recovered[o] == t for o, t in final.items()]))
    assert agreement >= 0.999
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["journal"]["writes"] == TOTAL_WRITES
    assert artifact["recovery"]["writes_replayed"] == TOTAL_WRITES


def test_mixed_traffic_stays_incremental_with_zero_degradations(mixed_report):
    """Deterministic half of the fixed cliff, service-level: under mixed
    claim+answer traffic every write is absorbed, every post-startup batch
    is served on the incremental path (the slot-growth splice — the record
    appends never degrade the warm start), and the served truths track a
    cold fit of the identical final state."""
    assert mixed_report["writes_applied"] == mixed_report["writes"]
    assert mixed_report["fits_cold"] == 1  # the epoch-0 startup fit, only
    assert mixed_report["incremental_fraction"] == 1.0, mixed_report
    assert mixed_report["warm_start_degradations"] == 0, mixed_report
    assert mixed_report["warm_start_degradation_reasons"] == {}, mixed_report
    assert mixed_report["truth_agreement"] >= 0.999, mixed_report
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["mixed_traffic"]["warm_start_degradations"] == 0


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_sustained_throughput_and_read_latency(serving_report):
    """Timing half: the service sustains the write load while readers stay
    fast — thresholds are deliberately loose (shared CI runners)."""
    assert serving_report["writes_per_sec"] >= MIN_WRITES_PER_SEC, serving_report
    assert serving_report["read_latency"]["p99_us"] <= MAX_READ_P99_US, serving_report
    assert serving_report["read_latency"]["count"] > 0


def test_compaction_is_lossless_and_collapses_history(compaction_report):
    """Deterministic half: whatever the history length, the compacted file
    is exactly base + checkpoint, nothing is replayed after it, and the
    rebuilt claim state and version stamps are bitwise those of the
    long-history replay."""
    assert compaction_report["entries_before"] == 2 * COMPACT_HISTORY + 1
    assert compaction_report["entries_after"] == 2
    assert compaction_report["batches_replayed_before"] == COMPACT_HISTORY
    assert compaction_report["batches_replayed_after"] == 0
    assert compaction_report["lossless"] is True
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["compaction"]["history_batches"] == COMPACT_HISTORY


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_compaction_bounds_replay_time(compaction_report):
    """Timing half: replaying the compacted journal beats replaying the
    long history by a wide margin — replay cost is bounded by data size,
    not history length."""
    assert (
        compaction_report["replay_reduction"] >= MIN_COMPACTION_REPLAY_REDUCTION
    ), compaction_report


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_journal_throughput_and_replay_time(journal_report):
    """Durability must stay affordable: journaled writes/sec above a loose
    floor, and replaying the whole 5k-object journal within a loose ceiling."""
    assert (
        journal_report["journal"]["writes_per_sec"] >= MIN_JOURNAL_WRITES_PER_SEC
    ), journal_report["journal"]
    assert (
        journal_report["recovery"]["replay_seconds"] <= MAX_REPLAY_SECONDS
    ), journal_report["recovery"]

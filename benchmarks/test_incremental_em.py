"""Warm-started dirty-frontier EM vs a cold columnar refit: the per-round
incremental inference benchmark.

Two measurements feed the ``incremental`` section of ``BENCH_columnar.json``
(merged into the existing report — the speedup/appender/sharding benchmarks
own the other keys). First, a crowd-round-shaped delta (~50 answers from a
small worker panel) lands on a 5,000-object dataset, and the warm-started
``fit(dataset, warm_start=prev)`` that re-converges only the dirty frontier
is timed against the cold columnar fit of the identical final state, for TDH
and Dawid-Skene. Second, a *slot-growth* round — the same 50 answers plus 10
records introducing brand-new candidate values and a brand-new object — is
timed the same way: the grown slot layout is served by scatter-expanding the
warm per-slot state (``FrontierPlan.slot_map``), so the mixed delta rides
the incremental path instead of falling back cold.

The dataset is deliberately *sparse*: 5 claims per object (Heritages'
mean is 5.6) drawn uniformly from a 15,000-source pool, so every claimant
touches only a couple of objects and the 1-hop frontier of a 50-answer
round stays a small fraction of the dataset. (``make_birthplaces`` would be the wrong substrate here: its
two near-complete sources connect every object to every other, the frontier
saturates, and the incremental path correctly delegates to the cold fit.)

Timing protocol: the oplog window a warm start consumes is curtailed by the
fit itself (``dataset.columnar()`` trims the log once the encoding catches
up), so re-fitting the *same* dataset object a second time would silently
fall back to a cold fit. Each repeat therefore runs a full private cycle —
copy the base dataset, prime a warm result, append the same seeded round,
time the incremental fit — and the cold baseline is timed on an identical
final state. Best-of-N on both sides.

Parity assertions (truths agree, frontier strictly partial) run in the
default suite; the >= 5x wall-clock threshold lives in a ``slow``-marked
test so only the non-blocking CI bench job (``--runslow``) can fail on a
loaded runner.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.data.model import Answer, Record, TruthDiscoveryDataset
from repro.datasets.geography import make_geography, sample_truths
from repro.datasets.synthetic import _claim_value, _wrong_pool
from repro.inference import DawidSkene, TDHModel

N_OBJECTS = 5000
N_SOURCES = 15000
CLAIMS_PER_OBJECT = 5
N_WORKERS = 7
DELTA_ANSWERS = 50
DELTA_RECORDS = 10
REPEATS = 3
MIN_INCREMENTAL_SPEEDUP = 5.0
MIN_GROWTH_SPEEDUP = 3.0


def make_sparse_dataset(
    size: int = N_OBJECTS, n_sources: int = N_SOURCES, seed: int = 29
) -> TruthDiscoveryDataset:
    """Uniform sparse claim graph: ``CLAIMS_PER_OBJECT`` sources per object,
    drawn uniformly (no Zipf head), so claimant degree stays ~O(1) and a
    round's frontier cannot percolate through a popular source."""
    rng = np.random.default_rng(seed)
    hierarchy = make_geography(
        height=5, branching=(4, 6, 5, 4, 2), rng=rng, max_nodes=3000
    )
    truths = sample_truths(hierarchy, size, rng, min_depth=2)
    objects = [f"entity_{i}" for i in range(size)]
    gold = dict(zip(objects, truths))
    pool = _wrong_pool(hierarchy, rng)
    records: List[Record] = []
    for obj, truth in zip(objects, truths):
        misinformation = pool[int(rng.integers(len(pool)))]
        chosen = rng.choice(n_sources, size=CLAIMS_PER_OBJECT, replace=False)
        for idx in chosen:
            value = _claim_value(
                truth, hierarchy, (0.7, 0.2, 0.1), misinformation, pool, rng
            )
            records.append(Record(obj, f"src_{idx}", value))
    return TruthDiscoveryDataset(hierarchy, records, gold=gold, name="sparse5k")


def round_answers(dataset: TruthDiscoveryDataset, seed: int = 41) -> List[Answer]:
    """One crowd round: ``DELTA_ANSWERS`` answers from ``N_WORKERS`` workers
    on distinct objects, mostly truthful, restricted to existing candidate
    values — the answers-only delta leaves the slot layout untouched. (Slot
    growth is benchmarked separately by the mixed round below.)"""
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(dataset.objects), size=DELTA_ANSWERS, replace=False)
    answers = []
    for n, i in enumerate(picks):
        obj = dataset.objects[int(i)]
        candidates = sorted(dataset.candidates(obj), key=str)
        truth = dataset.gold[obj]
        value = (
            truth
            if truth in candidates and rng.random() < 0.7
            else candidates[int(rng.integers(len(candidates)))]
        )
        answers.append(Answer(obj, f"bench_w{n % N_WORKERS}", value))
    return answers


def growth_records(dataset: TruthDiscoveryDataset, seed: int = 43) -> List[Record]:
    """The slot-growth half of the mixed round: ``DELTA_RECORDS`` records from
    fresh sources — all but one naming a candidate value brand-new to an
    existing object, the last one a brand-new object — so the delta grows the
    slot layout (and the object axis) instead of just re-weighting it."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(dataset.objects), size=DELTA_RECORDS - 1, replace=False)
    records = []
    for n, i in enumerate(picks):
        obj = dataset.objects[int(i)]
        candidates = dataset.candidates(obj)
        fresh = next(
            v for v in dataset.hierarchy.non_root_nodes() if v not in candidates
        )
        records.append(Record(obj, f"growth_src_{n}", fresh))
    new_value = next(iter(dataset.hierarchy.non_root_nodes()))
    records.append(Record("growth_entity_new", "growth_src_new", new_value))
    return records


@pytest.fixture(scope="module")
def incremental_report(merge_bench_artifact):
    base = make_sparse_dataset()
    # The worker panel must be known claimants before the timed round (the
    # simulator's round 1 does the same): seed one answer per worker, then
    # snapshot that primed state as the per-repeat starting point.
    for w in range(N_WORKERS):
        obj = base.objects[w]
        value = sorted(base.candidates(obj), key=str)[0]
        base.add_answer(Answer(obj, f"bench_w{w}", value))

    models = {
        "TDH": lambda inc: TDHModel(use_columnar=True, incremental=inc),
        "DS": lambda inc: DawidSkene(use_columnar=True, incremental=inc),
    }
    report: Dict[str, object] = {
        "objects": N_OBJECTS,
        "claims": N_OBJECTS * CLAIMS_PER_OBJECT + N_WORKERS,
        "delta_answers": DELTA_ANSWERS,
        "delta_records": DELTA_RECORDS,
        "hops": 1,
        "algorithms": {},
    }

    def timed_round(factory, grow: bool) -> Dict[str, object]:
        """Best-of-``REPEATS`` warm vs cold timing of one seeded round:
        answers only, or (``grow=True``) answers plus the slot-growth
        records. Each repeat primes its own warm result on a private copy
        (the oplog-trim protocol from the module docstring)."""
        inc_best = float("inf")
        inc_result = None
        for _ in range(REPEATS):
            ds = base.copy()
            model = factory(True)
            warm = model.fit(ds)
            for answer in round_answers(ds):
                ds.add_answer(answer)
            if grow:
                for record in growth_records(ds):
                    ds.add_record(record)
            t0 = time.perf_counter()
            inc_result = model.fit(ds, warm_start=warm)
            inc_best = min(inc_best, time.perf_counter() - t0)

        ds_cold = base.copy()
        for answer in round_answers(ds_cold):
            ds_cold.add_answer(answer)
        if grow:
            for record in growth_records(ds_cold):
                ds_cold.add_record(record)
        cold_best = float("inf")
        cold_result = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            cold_result = factory(False).fit(ds_cold)
            cold_best = min(cold_best, time.perf_counter() - t0)

        agree = sum(
            inc_result.truth(obj) == cold_result.truth(obj)
            for obj in ds_cold.objects
        ) / len(ds_cold.objects)
        return {
            "cold_seconds": cold_best,
            "incremental_seconds": inc_best,
            "speedup": cold_best / inc_best if inc_best > 0 else float("inf"),
            "frontier_objects": inc_result.frontier_size,
            "truth_agreement": agree,
        }

    for name, factory in models.items():
        entry = timed_round(factory, grow=False)
        entry["slot_growth"] = timed_round(factory, grow=True)
        report["algorithms"][name] = entry
    merge_bench_artifact(incremental=report)
    return report


def test_frontier_stays_partial_and_truths_agree(
    incremental_report, merge_bench_artifact
):
    """Deterministic half: both algorithms served both deltas — answers
    only AND the mixed slot-growth round — incrementally (frontier strictly
    smaller than the dataset) and the incremental result names the same
    truths as the cold fit; the artifact section exists."""
    for name, algo in incremental_report["algorithms"].items():
        for label, stats in ((name, algo), (f"{name}+growth", algo["slot_growth"])):
            assert stats["frontier_objects"] is not None, (label, stats)
            assert 0 < stats["frontier_objects"] < N_OBJECTS, (label, stats)
            assert stats["truth_agreement"] >= 0.999, (label, stats)
    assert "incremental" in json.loads(merge_bench_artifact.path.read_text())


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_incremental_speedup_threshold(incremental_report):
    """Timing half: warm-started frontier re-convergence of a ~50-answer
    round beats the cold columnar fit by >= 5x on the TDH model."""
    algo = incremental_report["algorithms"]["TDH"]
    assert algo["speedup"] >= MIN_INCREMENTAL_SPEEDUP, incremental_report


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_slot_growth_speedup_threshold(incremental_report):
    """Timing half of the fixed cliff: the 50-answer + 10-record round —
    which used to force a cold refit — still beats the cold columnar fit by
    >= 3x on the TDH model now that slot growth rides the frontier."""
    growth = incremental_report["algorithms"]["TDH"]["slot_growth"]
    assert growth["speedup"] >= MIN_GROWTH_SPEEDUP, incremental_report

"""Bench: Table 5 — multi-truth precision/recall/F1.

Shape: TDH has the best F1 among all algorithms on both datasets; DART is
recall-heavy with comparatively low precision.
"""

from repro.experiments import table5_multitruth
from repro.experiments.common import format_table


def test_table5(benchmark):
    results = benchmark.pedantic(table5_multitruth.run, rounds=1, iterations=1)
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows,
                ["Kind", "Algorithm", "Precision", "Recall", "F1"],
                title=f"Table 5 ({ds_name})",
                float_format="{:.3f}",
            )
        )
        by_algo = {r["Algorithm"]: r for r in rows}
        best_f1 = max(r["F1"] for r in rows)
        assert by_algo["TDH"]["F1"] >= best_f1 - 0.01, ds_name
        # DART trades precision for recall relative to LTM.
        assert by_algo["DART"]["Recall"] >= by_algo["LTM"]["Recall"] - 0.02

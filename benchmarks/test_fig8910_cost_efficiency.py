"""Bench: Figures 8/9/10 — cost efficiency of the headline combos.

TDH+EAI must lead on Accuracy and finish with the lowest AvgDistance, and its
cost saving vs the best competitor must be positive.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig8_cost
from repro.experiments.common import format_series


def test_fig8910(benchmark):
    results = benchmark.pedantic(fig8_cost.run, rounds=1, iterations=1)
    for ds_name, data in results.items():
        rounds = data["rounds"]
        print()
        print(
            format_series(
                data["accuracy"], rounds, title=f"Figure 8 — Accuracy ({ds_name})"
            )
        )
        print(
            f"cost saving vs {data['cost_saving_vs']}: {100 * data['cost_saving']:.0f}%"
        )
        # The paper's claim is trajectory dominance ("highest accuracy for
        # every round"), so compare the round-averaged curves — final-round
        # values are all near the ceiling at bench scale and pure noise.
        mean_acc = {c: sum(s) / len(s) for c, s in data["accuracy"].items()}
        assert mean_acc["TDH+EAI"] >= max(mean_acc.values()) - 0.01
        mean_dist = {c: sum(s) / len(s) for c, s in data["avg_distance"].items()}
        assert mean_dist["TDH+EAI"] <= min(mean_dist.values()) + 0.05
        assert data["cost_saving"] >= 0.0

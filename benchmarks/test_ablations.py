"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation quantifies one modelling decision of TDH / EAI:

* three-way trustworthiness (exact/generalized/wrong) vs hierarchy-blind;
* worker popularity terms Pop2/Pop3 vs uniform;
* UEAI pruning vs brute force (identical output, fewer evaluations);
* incremental one-step EM vs re-running full EM for the conditional
  confidences (approximation quality);
* the Eq. (2)/(4) collapse for objects outside OH vs raw Eq. (1) (phi2
  underestimation, Section 3.1).
"""

import numpy as np

from repro import Answer, EAIAssigner, TDHModel, make_birthplaces
from repro.crowd import make_worker_pool
from repro.eval import evaluate


def _dataset():
    return make_birthplaces(size=300, seed=7)


def test_ablation_hierarchy_modeling(benchmark):
    """Three-interpretation model vs hierarchy-blind TDH (the paper's core)."""
    dataset = _dataset()

    def run():
        full = TDHModel(max_iter=25, tol=1e-4).fit(dataset)
        blind = TDHModel(max_iter=25, tol=1e-4, use_hierarchy=False).fit(dataset)
        return (
            evaluate(dataset, full.truths()),
            evaluate(dataset, blind.truths()),
        )

    full_report, blind_report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nhierarchy-aware: acc={full_report.accuracy:.4f} "
        f"dist={full_report.avg_distance:.4f}"
    )
    print(
        f"hierarchy-blind: acc={blind_report.accuracy:.4f} "
        f"dist={blind_report.avg_distance:.4f}"
    )
    assert full_report.accuracy >= blind_report.accuracy
    assert full_report.avg_distance <= blind_report.avg_distance + 0.05


def test_ablation_popularity_terms(benchmark):
    """Pop2/Pop3 worker terms vs uniform — with misinformation-following
    workers, popularity modelling must not hurt."""
    from repro.crowd import CrowdSimulator, SimulatedWorker

    dataset = _dataset()
    workers = make_worker_pool(8, pi_p=0.7, seed=3)

    def run(use_popularity: bool):
        sim = CrowdSimulator(
            dataset,
            TDHModel(max_iter=20, tol=1e-4, use_popularity=use_popularity),
            EAIAssigner(),
            workers,
            seed=5,
        )
        return sim.run(rounds=5, tasks_per_worker=5).final.accuracy

    def both():
        return run(True), run(False)

    with_pop, without_pop = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nwith Pop2/Pop3: {with_pop:.4f}   uniform: {without_pop:.4f}")
    assert with_pop >= without_pop - 0.03


def test_ablation_ueai_pruning(benchmark):
    """Lemma 4.1 pruning: identical assignments, strictly fewer evaluations."""
    dataset = _dataset()
    result = TDHModel(max_iter=20, tol=1e-4).fit(dataset)
    worker_ids = [w.worker_id for w in make_worker_pool(10, seed=3)]

    pruned = EAIAssigner(use_pruning=True)
    brute = EAIAssigner(use_pruning=False)

    def run():
        a1 = pruned.assign(dataset, result, worker_ids, 5)
        a2 = brute.assign(dataset, result, worker_ids, 5)
        return a1, a2

    a1, a2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nEAI evaluations: {pruned.eai_evaluations} (pruned) vs "
        f"{brute.eai_evaluations} (brute force)"
    )
    assert a1 == a2
    assert pruned.eai_evaluations < brute.eai_evaluations


def test_ablation_incremental_vs_full_em(benchmark):
    """The one-step incremental EM (Eq. 18) must approximate the confidences a
    full EM re-run produces after actually adding the answer."""
    dataset = _dataset()
    model = TDHModel(max_iter=25, tol=1e-4)
    result = model.fit(dataset)
    assigner = EAIAssigner()
    psi = np.array([0.7, 0.2, 0.1])

    objects = [o for o in dataset.objects if len(dataset.candidates(o)) >= 2][:15]

    def run():
        errors = []
        for obj in objects:
            answer_pos = int(np.argmax(result.confidences[obj]))
            answer_value = dataset.candidates(obj)[answer_pos]
            incremental = assigner.conditional_confidence(
                result, obj, psi, answer_pos
            )
            clone = dataset.copy()
            clone.add_answer(Answer(obj, "probe-worker", answer_value))
            refit = model.fit(clone)
            errors.append(
                float(np.max(np.abs(incremental - refit.confidences[obj])))
            )
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_error = float(np.mean(errors))
    print(f"\nmean |incremental - full EM| = {mean_error:.4f}")
    # The incremental step is an approximation; it must stay close.
    assert mean_error < 0.25


def test_ablation_flat_object_collapse(benchmark):
    """Eq. (2)/(4) special-casing: without it, phi2 of generalizing sources is
    underestimated because flat objects can never exhibit case 2."""
    from repro.eval import source_accuracy

    dataset = _dataset()

    def run():
        with_collapse = TDHModel(max_iter=25, tol=1e-4).fit(dataset)
        without = TDHModel(
            max_iter=25, tol=1e-4, collapse_flat_objects=False
        ).fit(dataset)
        return with_collapse, without

    with_collapse, without = benchmark.pedantic(run, rounds=1, iterations=1)
    # The paper's Section 3.1 claim is directional: without the collapse,
    # flat objects can never produce case-2 evidence, so phi2 shrinks for
    # every source — drastically for the heavy generalizers.
    for source in dataset.sources:
        stats = source_accuracy(dataset, source)
        phi2_with = with_collapse.source_trustworthiness(source)[1]
        phi2_without = without.source_trustworthiness(source)[1]
        print(
            f"{source}: tendency={stats['gen_accuracy'] - stats['accuracy']:.3f}"
            f" phi2_with={phi2_with:.3f} phi2_without={phi2_without:.3f}"
        )
        assert phi2_without <= phi2_with + 1e-9, source
    # Heavy generalizers (profiles 3/5/7, generator phi2 >= 0.24) lose most
    # of their estimated tendency without the special case.
    for source in ("source_3", "source_5", "source_7"):
        phi2_with = with_collapse.source_trustworthiness(source)[1]
        phi2_without = without.source_trustworthiness(source)[1]
        assert phi2_without < 0.6 * phi2_with, source

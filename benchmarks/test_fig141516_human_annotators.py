"""Bench: Figures 14/15/16 — crowdsourcing with the simulated human panel.

TDH+EAI leads on Accuracy by the final round, and (the paper's GenAccuracy
observation) even where other combos start higher on GenAccuracy, TDH+EAI
overtakes within a few rounds.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig14_human
from repro.experiments.common import format_series


def test_fig141516(benchmark):
    results = benchmark.pedantic(
        fig14_human.run, kwargs={"rounds": 8}, rounds=1, iterations=1
    )
    for ds_name, data in results.items():
        rounds = data["rounds"]
        print()
        print(
            format_series(
                data["accuracy"], rounds, title=f"Figure 14 — Accuracy ({ds_name})"
            )
        )
        finals = {combo: series[-1] for combo, series in data["accuracy"].items()}
        assert finals["TDH+EAI"] >= max(finals.values()) - 0.02, ds_name
        gen_finals = {c: s[-1] for c, s in data["gen_accuracy"].items()}
        assert gen_finals["TDH+EAI"] >= max(gen_finals.values()) - 0.03, ds_name

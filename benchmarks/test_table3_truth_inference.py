"""Bench: Table 3 — truth inference without crowdsourcing.

Regenerates the Accuracy / GenAccuracy / AvgDistance rows for all ten
algorithms and checks the paper's shape: TDH wins Accuracy and AvgDistance on
both datasets.
"""

from repro.experiments import table3_inference
from repro.experiments.common import format_table


def test_table3(benchmark):
    results = benchmark.pedantic(table3_inference.run, rounds=1, iterations=1)
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows,
                ["Algorithm", "Accuracy", "GenAccuracy", "AvgDistance"],
                title=f"Table 3 ({ds_name})",
            )
        )
        by_algo = {r["Algorithm"]: r for r in rows}
        best_accuracy = max(r["Accuracy"] for r in rows)
        assert by_algo["TDH"]["Accuracy"] == best_accuracy, ds_name
        best_distance = min(r["AvgDistance"] for r in rows)
        assert by_algo["TDH"]["AvgDistance"] == best_distance, ds_name
        # VOTE is competitive on GenAccuracy (generalized claims are common).
        gen_rank = sorted((r["GenAccuracy"] for r in rows), reverse=True)
        assert by_algo["VOTE"]["GenAccuracy"] >= gen_rank[len(gen_rank) // 2]

"""Head-to-head micro-benchmark: reference vs columnar execution engines.

Runs every dual-engine algorithm — majority vote, Dawid-Skene, ZenCrowd,
CRH, and (since the full columnar port) TDH, LFC, ACCU, POPACCU, LCA, DOCS
and ASUMS — over a synthetic BirthPlaces-style dataset with >= 5,000 objects
through both engines, checks parity (identical argmax truths, confidences
within 1e-8) and records wall times into ``BENCH_columnar.json`` at the repo
root — the artifact the CI benchmark job uploads.

Parity and artifact generation run in the default suite (deterministic); the
wall-clock speedup thresholds live in a ``slow``-marked test so a loaded CI
runner can only fail the non-blocking benchmark job (which passes
``--runslow``), never the blocking test matrix.

The columnar encoding is built once per dataset and cached
(``dataset.columnar()``); its one-off cost is reported separately as
``encode_seconds`` rather than charged to each algorithm, matching how the
crowdsourcing loop amortises it across rounds and algorithms.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datasets import make_birthplaces
from repro.inference import (
    Accu,
    Asums,
    Crh,
    DawidSkene,
    Docs,
    GuessLca,
    Lfc,
    PopAccu,
    TDHModel,
    Vote,
    ZenCrowd,
)

N_OBJECTS = 5000

ALGORITHMS = {
    "VOTE": lambda engine: Vote(use_columnar=engine),
    "DS": lambda engine: DawidSkene(max_iter=8, use_columnar=engine),
    "ZENCROWD": lambda engine: ZenCrowd(max_iter=8, use_columnar=engine),
    "CRH": lambda engine: Crh(max_iter=15, use_columnar=engine),
    "TDH": lambda engine: TDHModel(max_iter=6, use_columnar=engine),
    "LFC": lambda engine: Lfc(max_iter=6, use_columnar=engine),
    "ACCU": lambda engine: Accu(max_iter=5, use_columnar=engine),
    "POPACCU": lambda engine: PopAccu(max_iter=5, use_columnar=engine),
    "LCA": lambda engine: GuessLca(max_iter=8, use_columnar=engine),
    "DOCS": lambda engine: Docs(max_iter=8, use_columnar=engine),
    "ASUMS": lambda engine: Asums(max_iter=8, use_columnar=engine),
}

# The acceptance bars apply to the algorithms the issues name (VOTE and
# Dawid-Skene from the first columnar PR, TDH from the full port); the rest
# are recorded for the artifact but only sanity-checked (>= 1x).
MIN_SPEEDUP = {
    "VOTE": 5.0,
    "DS": 5.0,
    "ZENCROWD": 1.0,
    "CRH": 1.0,
    "TDH": 10.0,
    "LFC": 1.0,
    "ACCU": 1.0,
    "POPACCU": 1.0,
    "LCA": 1.0,
    "DOCS": 1.0,
    "ASUMS": 1.0,
}


def _time_fit(algorithm, dataset, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = algorithm.fit(dataset)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def bench_report(merge_bench_artifact):
    """Run the head-to-head once per session and write the artifact."""
    dataset = make_birthplaces(size=N_OBJECTS, seed=7)
    t0 = time.perf_counter()
    col = dataset.columnar()  # build + cache the encoding ...
    col.pairs  # ... the claim x candidate expansion ...
    col.hierarchy  # ... and the CSR hierarchy view (TDH/ASUMS/DOCS)
    encode_seconds = time.perf_counter() - t0

    report = {
        "dataset": {
            "name": dataset.name,
            "objects": len(dataset.objects),
            "sources": len(dataset.sources),
            "records": dataset.num_records,
        },
        "encode_seconds": encode_seconds,
        "algorithms": {},
    }
    for name, factory in ALGORITHMS.items():
        repeats = 3 if name == "VOTE" else 1
        ref_seconds, ref = _time_fit(factory(False), dataset, repeats)
        col_seconds, col = _time_fit(factory(True), dataset, repeats)
        speedup = ref_seconds / col_seconds if col_seconds > 0 else float("inf")

        truths_equal = ref.truths() == col.truths()
        max_diff = max(
            float(np.max(np.abs(ref.confidences[obj] - col.confidences[obj])))
            for obj in dataset.objects
        )
        report["algorithms"][name] = {
            "reference_seconds": ref_seconds,
            "columnar_seconds": col_seconds,
            "speedup": speedup,
            "iterations": {"reference": ref.iterations, "columnar": col.iterations},
            "truths_equal": truths_equal,
            "max_confidence_diff": max_diff,
        }
    # Merge-write: benchmarks/test_columnar_appender.py owns the "appender"
    # and "crowd_loop" sections of the same artifact.
    merge_bench_artifact(**report)
    return report


def test_columnar_parity_at_scale(bench_report, merge_bench_artifact):
    """Deterministic half: both engines agree at the 5k-object scale, and the
    artifact is written. Safe for the blocking CI matrix."""
    failures = []
    for name, row in bench_report["algorithms"].items():
        if not row["truths_equal"]:
            failures.append(f"{name}: truths diverge between engines")
        if row["max_confidence_diff"] > 1e-8:
            failures.append(
                f"{name}: confidence diff {row['max_confidence_diff']:.2e} > 1e-8"
            )
        if row["iterations"]["reference"] != row["iterations"]["columnar"]:
            failures.append(f"{name}: EM iteration counts diverge")
    assert merge_bench_artifact.path.exists()
    assert not failures, "; ".join(failures)


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_columnar_speedup_thresholds(bench_report):
    """Timing half: >= 5x for VOTE and Dawid-Skene (>= 1x sanity floor for the
    rest). In practice the measured speedups are ~100x+."""
    failures = []
    for name, row in bench_report["algorithms"].items():
        if row["speedup"] < MIN_SPEEDUP[name]:
            failures.append(
                f"{name}: speedup {row['speedup']:.1f}x < {MIN_SPEEDUP[name]:.0f}x"
                f" (ref {row['reference_seconds']:.4f}s vs columnar"
                f" {row['columnar_seconds']:.4f}s)"
            )
    assert not failures, "; ".join(failures)

"""Bench: Figure 12 — execution time per crowdsourcing round.

Absolute seconds are machine-dependent; the reproduced shape is the ordering:
VOTE+ME is the fastest combo and the task-assignment step stays cheap
relative to inference for TDH+EAI.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig12_runtime
from repro.experiments.common import format_table


def test_fig12(benchmark):
    results = benchmark.pedantic(
        fig12_runtime.run, kwargs={"rounds": 3}, rounds=1, iterations=1
    )
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows,
                ["Combo", "Inference(s)", "Assignment(s)", "Total(s)"],
                title=f"Figure 12 ({ds_name})",
            )
        )
        by_combo = {r["Combo"]: r for r in rows}
        fastest = min(rows, key=lambda r: r["Total(s)"])
        assert by_combo["VOTE+ME"]["Total(s)"] <= fastest["Total(s)"] * 3.0
        tdh = by_combo["TDH+EAI"]
        # EAI assignment is cheap relative to a full EM inference pass.
        assert tdh["Assignment(s)"] <= tdh["Inference(s)"] * 2.0 + 0.05

"""Sharded-executor benchmark: TDH E/M wall time vs shard count.

Writes the ``sharding`` section of ``BENCH_columnar.json``: per dataset
size (5k / 20k objects), the TDH columnar fit time at K ∈ {1, 2, 4} shards
under the thread backend plus K=4 under the process pool, with the
machine's ``cpu_count`` recorded alongside — parallel speedup is a
property of the machine, so the artifact keeps the context needed to read
the numbers (a 1-core CI runner legitimately reports ~1x).

The *correctness* half — sharded truths and confidences bitwise-equal to
the K=1 columnar path — runs in the default suite. The wall-clock
threshold (K=4 at 20k objects >= 2x over K=1) lives in a ``slow``-marked
test and is additionally skipped below 4 cores, following the repo's
convention that timing bars only run in the non-blocking CI bench job.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.datasets import make_birthplaces
from repro.inference import TDHModel

SIZES = (5000, 20000)
SHARD_COUNTS = (1, 2, 4)
MAX_ITER = 8
MIN_SHARDED_SPEEDUP = 2.0


def _fit(dataset, k: int, backend: str = "thread"):
    model = TDHModel(
        max_iter=MAX_ITER,
        tol=0.0,  # run every iteration: stable work per configuration
        use_columnar=True,
        n_jobs=k,
        parallel_backend=backend,
    )
    t0 = time.perf_counter()
    result = model.fit(dataset)
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def sharding_report(merge_bench_artifact):
    report = {
        "cpu_count": os.cpu_count(),
        "algorithm": "TDH",
        "max_iter": MAX_ITER,
        "datasets": {},
    }
    results_equal = True
    for size in SIZES:
        dataset = make_birthplaces(size=size, seed=7)
        col = dataset.columnar()
        col.pairs  # prime encoding + expansion outside the timed region
        _fit(dataset, 1)  # warm-up (allocator, caches)

        base, base_seconds = _fit(dataset, 1)
        entry = {
            "objects": size,
            "claims": col.n_claims,
            "thread_seconds": {"1": base_seconds},
            "thread_speedup": {},
        }
        for k in SHARD_COUNTS[1:]:
            sharded, seconds = _fit(dataset, k)
            entry["thread_seconds"][str(k)] = seconds
            entry["thread_speedup"][str(k)] = base_seconds / seconds if seconds else 0.0
            results_equal = results_equal and sharded.truths() == base.truths() and all(
                np.array_equal(sharded.confidences[obj], base.confidences[obj])
                for obj in dataset.objects
            )
        proc, proc_seconds = _fit(dataset, 4, backend="process")
        entry["process_seconds"] = {"4": proc_seconds}
        entry["process_speedup"] = {
            "4": base_seconds / proc_seconds if proc_seconds else 0.0
        }
        results_equal = results_equal and proc.truths() == base.truths()
        report["datasets"][str(size)] = entry
    report["results_equal"] = results_equal
    merge_bench_artifact(sharding=report)
    return report


def test_sharded_results_bitwise_equal_at_scale(sharding_report):
    """Deterministic half: every timed configuration produced bitwise-equal
    truths and confidences, and the artifact section landed."""
    assert sharding_report["results_equal"]
    assert "20000" in sharding_report["datasets"]


@pytest.mark.slow  # wall-clock assertion: only the non-blocking CI bench job
def test_sharded_speedup_threshold(sharding_report):
    """Timing half: K=4 on 20k objects beats K=1 by >= 2x — a statement
    about parallel hardware, so it is skipped where the machine cannot
    physically exhibit it."""
    if (sharding_report["cpu_count"] or 1) < 4:
        pytest.skip(
            f"{sharding_report['cpu_count']} core(s): a 4-shard wall-clock"
            " speedup is not physically measurable on this machine"
        )
    speedup = sharding_report["datasets"]["20000"]["thread_speedup"]["4"]
    assert speedup >= MIN_SHARDED_SPEEDUP, sharding_report

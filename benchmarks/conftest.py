"""Benchmark configuration: a moderate scale so the whole harness finishes in
minutes while preserving every comparison's shape. Pass --full-scale through
the REPRO_BENCH_FULL=1 environment variable to use the paper's sizes."""

import os

import pytest

import repro.experiments.common as common

# Budget-to-object ratios follow the paper (see common.FAST): scarce on
# BirthPlaces, plentiful on Heritages.
BENCH = common.ExperimentScale(
    birthplaces_size=900,
    heritages_size=130,
    heritages_sources=300,
    rounds=8,
    workers=10,
    tasks_per_worker=5,
    em_iterations=20,
)


@pytest.fixture(autouse=True)
def bench_scale(monkeypatch):
    if os.environ.get("REPRO_BENCH_FULL") != "1":
        monkeypatch.setattr(common, "FAST", BENCH)
    yield

"""Benchmark configuration: a moderate scale so the whole harness finishes in
minutes while preserving every comparison's shape. Pass --full-scale through
the REPRO_BENCH_FULL=1 environment variable to use the paper's sizes."""

import json
import os
from pathlib import Path

import pytest

import repro.experiments.common as common

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"


@pytest.fixture(scope="session")
def merge_bench_artifact():
    """Read-modify-write top-level sections of ``BENCH_columnar.json``.

    The speedup and appender benchmarks each own different keys of the same
    artifact; merging through one helper keeps them from clobbering each
    other regardless of execution order.
    """

    def merge(**sections) -> None:
        data = {}
        if ARTIFACT.exists():
            try:
                data = json.loads(ARTIFACT.read_text())
            except ValueError:
                data = {}
        data.update(sections)
        ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")

    merge.path = ARTIFACT
    return merge

# Budget-to-object ratios follow the paper (see common.FAST): scarce on
# BirthPlaces, plentiful on Heritages.
BENCH = common.ExperimentScale(
    birthplaces_size=900,
    heritages_size=130,
    heritages_sources=300,
    rounds=8,
    workers=10,
    tasks_per_worker=5,
    em_iterations=20,
)


@pytest.fixture(autouse=True)
def bench_scale(monkeypatch):
    if os.environ.get("REPRO_BENCH_FULL") != "1":
        monkeypatch.setattr(common, "FAST", BENCH)
    yield

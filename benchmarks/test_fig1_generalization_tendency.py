"""Bench: Figure 1 — generalization tendencies of the sources.

The scatter's defining property: a substantial share of sources sits above
the accuracy diagonal (their generalized accuracy exceeds exact accuracy),
and the gap differs per source — the behaviour TDH's phi2 models.
"""

from repro.experiments import fig1_tendency
from repro.experiments.common import format_table


def test_fig1(benchmark):
    results = benchmark.pedantic(fig1_tendency.run, rounds=1, iterations=1)
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows[:10],
                ["Source", "Claims", "Accuracy", "GenAccuracy", "Tendency"],
                title=f"Figure 1 ({ds_name}, top 10 by claims)",
            )
        )
        tendencies = [r["Tendency"] for r in rows]
        assert max(tendencies) > 0.05, f"no generalizers in {ds_name}"
        # Tendencies differ across sources (not a single global offset).
        assert max(tendencies) - min(tendencies) > 0.05
        # GenAccuracy dominates Accuracy by construction of the measures.
        assert all(r["GenAccuracy"] >= r["Accuracy"] - 1e-12 for r in rows)

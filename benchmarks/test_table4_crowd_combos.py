"""Bench: Table 4 — accuracy of every inference x assignment combo after the
final crowdsourcing round. TDH+EAI must be the best cell overall."""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import table4_combos
from repro.experiments.common import format_table


def test_table4(benchmark):
    results = benchmark.pedantic(table4_combos.run, rounds=1, iterations=1)
    for ds_name, rows in results.items():
        print()
        print(
            format_table(
                rows,
                ["Algorithm", *table4_combos.ASSIGNER_COLUMNS],
                title=f"Table 4 ({ds_name})",
            )
        )
        cells = {
            (row["Algorithm"], col): row[col]
            for row in rows
            for col in table4_combos.ASSIGNER_COLUMNS
            if isinstance(row[col], float)
        }
        best_combo = max(cells, key=cells.get)
        tdh_eai = cells[("TDH", "EAI")]
        # BirthPlaces is the scarce-budget regime where assignment decides
        # the outcome — TDH+EAI must effectively top the table. Heritages'
        # small bench instance saturates (3+ answers per object) and every
        # competent combo lands within a couple of objects of perfect, so
        # the tolerance is a few objects wide (see EXPERIMENTS.md).
        tolerance = 0.015 if ds_name == "BirthPlaces" else 0.03
        assert tdh_eai >= cells[best_combo] - tolerance, (
            f"TDH+EAI ({tdh_eai:.4f}) should be at or near the top on"
            f" {ds_name}; best was {best_combo} ({cells[best_combo]:.4f})"
        )
        # Inference quality shows through the shared ME column: TDH must sit
        # in its top half (the paper has it first by a whisker; at bench
        # scale the ME policy's noise can reorder the leaders).
        me_cells = sorted(
            (cells[(a, "ME")] for a, c in cells if c == "ME"), reverse=True
        )
        assert cells[("TDH", "ME")] >= me_cells[len(me_cells) // 2]

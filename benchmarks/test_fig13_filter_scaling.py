"""Bench: Figure 13 — UEAI filtering at increasing scale factors.

The pruned assigner must produce identical assignments (checked inside the
experiment), evaluate far fewer EAI scores, and save more as scale grows.
"""

from repro.experiments import fig13_scaling
from repro.experiments.common import format_table

COLUMNS = [
    "Scale", "Objects", "with filtering(s)", "w/o filtering(s)",
    "EAI evals (filtered)", "EAI evals (all)", "time saved",
]


def test_fig13(benchmark):
    results = benchmark.pedantic(
        fig13_scaling.run, kwargs={"factors": (1, 2, 4)}, rounds=1, iterations=1
    )
    for ds_name, rows in results.items():
        print()
        print(format_table(rows, COLUMNS, title=f"Figure 13 ({ds_name})"))
        for row in rows:
            assert row["EAI evals (filtered)"] <= row["EAI evals (all)"]
    # BirthPlaces (many claims per object, sharp confidences) is where the
    # bound bites hardest — the paper reports 78% time saved there at 15x.
    # Heritages prunes less at bench scale (few claims -> loose bounds), so
    # only the strict check applies to BirthPlaces.
    last = results["BirthPlaces"][-1]
    ratio = last["EAI evals (filtered)"] / max(last["EAI evals (all)"], 1)
    assert ratio < 0.8, f"filter only removed {100 * (1 - ratio):.0f}% of evals"

"""Bench: Figure 5 — source reliability estimation, TDH vs ASUMS.

The paper's claim: TDH's phi_{s,1} tracks the true per-source accuracy while
ASUMS's single trust score t(s) underestimates sources that generalize.
"""

from repro.experiments import fig5_reliability
from repro.experiments.common import format_table


def test_fig5(benchmark):
    rows = benchmark.pedantic(fig5_reliability.run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["Source", "Claims", "Accuracy", "GenAccuracy", "phi_s1", "phi_s2", "t(s)"],
            title="Figure 5 (BirthPlaces)",
        )
    )
    assert len(rows) == 7
    tdh_err = sum(abs(r["phi_s1"] - r["Accuracy"]) for r in rows) / len(rows)
    asums_err = sum(abs(r["t(s)"] - r["Accuracy"]) for r in rows) / len(rows)
    print(f"\nmean reliability error: TDH {tdh_err:.4f} vs ASUMS {asums_err:.4f}")
    assert tdh_err < asums_err, "TDH should track actual accuracy better"
    # Generalizing sources (profiles 3/4/7) must show phi2 mass.
    by_name = {r["Source"]: r for r in rows}
    assert by_name["source_7"]["phi_s2"] > 0.15

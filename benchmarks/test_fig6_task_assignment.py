"""Bench: Figure 6 — task assignment comparison (TDH + {EAI, QASCA, ME}).

Accuracy vs round; all curves start at the same no-crowdsourcing point and
EAI must finish at least as high as the uncertainty-sampling baseline ME.
"""

import pytest

pytestmark = pytest.mark.slow  # multi-round crowd-loop EM benchmark

from repro.experiments import fig6_assignment
from repro.experiments.common import format_series


def test_fig6(benchmark):
    results = benchmark.pedantic(fig6_assignment.run, rounds=1, iterations=1)
    for ds_name, data in results.items():
        rounds = data.pop("rounds")
        print()
        print(format_series(data, rounds, title=f"Figure 6 ({ds_name})"))
        start = {combo: series[0] for combo, series in data.items()}
        # Same inference, same data: identical round-0 accuracy.
        assert len(set(start.values())) == 1
        # All curves are (weakly) increasing overall.
        for combo, series in data.items():
            assert series[-1] >= series[0] - 0.02, combo
        assert data["TDH+EAI"][-1] >= data["TDH+ME"][-1] - 0.01

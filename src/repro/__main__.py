"""Command-line truth discovery: ``python -m repro``.

Runs an inference algorithm over claim CSVs in the paper's published format
and writes the inferred truths (and optionally per-source trustworthiness):

    python -m repro --records records.csv --hierarchy hierarchy.csv \\
        --output truths.csv [--answers answers.csv] [--gold gold.csv] \\
        [--algorithm TDH] [--trust trust.csv]

With ``--gold`` the three quality measures are printed after inference.

``python -m repro serve [...]`` instead runs the always-on truth-service
demo (``repro.serving.demo``): concurrent writers and lock-free readers over
a background incremental-EM worker. See ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Optional

from .eval import evaluate
from .inference import (
    Accu,
    Asums,
    Crh,
    Docs,
    GuessLca,
    Lfc,
    Mdc,
    PopAccu,
    TDHModel,
    TDHResult,
    Vote,
)
from .io import load_dataset_csv, write_truths_csv

ALGORITHMS = {
    "TDH": TDHModel,
    "VOTE": Vote,
    "LCA": GuessLca,
    "DOCS": Docs,
    "ASUMS": Asums,
    "MDC": Mdc,
    "ACCU": Accu,
    "POPACCU": PopAccu,
    "LFC": Lfc,
    "CRH": Crh,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Hierarchical truth discovery over claim CSV files.",
    )
    parser.add_argument("--records", required=True, help="object,source,value CSV")
    parser.add_argument("--hierarchy", required=True, help="child,parent CSV")
    parser.add_argument("--answers", help="object,worker,value CSV (optional)")
    parser.add_argument("--gold", help="object,value CSV for evaluation (optional)")
    parser.add_argument("--root", help="root label if not inferable from the edges")
    parser.add_argument(
        "--algorithm",
        default="TDH",
        choices=sorted(ALGORITHMS),
        help="truth-inference algorithm (default: TDH)",
    )
    parser.add_argument("--output", required=True, help="where to write object,value truths")
    parser.add_argument(
        "--trust",
        help="optionally write per-source trustworthiness (TDH only) to this CSV",
    )
    parser.add_argument("--max-iter", type=int, default=100, help="EM iteration cap")
    return parser


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from .serving.demo import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    dataset = load_dataset_csv(
        args.records,
        args.hierarchy,
        answers=args.answers,
        gold=args.gold,
        root=args.root,
        name="cli",
    )
    algorithm_cls = ALGORITHMS[args.algorithm]
    try:
        algorithm = algorithm_cls(max_iter=args.max_iter)
    except TypeError:
        algorithm = algorithm_cls()
    result = algorithm.fit(dataset)
    truths = result.truths()
    write_truths_csv(truths, args.output)
    print(
        f"{args.algorithm}: inferred truths for {len(truths)} objects"
        f" -> {args.output}"
    )

    if args.trust:
        if not isinstance(result, TDHResult):
            print("--trust requires --algorithm TDH; skipping", file=sys.stderr)
        else:
            with open(args.trust, "w", encoding="utf-8", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(("source", "exact", "generalized", "wrong"))
                for source in dataset.sources:
                    phi = result.source_trustworthiness(source)
                    writer.writerow((source, f"{phi[0]:.6f}", f"{phi[1]:.6f}", f"{phi[2]:.6f}"))
            print(f"source trustworthiness -> {args.trust}")

    if dataset.gold:
        report = evaluate(dataset, truths)
        print(
            f"Accuracy={report.accuracy:.4f} GenAccuracy={report.gen_accuracy:.4f}"
            f" AvgDistance={report.avg_distance:.4f}"
            f" (n={report.num_objects})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

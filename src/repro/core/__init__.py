"""The paper's primary contribution, re-exported in one place.

``repro.core`` bundles the two algorithms the paper introduces — the TDH
hierarchical truth-inference model (Section 3) and the EAI task assigner
(Section 4) — plus the result type that couples them (EAI reuses TDH's EM
state). Baselines live in :mod:`repro.inference` and
:mod:`repro.assignment`; substrates in :mod:`repro.hierarchy`,
:mod:`repro.data`, :mod:`repro.datasets` and :mod:`repro.crowd`.
"""

from ..assignment.eai import EAIAssigner
from ..inference.tdh import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    TDHModel,
    TDHResult,
)
from .multi_attribute import MultiAttributeResult, MultiAttributeTruthDiscovery

__all__ = [
    "TDHModel",
    "TDHResult",
    "EAIAssigner",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "DEFAULT_GAMMA",
    "MultiAttributeTruthDiscovery",
    "MultiAttributeResult",
]

"""Multi-attribute truth discovery (the paper's Section 2.1 generalization).

The paper presents its algorithms for a single target attribute and notes
they "can be easily generalized to find the truths of multiple attributes".
This module provides that generalization: each attribute carries its own
hierarchy and claim set (a :class:`~repro.data.model.TruthDiscoveryDataset`),
inference runs per attribute, and the combined result answers truth queries
as ``(object, attribute) -> value``.

Crowdsourcing across attributes reuses the per-attribute EAI scores: a
worker's budget is spent on the globally best (attribute, object) pairs.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..assignment.eai import EAIAssigner
from ..data.model import ObjectId, TruthDiscoveryDataset, WorkerId
from ..hierarchy.tree import Value
from ..inference.base import InferenceResult, TruthInferenceAlgorithm
from ..inference.tdh import TDHModel, TDHResult


class MultiAttributeResult:
    """Per-attribute inference results with combined accessors."""

    def __init__(self, results: Dict[str, InferenceResult]) -> None:
        self.results = results

    @property
    def attributes(self) -> list:
        return list(self.results)

    def truth(self, attribute: str, obj: ObjectId) -> Value:
        """Estimated truth of ``obj``'s ``attribute``."""
        return self.results[attribute].truth(obj)

    def truths(self) -> Dict[Tuple[str, ObjectId], Value]:
        """All truths keyed by ``(attribute, object)``."""
        out: Dict[Tuple[str, ObjectId], Value] = {}
        for attribute, result in self.results.items():
            for obj, value in result.truths().items():
                out[(attribute, obj)] = value
        return out

    def record(self, obj: ObjectId) -> Dict[str, Value]:
        """The fused record of one object across all attributes."""
        out: Dict[str, Value] = {}
        for attribute, result in self.results.items():
            if obj in result.confidences:
                out[attribute] = result.truth(obj)
        return out


class MultiAttributeTruthDiscovery:
    """Runs a truth-inference model independently per attribute.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh model per attribute
        (defaults to :class:`~repro.inference.tdh.TDHModel` with the paper's
        hyperparameters).
    """

    def __init__(
        self,
        model_factory: Callable[[], TruthInferenceAlgorithm] = TDHModel,
    ) -> None:
        self.model_factory = model_factory

    def fit(
        self, datasets: Mapping[str, TruthDiscoveryDataset]
    ) -> MultiAttributeResult:
        """Fit one model per attribute dataset."""
        if not datasets:
            raise ValueError("need at least one attribute dataset")
        results = {
            attribute: self.model_factory().fit(dataset)
            for attribute, dataset in datasets.items()
        }
        return MultiAttributeResult(results)

    def assign(
        self,
        datasets: Mapping[str, TruthDiscoveryDataset],
        result: MultiAttributeResult,
        workers: Sequence[WorkerId],
        k: int,
    ) -> Dict[WorkerId, list]:
        """Spend each worker's budget on the globally best EAI tasks.

        Requires TDH results (EAI reuses the EM state). Returns
        ``worker -> [(attribute, object), ...]`` with at most ``k`` tasks per
        worker and no (attribute, object) pair assigned twice.
        """
        assigner = EAIAssigner()
        scored: list = []
        for attribute, attr_result in result.results.items():
            if not isinstance(attr_result, TDHResult):
                raise TypeError("multi-attribute assignment requires TDH results")
            dataset = datasets[attribute]
            for worker in workers:
                psi = attr_result.worker_psi(worker, assigner.default_psi)
                answered = set(dataset.objects_of_worker(worker))
                for obj in attr_result.confidences:
                    if obj in answered:
                        continue
                    score = assigner.eai(attr_result, obj, psi)
                    scored.append((score, attribute, obj, worker))
        scored.sort(key=lambda t: -t[0])

        out: Dict[WorkerId, list] = {w: [] for w in workers}
        taken: set = set()
        for score, attribute, obj, worker in scored:
            if len(out[worker]) >= k or (attribute, obj) in taken:
                continue
            out[worker].append((attribute, obj))
            taken.add((attribute, obj))
        return out

"""Crash recovery: replay the journal, restart the service at the right epoch.

The recovery contract (the "Conditioning Probabilistic Databases" framing in
PAPERS.md): the truths a recovered service serves must be exactly those
conditioned on the **accepted durable evidence** — the journaled prefix —
never a torn suffix and never a half-applied batch. Concretely:

* :func:`scan_journal` verifies every frame (length + CRC + JSON); a torn
  or corrupt record is skipped and counted, and tail garbage is physically
  truncated before the journal is reopened for append;
* :func:`rebuild_dataset` reconstructs the base dataset from the journal's
  self-contained base record and pushes every journaled write through the
  *same validating mutators* the live worker used — a write rejected live
  is rejected identically on replay, so the rebuilt dataset equals the
  accepted prefix exactly;
* :func:`recover` restarts a :class:`~repro.serving.service.TruthService`
  over the rebuilt dataset with its first publish at
  ``last checkpoint epoch + 1`` and the dataset's version counters restored
  from the journal, so :class:`~repro.serving.snapshots.SnapshotStore`
  monotonicity (dense epochs, non-regressing versions) holds *across*
  process restarts, not just within one.

The recovered initial fit is a plain cold fit of the rebuilt dataset — the
property the recovery test suite pins bitwise against an out-of-band cold
fit of the same journaled prefix.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple, Union

from ..data.model import DatasetError, Record, TruthDiscoveryDataset
from ..hierarchy.tree import Hierarchy
from ..inference.base import TruthInferenceAlgorithm
from .faults import FaultInjector
from .journal import (
    JournalError,
    JournalScan,
    WriteAheadJournal,
    decode_claim,
    scan_journal,
    truncate_torn_tail,
)

if TYPE_CHECKING:  # imported lazily in recover(): the supervisor's rollback
    from .service import TruthService  # path reuses rebuild_dataset, and the
    from .supervisor import SupervisionPolicy  # service module imports it.


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery did, for logs/metrics/assertions.

    ``truncated_records``/``truncated_bytes`` count journal content lost to
    torn or corrupt frames (``tail_bytes_dropped`` of it physically cut from
    the file); ``writes_rejected`` counts journaled writes the validating
    mutators refused on replay — by construction the same writes the live
    worker refused. ``resume_epoch`` is the recovered service's first
    published epoch (last surviving checkpoint + 1, or 0 when the crash
    predated the first checkpoint).
    """

    path: str
    entries: int
    batches_replayed: int
    writes_replayed: int
    writes_rejected: int
    truncated_records: int
    truncated_bytes: int
    tail_bytes_dropped: int
    checkpoint_epoch: Optional[int]
    resume_epoch: int
    dataset_version: int
    records_version: int
    replay_seconds: float
    #: batches journaled as poison (``quarantine`` records) and excluded
    #: from the rebuilt dataset, plus the writes they carried.
    batches_quarantined: int = 0
    writes_quarantined: int = 0
    #: batch frames sharing an already-replayed sequence number (a retried
    #: append whose first frame actually survived) — applied once.
    duplicate_batches: int = 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def rebuild_dataset(
    source: Union[str, Path, JournalScan],
    *,
    skip_seqs: Iterable[int] = (),
) -> Tuple[TruthDiscoveryDataset, Dict[str, int]]:
    """Reconstruct the accepted-prefix dataset from a journal (or its scan).

    Returns ``(dataset, replay_stats)`` where ``replay_stats`` counts the
    batches/writes replayed and rejected plus the next batch sequence
    number. Raises :class:`JournalError` when no decodable base record
    survived (nothing can be conditioned on evidence that is gone).

    Batches named by journaled ``quarantine`` records — or by the caller's
    ``skip_seqs`` (the supervisor's rollback excludes the in-flight batch
    this way) — are skipped wholesale: a live service that quarantined a
    poison batch and a recovery of its journal condition on the same
    evidence. A batch frame whose sequence number was already replayed (a
    retried append whose "failed" first frame actually reached the file) is
    applied once and counted as a duplicate.
    """
    scan = source if isinstance(source, JournalScan) else scan_journal(source)
    base = scan.base
    if base is None:
        raise JournalError(
            f"journal {scan.path} has no decodable base record; cannot rebuild"
        )
    hierarchy = Hierarchy(root=base["root"])
    for child, parent in base["edges"]:
        hierarchy.add_edge(child, parent)
    # The base is a trusted dump (CRC-verified frame, written from a dataset
    # that validated every claim on ingestion), so it restores through the
    # bulk path: base cost stays O(data) with a small constant, and only the
    # *batches* below go through the validating mutators — they must reject
    # exactly as the live service did.
    dataset = TruthDiscoveryDataset.from_trusted_claims(
        hierarchy,
        base["records"],
        base["answers"],
        gold={o: v for o, v in base["gold"]},
        name=base.get("name", ""),
    )
    # Restore the journaled version counters: rebuilding via the constructor
    # replays only the *final* claim state, so the raw mutation count can
    # undershoot the original's (which may have seen overwrites during
    # ingestion). Pinning the counters to the journaled values makes every
    # later stamp — and therefore the checkpoint arithmetic — identical to
    # the pre-crash service's. Safe: no encoding/oplog exists yet.
    dataset._version = base["version"]
    dataset._records_version = base["records_version"]
    skip = {int(s) for s in skip_seqs}
    for entry in scan.entries[1:]:
        if entry.get("kind") == "quarantine" and isinstance(entry.get("seq"), int):
            skip.add(entry["seq"])
    batches = applied = rejected = 0
    quarantined_batches = quarantined_writes = duplicates = 0
    next_seq = 0
    replayed_seqs = set()
    for entry in scan.entries[1:]:
        if entry.get("kind") != "batch":
            continue
        seq = int(entry.get("seq", -1))
        next_seq = max(next_seq, seq + 1)
        if seq in skip:
            quarantined_batches += 1
            quarantined_writes += len(entry["writes"])
            continue
        if seq >= 0 and seq in replayed_seqs:
            duplicates += 1
            continue
        replayed_seqs.add(seq)
        batches += 1
        for item in entry["writes"]:
            claim = decode_claim(item)
            try:
                if isinstance(claim, Record):
                    dataset.add_record(claim)
                else:
                    dataset.add_answer(claim)
            except DatasetError:
                rejected += 1  # rejected live, rejected identically here
            else:
                applied += 1
    return dataset, {
        "batches": batches,
        "applied": applied,
        "rejected": rejected,
        "next_seq": next_seq,
        "quarantined_batches": quarantined_batches,
        "quarantined_writes": quarantined_writes,
        "duplicate_batches": duplicates,
    }


async def recover(
    path: Union[str, Path],
    model: Optional[TruthInferenceAlgorithm] = None,
    *,
    run_worker: bool = True,
    fsync: str = "checkpoint",
    faults: Optional[FaultInjector] = None,
    max_pending: int = 1024,
    batch_max: int = 256,
    batch_wait: float = 0.0,
    history: int = 8,
    off_loop_fits: bool = True,
    supervision: Optional["SupervisionPolicy"] = None,
    auto_compact_bytes: Optional[int] = None,
) -> Tuple["TruthService", RecoveryReport]:
    """Recover a crashed journaled service from disk and start it.

    Scans ``path`` (truncating any torn tail), rebuilds the accepted-prefix
    dataset, reopens the journal for append, and starts a fresh
    :class:`TruthService` whose first publish lands at the journaled
    checkpoint epoch + 1. ``model`` defaults to the service default
    (incremental columnar TDH); pass the same model configuration the
    crashed service ran for stamp-for-stamp continuity.

    Returns ``(service, report)`` with the service already started (reads
    work immediately; ``run_worker=False`` leaves the batch loop to manual
    ``service.worker.step()`` driving, as in the tests). Pass a
    :class:`~repro.serving.supervisor.SupervisionPolicy` as ``supervision``
    to recover straight into self-healing mode, and ``auto_compact_bytes``
    to bound the reopened journal's growth.
    """
    from .service import TruthService

    t0 = time.perf_counter()
    scan = scan_journal(path)
    tail_dropped = truncate_torn_tail(path, scan)
    dataset, replay = rebuild_dataset(scan)
    last_checkpoint = scan.last_checkpoint
    resume_epoch = (
        int(last_checkpoint["epoch"]) + 1 if last_checkpoint is not None else 0
    )
    replay_seconds = time.perf_counter() - t0
    journal = WriteAheadJournal(
        path, fsync=fsync, faults=faults, auto_compact_bytes=auto_compact_bytes
    )
    journal.batch_seq = replay["next_seq"]
    service = TruthService(
        dataset,
        model,
        max_pending=max_pending,
        batch_max=batch_max,
        batch_wait=batch_wait,
        history=history,
        journal=journal,
        faults=faults,
        off_loop_fits=off_loop_fits,
        initial_epoch=resume_epoch,
        supervision=supervision,
    )
    await service.start(run_worker=run_worker)
    report = RecoveryReport(
        path=str(path),
        entries=len(scan.entries),
        batches_replayed=replay["batches"],
        writes_replayed=replay["applied"],
        writes_rejected=replay["rejected"],
        truncated_records=scan.truncated_records,
        truncated_bytes=scan.truncated_bytes,
        tail_bytes_dropped=tail_dropped,
        checkpoint_epoch=(
            int(last_checkpoint["epoch"]) if last_checkpoint is not None else None
        ),
        resume_epoch=resume_epoch,
        dataset_version=dataset.version,
        records_version=dataset.records_version,
        replay_seconds=replay_seconds,
        batches_quarantined=replay["quarantined_batches"],
        writes_quarantined=replay["quarantined_writes"],
        duplicate_batches=replay["duplicate_batches"],
    )
    return service, report

"""Supervision: the self-healing layer that owns the EM worker's lifecycle.

PRs 7–9 made the truth service durable but left its runtime **fail-stop**:
one exception in the batch loop kills the worker forever and every later
write gets ``ServiceClosed`` — recovery from the journal, in a new process,
is the only way back. This module replaces that policy with *containment*,
the transactional process-lifecycle discipline DB-nets formalise for
data-aware processes: a failure is rolled back, retried, and — when it keeps
happening — isolated, while the rest of the service keeps running.

One :class:`Supervisor` wraps one :class:`~repro.serving.worker.EMWorker`
and, per crash of the batch loop:

1. **rolls the dataset back** to the last *published* state. The published
   snapshot is the transaction boundary — readers saw it, tickets resolved
   against it — so it is the only state worth restoring. Journal-backed
   services rebuild it by replaying the journal minus the in-flight batch
   (and minus quarantined batches); journal-less services replay an
   in-memory ledger: a pinned base clone plus every claim accepted since.
   Either way the rebuilt stamps must equal the published ones exactly —
   that equality is asserted, not assumed;
2. **restarts the worker** with bounded exponential backoff plus seeded
   jitter (``backoff_base`` · 2ⁿ, capped at ``backoff_cap``); the
   consecutive-crash budget (``max_restarts``) resets on every committed
   publish, so only an *unbroken* run of failures can exhaust it;
3. **quarantines poison**: the crashed batch stays parked on the worker and
   is retried first, so the batch that triggered each crash is known by
   identity, not inference. A batch whose retries crash the worker
   ``quarantine_after`` consecutive times is quarantined — its tickets
   resolve with :class:`BatchQuarantined` (carrying the cause), a
   ``quarantine`` record is journaled so recovery replay excludes the same
   evidence deterministically, and the stream moves on. Epochs stay dense:
   a quarantine publishes nothing;
4. **repairs post-commit damage**: a crash *after* ``SnapshotStore.publish``
   (a failed checkpoint append, a failed compaction) must never retry the
   batch — it is already visible. Its tickets resolve with the committed
   epoch and the missing checkpoint marker is re-appended after the
   restart.

While the worker is down or restarting the service is **degraded, not
closed**: reads keep serving the last published snapshot (stamped
``degraded=True`` with ``time_in_degraded``), and writes queue within
``max_pending`` or are shed with a typed
:class:`~repro.serving.service.Overloaded` — the read path never raises
``ServiceClosed``. Only an exhausted restart budget (or an impossible
rollback) ends the supervisor, failing the parked and queued tickets and
closing the write side.

The **fit watchdog** rides on the same machinery: the worker raises
:class:`~repro.serving.worker.FitTimeout` when an off-loop fit outlives
``fit_timeout``, and the supervisor treats it exactly like any other crash —
restart, then quarantine of the batch whose fits keep hanging.

Everything here runs on the event loop inside the supervisor task (the
service's former worker task slot), so the single-mutator invariant is
untouched: rollback swaps the dataset only while the worker coroutine is
parked in this very call stack.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from ..data.model import Answer, Record, TruthDiscoveryDataset
from .recovery import rebuild_dataset
from .snapshots import PublishedResult
from .worker import PendingBatch

if TYPE_CHECKING:
    from .service import TruthService


class BatchQuarantined(RuntimeError):
    """The resolution of every ticket in a quarantined (poison) batch.

    ``seq`` is the batch's journal sequence number (``None`` when the batch
    never reached the journal — then no ``quarantine`` record is needed
    either, there is nothing on disk to skip); ``cause`` describes the crash
    that kept recurring.
    """

    def __init__(self, seq: Optional[int], cause: str) -> None:
        label = f"batch seq={seq}" if seq is not None else "unjournaled batch"
        super().__init__(
            f"{label} quarantined after repeated worker crashes ({cause})"
        )
        self.seq = seq
        self.cause = cause


@dataclass(frozen=True)
class SupervisionPolicy:
    """The healing knobs. Frozen so one policy can configure many services.

    ``max_restarts`` bounds *consecutive* crashes (the budget resets on
    every committed publish); ``backoff_base``/``backoff_cap`` shape the
    exponential restart delay, ``jitter`` adds a seeded random fraction on
    top (0.25 = up to +25%); ``quarantine_after`` is how many consecutive
    crashes one batch may cause before it is quarantined;``fit_timeout``
    arms the fit watchdog (``None`` = fits may run forever).
    """

    max_restarts: int = 8
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    quarantine_after: int = 3
    fit_timeout: Optional[float] = None
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.fit_timeout is not None and self.fit_timeout <= 0:
            raise ValueError("fit_timeout must be > 0 (or None to disable)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")


class Supervisor:
    """Crash containment around one service's EM worker (see module doc)."""

    def __init__(self, service: "TruthService", policy: SupervisionPolicy) -> None:
        self._service = service
        self._policy = policy
        self._worker = service.worker
        self._store = service._store
        self._queue = service._queue
        self._journal = service._journal
        self._metrics = service.metrics
        self._rng = random.Random(policy.seed)
        self._consecutive_crashes = 0
        self._repair_checkpoint_needed = False
        #: monotonic instant the current degraded period began (None =
        #: healthy); the read path stamps `degraded`/`time_in_degraded`
        #: off this single attribute.
        self.degraded_since: Optional[float] = None
        self.last_crash: Optional[BaseException] = None
        #: the journal-less rollback ledger (also the journal's fallback):
        #: a version-pinned clone of the last rebased state plus every
        #: claim committed since, in commit order.
        self._base_clone: Optional[TruthDiscoveryDataset] = None
        self._accepted: List[Union[Record, Answer]] = []
        self.rebase_ledger()
        self._worker.commit_listener = self._on_commit
        self._worker.compaction_listener = self._on_compaction

    # ------------------------------------------------------------------
    # the supervised loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """The supervisor task body: heal-aware steps until cancelled."""
        while True:
            await self.step()

    async def step(self) -> Optional[PublishedResult]:
        """One worker step plus crash containment.

        Returns the step's published snapshot (``None`` for an all-rejected
        batch *and* for a contained crash — the parked batch retries on the
        next call). Exposed so tests drive healing deterministically with
        ``start(run_worker=False)``.
        """
        try:
            result = await self._worker.step()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await self._handle_crash(exc)
            return None
        self._clear_degraded()
        return result

    async def _handle_crash(self, exc: BaseException) -> None:
        self.last_crash = exc
        if self.degraded_since is None:
            self.degraded_since = time.monotonic()
        self._consecutive_crashes += 1
        pending = self._worker.pending
        if pending is not None and pending.published_epoch is not None:
            # Post-commit crash (checkpoint append, compaction): the batch
            # is visible to readers — resolve with its epoch, never retry,
            # re-append the lost checkpoint once the worker is back.
            for write in pending.writes:
                if not write.ticket.done():
                    write.ticket.set_result(pending.published_epoch)
            self._worker._finalize_pending(pending)
            self._repair_checkpoint_needed = True
        else:
            self._rollback(pending)
            if (
                pending is not None
                and pending.crashes >= self._policy.quarantine_after
            ):
                self._quarantine(pending, exc)
        if self._consecutive_crashes > self._policy.max_restarts:
            # An unbroken run of failures exhausted the budget: fail the
            # parked batch and everything queued behind it, then die — the
            # service's write side closes, reads keep the last snapshot.
            self.abandon_pending(exc)
            raise exc
        await asyncio.sleep(self._backoff_delay())
        self._metrics.worker_restarts += 1
        self._repair_checkpoint()

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def _rollback(self, pending: Optional[PendingBatch]) -> None:
        """Restore the dataset to the last published (= committed) state."""
        dataset = self._worker.dataset
        latest = self._store.latest
        if latest is None:
            return  # crashed before the initial publish: nothing committed
        if (
            dataset.version == latest.dataset_version
            and dataset.records_version == latest.records_version
        ):
            return  # crash preceded any mutation — the cheap common case
        restored = self._rebuild_from_journal(pending, latest)
        if restored is None:
            restored = self._rebuild_from_ledger()
        if (
            restored.version != latest.dataset_version
            or restored.records_version != latest.records_version
        ):
            raise RuntimeError(
                "rollback reconstruction does not match the published state:"
                f" rebuilt v{restored.version}/r{restored.records_version} vs"
                f" published v{latest.dataset_version}/r{latest.records_version}"
            )
        self._service._adopt_dataset(restored)

    def _rebuild_from_journal(
        self, pending: Optional[PendingBatch], latest: PublishedResult
    ) -> Optional[TruthDiscoveryDataset]:
        journal = self._journal
        if journal is None or journal.closed:
            return None
        skip = [pending.seq] if pending is not None and pending.seq is not None else []
        try:
            restored, _stats = rebuild_dataset(journal.path, skip_seqs=skip)
        except Exception:
            return None  # unreadable mid-crash journal: the ledger decides
        if (
            restored.version != latest.dataset_version
            or restored.records_version != latest.records_version
        ):
            return None
        return restored

    def _rebuild_from_ledger(self) -> TruthDiscoveryDataset:
        base = self._base_clone
        restored = base.copy()
        # copy() only carries version counters alongside a current columnar
        # encoding; a ledger clone has none, so pin them explicitly — the
        # rollback contract is stamp equality with the published snapshot.
        restored._version = base.version
        restored._records_version = base.records_version
        for claim in self._accepted:
            if isinstance(claim, Record):
                restored.add_record(claim)
            else:
                restored.add_answer(claim)
        return restored

    def rebase_ledger(self) -> None:
        """Re-anchor the in-memory ledger at the worker's current dataset.

        Called at construction, after every compaction, and by
        ``TruthService.compact()`` — points where the current dataset is
        provably the fully published state.
        """
        dataset = self._worker.dataset
        clone = dataset.copy()
        clone._version = dataset.version
        clone._records_version = dataset.records_version
        self._base_clone = clone
        self._accepted = []

    # ------------------------------------------------------------------
    # quarantine & terminal teardown
    # ------------------------------------------------------------------
    def _quarantine(self, pending: PendingBatch, exc: BaseException) -> None:
        cause = f"{type(exc).__name__}: {exc}"
        seq: Optional[int] = pending.seq
        if self._journal is not None and not self._journal.closed:
            if seq is None:
                # The append "failed", but a crash after the frame was
                # written (an fsync fault, a torn prefix) can still have
                # left bytes on disk carrying the current — never bumped —
                # sequence number. Quarantine that speculative seq and burn
                # it so the next batch cannot collide with the skip record.
                seq = self._journal.batch_seq
            try:
                self._journal.append_quarantine(seq, cause)
                if not pending.journaled:
                    self._journal.batch_seq = max(self._journal.batch_seq, seq + 1)
            except Exception:
                # The decision stands even if recording it failed; replay
                # would re-accept the batch, which only matters if this
                # exact journal is later recovered — counted, not fatal.
                self._metrics.journal_failures += 1
        err = BatchQuarantined(seq, cause)
        for write in pending.writes:
            if not write.ticket.done():
                write.ticket.set_exception(err)
                write.ticket.exception()  # fire-and-forget writers stay quiet
        self._metrics.quarantines += 1
        self._metrics.quarantined_writes += len(pending.writes)
        self._worker._finalize_pending(pending)

    def abandon_pending(self, exc: BaseException) -> None:
        """Fail the parked batch and everything queued (terminal teardown).

        Every unresolved ticket gets ``exc`` and its deferred ``task_done``,
        so drain barriers release and no writer awaits forever.
        """
        pending = self._worker.pending
        if pending is not None:
            for write in pending.writes:
                if not write.ticket.done():
                    write.ticket.set_exception(exc)
                    write.ticket.exception()
            self._worker._finalize_pending(pending)
        while True:
            try:
                write = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if write.ticket is not None and not write.ticket.done():
                write.ticket.set_exception(exc)
                write.ticket.exception()
            self._queue.task_done()

    # ------------------------------------------------------------------
    # hooks & bookkeeping
    # ------------------------------------------------------------------
    def _on_commit(self, published: PublishedResult) -> None:
        # A committed publish is the proof of progress: the crash budget
        # resets, and the published batch's claims enter the ledger.
        self._consecutive_crashes = 0
        self._clear_degraded()
        pending = self._worker.pending
        if pending is not None and pending.applied_claims:
            self._accepted.extend(pending.applied_claims)

    def _on_compaction(self, info: Dict[str, int]) -> None:
        self.rebase_ledger()

    def _clear_degraded(self) -> None:
        if self.degraded_since is not None:
            self._metrics.degraded_seconds_total += (
                time.monotonic() - self.degraded_since
            )
            self.degraded_since = None

    def _backoff_delay(self) -> float:
        n = max(1, self._consecutive_crashes)
        delay = min(
            self._policy.backoff_cap, self._policy.backoff_base * (2.0 ** (n - 1))
        )
        return delay * (1.0 + self._policy.jitter * self._rng.random())

    def _repair_checkpoint(self) -> None:
        """Re-append the checkpoint a post-commit crash swallowed.

        Idempotent from recovery's point of view (a duplicate checkpoint
        with identical stamps is harmless — the last one wins); a repair
        that fails stays flagged and is retried after the next heal.
        """
        if not self._repair_checkpoint_needed:
            return
        self._repair_checkpoint_needed = False
        journal = self._journal
        latest = self._store.latest
        if journal is None or journal.closed or latest is None:
            return
        try:
            journal.append_checkpoint(
                epoch=latest.epoch,
                dataset_version=latest.dataset_version,
                records_version=latest.records_version,
                applied_writes=latest.applied_writes,
            )
        except Exception:
            self._metrics.journal_failures += 1
            self._repair_checkpoint_needed = True

    def stats(self) -> Dict[str, object]:
        """Plain-dict healing state for ``service.stats()``."""
        degraded = self.degraded_since is not None
        return {
            "consecutive_crashes": self._consecutive_crashes,
            "degraded": degraded,
            "time_in_degraded": (
                time.monotonic() - self.degraded_since if degraded else 0.0
            ),
            "pending_batch": self._worker.pending is not None,
            "ledger_claims": len(self._accepted),
            "last_crash": repr(self.last_crash) if self.last_crash else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Supervisor(crashes={self._consecutive_crashes},"
            f" degraded={self.degraded_since is not None},"
            f" policy={self._policy})"
        )

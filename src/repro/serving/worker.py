"""The background EM worker: journal, batch-apply, off-loop refit, publish.

One worker per service, one consumer: every mutation of the dataset happens
inside this single task, which is what makes the service deterministic under
a fixed write order and lets the reader side stay lock-free (readers only
ever touch immutable published snapshots). The *fit* itself, though, no
longer runs on the event loop: ``fit_and_publish`` ships it to a
single-thread executor (``loop.run_in_executor``), so a cold refit cannot
freeze reads or enqueues — the worker coroutine simply awaits the executor
future while the loop keeps scheduling readers and writers. No locking
changes: the worker is suspended for exactly as long as the fit thread owns
the dataset, so there is still only ever one mutator.

Per batch the worker does exactly five things:

1. drain a micro-batch off the write queue (first write awaited, the rest
   taken greedily up to ``batch_max``, with an optional ``batch_wait``
   linger so sparse writers still amortise one fit over several writes);
2. **journal the batch** (when a :class:`~repro.serving.journal.
   WriteAheadJournal` is attached) *before* applying anything — classic WAL
   order: a write that could ever become visible is durable first. A failed
   journal append rejects the whole batch onto its tickets and fail-stops
   the worker (durability is broken; recovery is the way back);
3. apply each write through the ordinary dataset mutators — an invalid
   write (:class:`~repro.data.model.DatasetError`) is rejected onto its
   ticket without poisoning the batch, and replay rejects it identically;
4. refit off-loop: ``fit(dataset, warm_start=previous_published)``. With an
   incremental-capable model this is the dirty-frontier path, and it now
   covers slot growth too: record appends (new objects, brand-new candidate
   values) are spliced into the frontier fit instead of degrading the seed,
   so mixed claim+answer traffic stays incremental. What still degrades to
   a cold fit — counted per structured reason
   (:class:`~repro.inference.base.WarmStartDegradation`), not surfaced —
   is a warm start the gate cannot trust at all: a cloned dataset or an
   in-place record overwrite. Saturated frontiers delegate to the full
   warm fit;
5. publish the result as the next :class:`~repro.serving.snapshots.
   PublishedResult` epoch, append the epoch-checkpoint marker to the
   journal, and resolve the batch's tickets.

The default failure policy is **fail-stop**: any exception in the batch loop
(injected or real) resolves the in-flight batch's tickets with the error,
re-raises, and kills the worker task. The service then refuses further
writes; the journal holds every accepted batch, so ``recover()`` restores
exactly the accepted prefix. ``queue.task_done`` is called once per write
*after* its batch's publish, so ``queue.join()`` is exactly the service's
drain barrier.

Under a :class:`~repro.serving.supervisor.Supervisor` (``supervised=True``)
the worker becomes *restartable* instead: a crashed batch stays parked as
:attr:`EMWorker.pending` — its tickets unresolved, its ``task_done`` calls
deferred — while the supervisor rolls the dataset back to the last published
state and re-runs :meth:`step`, which retries the pending batch (without
re-journaling it if the append already landed; ``append_batch`` only bumps
``batch_seq`` after the frame is fully written, so a retried append reuses
the same sequence number). The *commit point* is ``SnapshotStore.publish``:
once it lands, ``pending.published_epoch`` is set and a later crash (the
checkpoint append, a compaction) must **not** retry the batch — the
supervisor resolves its tickets with that epoch and repairs the checkpoint
instead. Attempt-local metric increments are reversed on a pre-commit crash
so counters always describe committed state. A ``fit_timeout`` arms the
**fit watchdog**: an off-loop fit that outlives it is abandoned (its
executor is discarded; the stuck thread can finish into the void — it only
ever reads the dataset object it was handed) and :class:`FitTimeout` is
raised, which the supervisor treats like any other crash.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..data.model import Answer, DatasetError, Record, TruthDiscoveryDataset
from ..inference.base import TruthInferenceAlgorithm, WarmStartDegradation
from .faults import FaultInjector
from .journal import WriteAheadJournal
from .metrics import ServiceMetrics
from .snapshots import PublishedResult, SnapshotStore


@dataclass
class Write:
    """One queued mutation plus the ticket its writer may await.

    The ticket resolves to the publishing epoch once the write is readable,
    or raises the :class:`DatasetError` that rejected it (or the crash that
    killed its batch). Awaiting is optional — valid writes resolve with a
    result, which asyncio never complains about dropping.
    """

    claim: Union[Record, Answer]
    ticket: "asyncio.Future[int]" = field(repr=False, default=None)  # type: ignore[assignment]

    def apply(self, dataset: TruthDiscoveryDataset) -> None:
        if isinstance(self.claim, Record):
            dataset.add_record(self.claim)
        else:
            dataset.add_answer(self.claim)


class FitTimeout(RuntimeError):
    """An off-loop fit outlived ``fit_timeout`` and was abandoned.

    Raised on the worker coroutine (the executor future is discarded); under
    supervision it is handled like any other batch-loop crash — rollback,
    restart, and eventual quarantine of the batch whose fits keep hanging.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(f"fit exceeded fit_timeout={timeout:g}s and was abandoned")
        self.timeout = timeout


@dataclass
class PendingBatch:
    """The batch a supervised worker is processing, parked across retries.

    ``journaled``/``seq`` make the journal append idempotent across retries;
    ``published_epoch`` marks the commit point (set the instant
    ``SnapshotStore.publish`` succeeds — a batch with it set is *never*
    retried); ``crashes`` drives quarantine; the ``attempt_*`` fields are
    this attempt's metric increments, reversed on a pre-commit crash;
    ``applied_claims`` is what the last attempt actually mutated into the
    dataset (the journal-less supervisor's rollback ledger).
    """

    writes: List[Write]
    seq: Optional[int] = None
    journaled: bool = False
    published_epoch: Optional[int] = None
    crashes: int = 0
    attempt_applied: int = 0
    attempt_rejected: int = 0
    attempt_batched: bool = False
    applied_claims: List[Union[Record, Answer]] = field(default_factory=list)


class EMWorker:
    """Single-consumer batch loop between the write queue and the store."""

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        model: TruthInferenceAlgorithm,
        queue: "asyncio.Queue[Write]",
        store: SnapshotStore,
        metrics: ServiceMetrics,
        *,
        accepts_warm_start: bool,
        batch_max: int = 256,
        batch_wait: float = 0.0,
        journal: Optional[WriteAheadJournal] = None,
        faults: Optional[FaultInjector] = None,
        off_loop_fits: bool = True,
        supervised: bool = False,
        fit_timeout: Optional[float] = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if fit_timeout is not None and fit_timeout <= 0:
            raise ValueError("fit_timeout must be > 0 (or None to disable)")
        self._dataset = dataset
        self._model = model
        self._queue = queue
        self._store = store
        self._metrics = metrics
        self._accepts_warm_start = accepts_warm_start
        self._batch_max = batch_max
        self._batch_wait = batch_wait
        self._journal = journal
        self._faults = faults
        self._off_loop = off_loop_fits
        self._fit_pool: Optional[ThreadPoolExecutor] = None
        self._supervised = supervised
        self._fit_timeout = fit_timeout
        #: the batch currently being processed (supervised mode only) —
        #: parked here across crash/rollback/retry until finalized.
        self.pending: Optional[PendingBatch] = None
        #: called with the PublishedResult the instant a publish commits
        #: (the supervisor's crash-budget reset + rollback-ledger hook).
        self.commit_listener: Optional[Callable[[PublishedResult], None]] = None
        #: called with compact()'s {before_bytes, after_bytes} after an
        #: auto-compaction (the supervisor re-bases its in-memory ledger).
        self.compaction_listener: Optional[Callable[[Dict[str, int]], None]] = None

    @property
    def dataset(self) -> TruthDiscoveryDataset:
        return self._dataset

    def replace_dataset(self, dataset: TruthDiscoveryDataset) -> None:
        """Swap in a rolled-back dataset (supervisor-only, worker parked)."""
        self._dataset = dataset

    # ------------------------------------------------------------------
    # fitting & publication
    # ------------------------------------------------------------------
    def _fit(self) -> Tuple[object, float, List[str]]:
        """Run one refit; executor-thread-safe (sole dataset toucher while
        the worker coroutine awaits it). Returns (result, seconds, and the
        structured reasons of any warm-start degradations)."""
        if self._faults is not None:
            self._faults.check("worker.fit")
        previous = self._store.latest
        warm = previous.result if (previous and self._accepts_warm_start) else None
        t0 = time.perf_counter()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            if self._accepts_warm_start:
                result = self._model.fit(self._dataset, warm_start=warm)
            else:
                result = self._model.fit(self._dataset)
        fit_seconds = time.perf_counter() - t0
        # Warm-start degradations are tolerated operation here (a clone or
        # an in-place overwrite can legitimately force one); count them per
        # structured reason instead of spamming the log, but re-emit
        # anything else the fit warned about. In steady state — mixed
        # claim+answer append traffic — the fits stay incremental and this
        # list stays empty (asserted by tests and the serving benchmark).
        degraded: List[str] = []
        for caught_warning in caught:
            if isinstance(caught_warning.message, WarmStartDegradation):
                degraded.append(caught_warning.message.reason)
            else:
                warnings.warn_explicit(
                    caught_warning.message,
                    caught_warning.category,
                    caught_warning.filename,
                    caught_warning.lineno,
                )
        return result, fit_seconds, degraded

    def _publish(self, fitted: Tuple[object, float, List[str]]) -> PublishedResult:
        """Wrap a fit into the next epoch, swap it in, checkpoint the journal."""
        result, fit_seconds, degraded = fitted
        if self._faults is not None:
            self._faults.check("worker.publish")
        frontier_size = getattr(result, "frontier_size", None)
        self._metrics.note_fit(
            fit_seconds, incremental=frontier_size is not None, degraded=degraded
        )
        previous = self._store.latest
        snapshot = PublishedResult(
            result=result,
            truths=result.truths(),
            epoch=previous.epoch + 1 if previous else self._store.base_epoch,
            dataset_version=self._dataset.version,
            records_version=self._dataset.records_version,
            applied_writes=self._metrics.writes_applied,
            incremental=frontier_size is not None,
            frontier_size=frontier_size,
            fit_seconds=fit_seconds,
            published_at=time.monotonic(),
        )
        published = self._store.publish(snapshot)
        # The commit point: the snapshot is visible to readers. A crash past
        # this line must resolve the batch's tickets with this epoch, never
        # retry it (double-apply); the supervisor keys off published_epoch.
        if self.pending is not None:
            self.pending.published_epoch = published.epoch
        if self.commit_listener is not None:
            self.commit_listener(published)
        if self._journal is not None:
            # Checkpoint *after* the publish it marks: a surviving checkpoint
            # implies its batches are journaled (they precede it in the file),
            # so recovery resuming at checkpoint-epoch + 1 never skips data.
            self._journal.append_checkpoint(
                epoch=published.epoch,
                dataset_version=published.dataset_version,
                records_version=published.records_version,
                applied_writes=published.applied_writes,
            )
            self._maybe_auto_compact(published)
        return published

    def _maybe_auto_compact(self, published: PublishedResult) -> None:
        """Compact the journal when it outgrew ``auto_compact_bytes``.

        Only called right after a checkpoint, the one program point where the
        live dataset and the journal's replay state provably coincide.
        """
        journal = self._journal
        if journal is None or journal.auto_compact_bytes is None or journal.closed:
            return
        try:
            size = journal.path.stat().st_size
        except OSError:
            return
        if size <= journal.auto_compact_bytes:
            return
        info = journal.compact(
            self._dataset,
            epoch=published.epoch,
            dataset_version=published.dataset_version,
            records_version=published.records_version,
            applied_writes=published.applied_writes,
        )
        self._metrics.compactions += 1
        if self.compaction_listener is not None:
            self.compaction_listener(info)

    async def fit_and_publish(self) -> PublishedResult:
        """Refit warm-started from the latest publish, then publish.

        The fit runs in a lazily created single-thread executor
        (``off_loop_fits=True``, the default) so readers and writers stay
        responsive during cold refits; the publish runs back on the loop.
        Also used by ``TruthService.start`` for the initial fit, before the
        worker task exists.
        """
        if self._off_loop:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(self._executor(), self._fit)
            if self._fit_timeout is not None:
                try:
                    fitted = await asyncio.wait_for(future, self._fit_timeout)
                except asyncio.TimeoutError:
                    # Watchdog expiry: abandon the executor wholesale — a
                    # fresh pool serves future fits while the wedged thread
                    # finishes into the void (it only reads the dataset
                    # object it was handed; nothing consumes its result).
                    self._metrics.fit_timeouts += 1
                    self._abandon_executor()
                    raise FitTimeout(self._fit_timeout) from None
            else:
                fitted = await future
        else:
            fitted = self._fit()
        return self._publish(fitted)

    def _abandon_executor(self) -> None:
        if self._fit_pool is not None:
            self._fit_pool.shutdown(wait=False)
            self._fit_pool = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._fit_pool is None:
            self._fit_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="truth-service-fit"
            )
        return self._fit_pool

    def shutdown(self) -> None:
        """Release the fit executor (idempotent; in-flight fits finish)."""
        if self._fit_pool is not None:
            self._fit_pool.shutdown(wait=False)
            self._fit_pool = None

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------
    async def _take_batch(self) -> List[Write]:
        first = await self._queue.get()
        batch = [first]
        if self._batch_wait > 0:
            await asyncio.sleep(self._batch_wait)
        while len(batch) < self._batch_max and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        return batch

    async def step(self) -> Optional[PublishedResult]:
        """Process one batch: journal, apply, refit, publish, resolve tickets.

        Returns the published snapshot, or ``None`` when every write in the
        batch was rejected (nothing changed, so nothing is re-fitted).
        Exposed so tests can drive the worker deterministically
        (``TruthService.start(run_worker=False)``).

        Supervised mode re-enters here after a rollback: the parked
        :attr:`pending` batch is retried instead of taking a new one, its
        tickets stay unresolved across the crash (writers keep awaiting
        through the heal), and ``task_done`` is deferred to finalization so
        ``queue.join()`` still means "fully resolved".
        """
        if self._supervised and self.pending is not None:
            pending = self.pending  # retry after rollback — same batch
        else:
            pending = PendingBatch(writes=await self._take_batch())
            if self._supervised:
                self.pending = pending
        batch = pending.writes
        pending.attempt_applied = 0
        pending.attempt_rejected = 0
        pending.attempt_batched = False
        pending.applied_claims = []
        try:
            if self._journal is not None and not pending.journaled:
                try:
                    # append_batch bumps batch_seq only after the frame is
                    # fully written, so a retried append reuses the seq.
                    pending.seq = self._journal.append_batch(
                        [w.claim for w in batch]
                    )
                    pending.journaled = True
                except Exception:
                    self._metrics.journal_failures += 1
                    raise
            if self._faults is not None:
                self._faults.check("worker.apply")
            applied: List[Write] = []
            for write in batch:
                try:
                    write.apply(self._dataset)
                except DatasetError as exc:
                    self._metrics.writes_rejected += 1
                    pending.attempt_rejected += 1
                    if not write.ticket.done():
                        write.ticket.set_exception(exc)
                else:
                    self._metrics.writes_applied += 1
                    pending.attempt_applied += 1
                    applied.append(write)
            self._metrics.batches += 1
            self._metrics.last_batch_size = len(batch)
            pending.attempt_batched = True
            pending.applied_claims = [w.claim for w in applied]
            if not applied:
                self._finalize_pending(pending)
                return None
            snapshot = await self.fit_and_publish()
            for write in applied:
                if not write.ticket.done():  # a writer may have cancelled
                    write.ticket.set_result(snapshot.epoch)
            self._finalize_pending(pending)
            return snapshot
        except Exception as exc:
            self._metrics.worker_failures += 1
            if self._supervised:
                # Park the batch for the supervisor: tickets stay pending
                # (writers wait through the heal), task_done is deferred.
                # Reverse this attempt's metric increments unless the
                # publish committed — counters describe committed state.
                pending.crashes += 1
                if pending.published_epoch is None:
                    self._metrics.writes_applied -= pending.attempt_applied
                    self._metrics.writes_rejected -= pending.attempt_rejected
                    if pending.attempt_batched:
                        self._metrics.batches -= 1
                raise
            # Fail-stop: surface the crash on every unresolved ticket (so
            # awaiting writers unblock), then kill the worker. The journal
            # holds the accepted prefix; recovery is the way back.
            for write in batch:
                if write.ticket is not None and not write.ticket.done():
                    write.ticket.set_exception(exc)
                    # Mark retrieved: fire-and-forget writers must not spam
                    # "exception was never retrieved" at GC; awaiting writers
                    # still see the exception raised.
                    write.ticket.exception()
            raise
        finally:
            if not self._supervised:
                # After publication, so queue.join() == "all accepted writes
                # are readable or rejected" — the drain barrier.
                for _ in batch:
                    self._queue.task_done()

    def _finalize_pending(self, pending: PendingBatch) -> None:
        """Retire a fully resolved batch (supervised bookkeeping only)."""
        if not self._supervised:
            return
        for _ in pending.writes:
            self._queue.task_done()
        if self.pending is pending:
            self.pending = None

    async def run(self) -> None:
        """The worker task body: loop until cancelled (or fail-stopped)."""
        while True:
            await self.step()

"""The background EM worker: batch-apply writes, warm-refit, publish.

One worker per service, one coroutine, no threads: every mutation of the
dataset and every EM fit happens inside this single task, which is what makes
the service deterministic under a fixed write order and lets the reader side
stay lock-free (readers only ever touch immutable published snapshots).

Per batch the worker does exactly four things:

1. drain a micro-batch off the write queue (first write awaited, the rest
   taken greedily up to ``batch_max``, with an optional ``batch_wait``
   linger so sparse writers still amortise one fit over several writes);
2. apply each write through the ordinary dataset mutators — an invalid
   write (:class:`~repro.data.model.DatasetError`) is rejected onto its
   ticket without poisoning the batch;
3. refit: ``fit(dataset, warm_start=previous_published)``. With an
   incremental-capable model this is the PR-6 dirty-frontier path — the
   appender has already spliced the delta into a new immutable snapshot, and
   the oplog names the dirty objects — and it *degrades, never breaks*:
   record appends bump ``records_version`` so the warm-start gate refuses
   the seed with a :class:`RuntimeWarning` (counted here, not surfaced) and
   the fit runs cold; saturated frontiers delegate to the full warm fit.
4. publish the result as the next :class:`~repro.serving.snapshots.
   PublishedResult` epoch and resolve the batch's tickets with it.

``queue.task_done`` is called once per write *after* its batch's publish, so
``queue.join()`` is exactly the service's drain barrier: when it returns,
every accepted write is visible to readers (or rejected onto its ticket).
"""

from __future__ import annotations

import asyncio
import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..data.model import Answer, DatasetError, Record, TruthDiscoveryDataset
from ..inference.base import WARM_START_DEGRADED_PREFIX, TruthInferenceAlgorithm
from .metrics import ServiceMetrics
from .snapshots import PublishedResult, SnapshotStore


@dataclass
class Write:
    """One queued mutation plus the ticket its writer may await.

    The ticket resolves to the publishing epoch once the write is readable,
    or raises the :class:`DatasetError` that rejected it. Awaiting is
    optional — valid writes resolve with a result, which asyncio never
    complains about dropping.
    """

    claim: Union[Record, Answer]
    ticket: "asyncio.Future[int]" = field(repr=False, default=None)  # type: ignore[assignment]

    def apply(self, dataset: TruthDiscoveryDataset) -> None:
        if isinstance(self.claim, Record):
            dataset.add_record(self.claim)
        else:
            dataset.add_answer(self.claim)


class EMWorker:
    """Single-consumer batch loop between the write queue and the store."""

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        model: TruthInferenceAlgorithm,
        queue: "asyncio.Queue[Write]",
        store: SnapshotStore,
        metrics: ServiceMetrics,
        *,
        accepts_warm_start: bool,
        batch_max: int = 256,
        batch_wait: float = 0.0,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self._dataset = dataset
        self._model = model
        self._queue = queue
        self._store = store
        self._metrics = metrics
        self._accepts_warm_start = accepts_warm_start
        self._batch_max = batch_max
        self._batch_wait = batch_wait

    # ------------------------------------------------------------------
    # fitting & publication (synchronous: runs inline in the worker task)
    # ------------------------------------------------------------------
    def fit_and_publish(self) -> PublishedResult:
        """Refit the live dataset warm-started from the latest publish.

        Also used synchronously by ``TruthService.start`` for the epoch-0
        cold fit, before the worker task exists.
        """
        previous = self._store.latest
        warm = previous.result if (previous and self._accepts_warm_start) else None
        t0 = time.perf_counter()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            if self._accepts_warm_start:
                result = self._model.fit(self._dataset, warm_start=warm)
            else:
                result = self._model.fit(self._dataset)
        fit_seconds = time.perf_counter() - t0
        # Warm-start degradations are *normal operation* here (every record
        # append triggers one); count them instead of spamming the log, but
        # re-emit anything else the fit warned about.
        degradations = 0
        for caught_warning in caught:
            message = str(caught_warning.message)
            if issubclass(
                caught_warning.category, RuntimeWarning
            ) and message.startswith(WARM_START_DEGRADED_PREFIX):
                degradations += 1
            else:
                warnings.warn_explicit(
                    caught_warning.message,
                    caught_warning.category,
                    caught_warning.filename,
                    caught_warning.lineno,
                )
        frontier_size = getattr(result, "frontier_size", None)
        self._metrics.note_fit(
            fit_seconds, incremental=frontier_size is not None, degradations=degradations
        )
        snapshot = PublishedResult(
            result=result,
            truths=result.truths(),
            epoch=previous.epoch + 1 if previous else 0,
            dataset_version=self._dataset.version,
            records_version=self._dataset.records_version,
            applied_writes=self._metrics.writes_applied,
            incremental=frontier_size is not None,
            frontier_size=frontier_size,
            fit_seconds=fit_seconds,
            published_at=time.monotonic(),
        )
        return self._store.publish(snapshot)

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------
    async def _take_batch(self) -> List[Write]:
        first = await self._queue.get()
        batch = [first]
        if self._batch_wait > 0:
            await asyncio.sleep(self._batch_wait)
        while len(batch) < self._batch_max and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        return batch

    async def step(self) -> Optional[PublishedResult]:
        """Process one batch: apply, refit, publish, resolve tickets.

        Returns the published snapshot, or ``None`` when every write in the
        batch was rejected (nothing changed, so nothing is re-fitted).
        Exposed so tests can drive the worker deterministically
        (``TruthService.start(run_worker=False)``).
        """
        batch = await self._take_batch()
        try:
            applied: List[Write] = []
            for write in batch:
                try:
                    write.apply(self._dataset)
                except DatasetError as exc:
                    self._metrics.writes_rejected += 1
                    if not write.ticket.done():
                        write.ticket.set_exception(exc)
                else:
                    self._metrics.writes_applied += 1
                    applied.append(write)
            self._metrics.batches += 1
            self._metrics.last_batch_size = len(batch)
            if not applied:
                return None
            snapshot = self.fit_and_publish()
            for write in applied:
                if not write.ticket.done():  # a writer may have cancelled
                    write.ticket.set_result(snapshot.epoch)
            return snapshot
        finally:
            # After publication, so queue.join() == "all accepted writes are
            # readable or rejected" — the drain barrier.
            for _ in batch:
                self._queue.task_done()

    async def run(self) -> None:
        """The worker task body: loop until cancelled."""
        while True:
            await self.step()

"""``python -m repro serve``: a self-contained truth-service demo.

Spins up a :class:`~repro.serving.service.TruthService` over a seeded
synthetic dataset, drives it with concurrent writer and reader coroutines
(answers on the hot path, an occasional new-source claim naming a
brand-new candidate value to exercise the slot-growth splice — served
incrementally; only an answer overwrite, when a worker re-answers an object
it already answered with a different value, degrades a batch to a cold
refit), then prints a one-screen summary: throughput, fit
mix, read-latency percentiles (with per-reason degradation counts when any
occurred) and the final snapshot stamps. Everything is
seeded, so two runs with the same flags print the same truths.

With ``--journal PATH`` the service runs durably: every accepted micro-batch
is appended to a write-ahead journal before it is applied, and after the
drain the demo performs a recovery round-trip — replaying the journal into
a fresh service and checking the recovered truths match the live ones —
printing a ``SERVING: recovery`` summary line.

With ``--chaos`` the service runs supervised and the demo injects seeded
faults mid-stream: a poison batch that crashes the fit until it is
quarantined, then a one-off publish crash that heals on retry. The writer
awaits every ticket so the fault schedule (and therefore the printed
restart/quarantine counts and the final truths) is deterministic for a
given seed. With ``--compact`` (requires ``--journal``) the journal is
compacted after the drain — the recovery round-trip then replays the
compacted file, proving nothing semantic was lost.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import List, Optional

import numpy as np

from ..datasets import make_heritages
from ..inference.tdh import TDHModel
from .faults import FaultInjector
from .journal import FSYNC_POLICIES, WriteAheadJournal, scan_journal
from .metrics import LatencyRecorder
from .recovery import recover
from .service import TruthService
from .supervisor import BatchQuarantined, SupervisionPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Demo: an always-on asyncio truth service over a synthetic"
            " dataset — concurrent writers, lock-free readers, incremental"
            " EM refits in a background worker."
        ),
    )
    parser.add_argument("--objects", type=int, default=400, help="dataset size")
    parser.add_argument("--writes", type=int, default=200, help="writes to send")
    parser.add_argument(
        "--claim-every",
        type=int,
        default=50,
        help="every Nth write is a new-source claim (0 = answers only)",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset + traffic seed")
    parser.add_argument("--max-pending", type=int, default=256, help="write-queue capacity")
    parser.add_argument("--batch-max", type=int, default=64, help="writes folded per fit")
    parser.add_argument("--max-iter", type=int, default=25, help="EM iteration cap")
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "write-ahead journal file: each accepted batch is durable before"
            " it is applied, and the demo finishes with a crash-recovery"
            " round-trip replayed from this file"
        ),
    )
    parser.add_argument(
        "--fsync",
        choices=FSYNC_POLICIES,
        default="checkpoint",
        help="journal fsync policy (only with --journal; default: checkpoint)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "run supervised and inject seeded faults mid-stream: a poison"
            " batch (crashed fits until quarantine) and a publish crash that"
            " heals on retry; prints a 'SERVING: chaos' summary line"
        ),
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help=(
            "compact the journal after the drain (requires --journal); the"
            " recovery round-trip then replays the compacted file"
        ),
    )
    return parser


async def _run(args: argparse.Namespace) -> int:
    # Heritages' Zipf long-tail sources keep claimant degree low, so a
    # batch's dirty frontier stays a small fraction of the dataset and the
    # demo genuinely exercises the incremental serving path (BirthPlaces'
    # two near-complete sources would saturate every frontier).
    dataset = make_heritages(
        size=args.objects, n_sources=max(8, 2 * args.objects), seed=args.seed
    )
    model = TDHModel(use_columnar=True, incremental=True, max_iter=args.max_iter)
    rng = np.random.default_rng(args.seed)
    objects: List = list(dataset.objects)
    read_latency = LatencyRecorder()
    writing = True

    faults: Optional[FaultInjector] = None
    supervision: Optional[SupervisionPolicy] = None
    if args.chaos:
        faults = FaultInjector(seed=args.seed)
        supervision = SupervisionPolicy(
            max_restarts=8,
            backoff_base=0.001,
            backoff_cap=0.01,
            quarantine_after=2,
            jitter=0.0,
            seed=args.seed,
        )
    journal = (
        WriteAheadJournal(args.journal, fsync=args.fsync, faults=faults)
        if args.journal is not None
        else None
    )
    service = TruthService(
        dataset,
        model,
        max_pending=args.max_pending,
        batch_max=args.batch_max,
        journal=journal,
        faults=faults,
        supervision=supervision,
    )

    # The chaos schedule: a poison batch a third of the way in (the fit
    # crashes every retry until the supervisor quarantines it), then a
    # one-off publish crash at two thirds (rolled back, retried, healed).
    poison_at = args.writes // 3
    crash_at = max(poison_at + 1, (2 * args.writes) // 3)
    chaos_outcomes = {"acknowledged": 0, "quarantined": 0}

    async def writer() -> None:
        nonlocal writing
        for i in range(args.writes):
            if faults is not None:
                if i == poison_at:
                    faults.arm(
                        "worker.fit",
                        hit=faults.counts["worker.fit"] + 1,
                        hits_remaining=supervision.quarantine_after,
                    )
                elif i == crash_at:
                    faults.arm(
                        "worker.publish",
                        hit=faults.counts["worker.publish"] + 1,
                    )
            obj = objects[int(rng.integers(len(objects)))]
            candidates = dataset.candidates(obj)
            value = candidates[int(rng.integers(len(candidates)))]
            if args.claim_every and i and i % args.claim_every == 0:
                # A brand-new candidate value grows the slot layout — the
                # splice path, still served incrementally.
                fresh = next(
                    (
                        v
                        for v in dataset.hierarchy.non_root_nodes()
                        if v not in candidates
                    ),
                    value,
                )
                ticket = await service.append_claim(obj, f"demo_src_{i}", fresh)
            else:
                ticket = await service.append_answer(obj, f"demo_w{i % 5}", value)
            if faults is not None:
                # Chaos mode awaits every ticket: the fault schedule hits
                # deterministic batch boundaries, so two runs with the same
                # seed heal identically and print identical truths.
                try:
                    await ticket
                except BatchQuarantined:
                    chaos_outcomes["quarantined"] += 1
                else:
                    chaos_outcomes["acknowledged"] += 1
            if i % 8 == 0:
                await asyncio.sleep(0)  # let the worker and readers interleave
        writing = False

    async def reader() -> None:
        sample = objects[:: max(1, len(objects) // 16)]
        while writing:
            t0 = time.perf_counter()
            reads = service.get_truths(sample)
            read_latency.record(time.perf_counter() - t0)
            assert len({r.epoch for r in reads.values()}) == 1  # one snapshot
            await asyncio.sleep(0)

    t_start = time.perf_counter()
    compaction = None
    async with service:
        await asyncio.gather(writer(), reader())
        final = await service.drain()
        if args.compact:
            before_entries = len(scan_journal(args.journal).entries)
            info = await service.compact()
            compaction = (
                before_entries,
                len(scan_journal(args.journal).entries),
                info,
            )
    elapsed = time.perf_counter() - t_start

    stats = service.stats()
    latency = read_latency.summary()
    sample_read = None
    if objects:
        snapshot = service.latest
        sample_obj = objects[0]
        sample_read = (sample_obj, snapshot.truths[sample_obj])
    print(
        "SERVING: writes={accepted} applied={applied} rejected={rejected}"
        " batches={batches} epoch={epoch}".format(
            accepted=stats["writes_accepted"],
            applied=stats["writes_applied"],
            rejected=stats["writes_rejected"],
            batches=stats["batches"],
            epoch=final.epoch,
        )
    )
    print(
        "SERVING: fits incremental={inc} cold={cold}"
        " (warm-start degradations={deg}{reasons}) total_fit={fit:.3f}s".format(
            inc=stats["fits_incremental"],
            cold=stats["fits_cold"],
            deg=stats["warm_start_degradations"],
            reasons=(
                " " + str(stats["warm_start_degradation_reasons"])
                if stats["warm_start_degradation_reasons"]
                else ""
            ),
            fit=stats["fit_seconds_total"],
        )
    )
    throughput = stats["writes_applied"] / elapsed if elapsed > 0 else float("inf")
    print(
        "SERVING: {writes:.1f} writes/sec over {secs:.2f}s;"
        " read p50={p50:.1f}us p99={p99:.1f}us ({reads} multi-reads)".format(
            writes=throughput,
            secs=elapsed,
            p50=latency.get("p50_us", float("nan")),
            p99=latency.get("p99_us", float("nan")),
            reads=latency.get("count", 0),
        )
    )
    if args.chaos:
        print(
            "SERVING: chaos survived restarts={restarts} quarantines={q}"
            " quarantined_writes={qw} acknowledged={ok}/{total} lost=0".format(
                restarts=stats["worker_restarts"],
                q=stats["quarantines"],
                qw=stats["quarantined_writes"],
                ok=chaos_outcomes["acknowledged"],
                total=args.writes,
            )
        )
    if sample_read is not None:
        print(f"SERVING: truth({sample_read[0]!r}) = {sample_read[1]!r}")

    if compaction is not None:
        before_entries, after_entries, info = compaction
        print(
            "SERVING: compaction {be} -> {ae} journal entries"
            " ({bb} -> {ab} bytes)".format(
                be=before_entries,
                ae=after_entries,
                bb=info["before_bytes"],
                ab=info["after_bytes"],
            )
        )

    if args.journal is not None:
        # Crash-recovery round-trip: replay the journal into a fresh service
        # and check it resumes exactly where the live one stopped — next
        # epoch, same dataset stamps, same truths.
        recovered, report = await recover(
            args.journal,
            TDHModel(use_columnar=True, incremental=True, max_iter=args.max_iter),
            run_worker=False,
            fsync=args.fsync,
        )
        rec_latest = recovered.latest
        assert rec_latest.epoch == final.epoch + 1, (rec_latest.epoch, final.epoch)
        assert rec_latest.dataset_version == final.dataset_version
        agree = sum(
            1 for o, v in final.truths.items() if rec_latest.truths.get(o) == v
        )
        await recovered.stop()
        print(
            "SERVING: recovery replayed {batches} batches"
            " ({applied} writes, {rejected} rejected) in {secs:.3f}s;"
            " resumed at epoch {epoch}; truths agree {agree}/{total}".format(
                batches=report.batches_replayed,
                applied=report.writes_replayed,
                rejected=report.writes_rejected,
                secs=report.replay_seconds,
                epoch=report.resume_epoch,
                agree=agree,
                total=len(final.truths),
            )
        )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.compact and args.journal is None:
        parser.error("--compact requires --journal")
    return asyncio.run(_run(args))


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro serve`
    import sys

    sys.exit(main())

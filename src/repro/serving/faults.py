"""Deterministic fault injection for the durable serving layer.

The recovery test suite (``tests/test_recovery.py``) and the CI chaos job
need to kill the service at *every* interesting point of the write path —
mid-journal-write, mid-fit, between publish and checkpoint — and then prove
that :func:`~repro.serving.recovery.recover` restores exactly the truths of
the journaled accepted prefix. Random ``kill -9`` style testing cannot pin
those points; this module can: the service, worker and journal call
:meth:`FaultInjector.check` at named **injection sites**, and a test arms a
site to fire on its N-th hit. Everything is seeded and counted, so a failing
``(site, hit)`` pair is a reproducible command line, not a flake.

Sites (the order below is the order they are hit during one worker batch):

===================  =======================================================
``journal.append``   before any byte of a base/batch record is written
``journal.torn``     write a seeded *prefix* of the frame, then fail — the
                     canonical torn-tail crash recovery must truncate
``journal.fsync``    at ``os.fsync`` time (the bytes are already written,
                     their durability is what failed)
``worker.apply``     after the batch is journaled, before it is applied to
                     the live dataset
``worker.fit``       inside the model fit (runs on the executor thread when
                     fits are off-loop); with ``delay=`` and no ``exc=`` it
                     is a pure slowdown — the responsiveness regression test
``worker.publish``   after the fit, before the snapshot-store swap
``journal.checkpoint``  before the epoch-checkpoint marker is written
``journal.compact``  before the compaction temp file is written
``journal.compact.rename``  after the temp file is durable, before the
                     atomic rename swaps it over the live journal
===================  =======================================================

A plan is **one-shot** by default: once fired it disarms, so the same
injector can be carried into the recovery path without re-killing it.
The self-healing suite needs more than one-shot — a batch is only
quarantined when it kills the worker repeatedly — so :meth:`arm` also
takes repeatable modes:

* ``hits_remaining=k`` — fire on the ``hit``-th check **and every check
  after it** until ``k`` firings happened, then disarm. This is the
  "poison batch" shape: the same batch crashes the worker on every retry.
* ``every_nth=n`` — fire on the ``hit``-th check and every ``n``-th check
  from there on (``hit``, ``hit+n``, ``hit+2n``, ...), never disarming
  unless ``hits_remaining`` bounds it. This is the "flaky site" shape: a
  retry lands between firings and succeeds, so the supervisor restarts
  but never quarantines.

``fired`` records the ``(site, hit)`` pairs that actually triggered, letting
tests distinguish "the run crashed where I asked" from "the run never
reached that site" (both are legal matrix outcomes — an unfired plan must
yield a clean, lossless run).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class InjectedFault(RuntimeError):
    """The error raised at an armed injection site (unless ``exc`` overrides)."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


@dataclass
class _Plan:
    site: str
    hit: int
    exc: Optional[BaseException]
    delay: float
    torn: bool
    hits_remaining: Optional[int] = None
    every_nth: Optional[int] = None

    def matches(self, count: int) -> bool:
        """Whether this plan fires on the ``count``-th check of its site."""
        if count < self.hit:
            return False
        if self.every_nth is not None:
            return (count - self.hit) % self.every_nth == 0
        if self.hits_remaining is not None:
            return True  # repeatable: every check from ``hit`` on
        return count == self.hit  # one-shot


class FaultInjector:
    """Seeded fault plans (one-shot or repeatable) over the named sites."""

    SITES: Tuple[str, ...] = (
        "journal.append",
        "journal.torn",
        "journal.fsync",
        "journal.checkpoint",
        "journal.compact",
        "journal.compact.rename",
        "worker.apply",
        "worker.fit",
        "worker.publish",
    )

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._plans: Dict[str, _Plan] = {}
        #: hits per site, counted whether or not a plan is armed.
        self.counts: Dict[str, int] = {}
        #: ``(site, hit)`` pairs that actually fired, in firing order.
        self.fired: List[Tuple[str, int]] = []

    def arm(
        self,
        site: str,
        hit: int = 1,
        *,
        exc: Optional[BaseException] = None,
        delay: float = 0.0,
        torn: bool = False,
        hits_remaining: Optional[int] = None,
        every_nth: Optional[int] = None,
    ) -> "FaultInjector":
        """Arm ``site`` to fire on its ``hit``-th check.

        ``exc``: raise this instead of :class:`InjectedFault`.
        ``delay``: sleep this many seconds first; with no ``exc`` and
        ``torn=False`` the plan is a *pure slowdown* (no raise).
        ``torn``: journal-only — persist a seeded prefix of the frame, then
        fail, leaving a torn record on disk for recovery to truncate.
        ``hits_remaining``: repeatable — fire on the ``hit``-th check and
        every later one until this many firings happened (the poison-batch
        shape: crashes every retry too).
        ``every_nth``: periodic — fire on checks ``hit, hit+n, hit+2n, ...``
        (the flaky-site shape: a retry lands between firings and succeeds);
        combine with ``hits_remaining`` to bound the total firings.

        Returns ``self`` so arming chains.
        """
        if site not in self.SITES:
            raise ValueError(f"unknown injection site {site!r} (sites: {self.SITES})")
        if hit < 1:
            raise ValueError("hit must be >= 1")
        if hits_remaining is not None and hits_remaining < 1:
            raise ValueError("hits_remaining must be >= 1")
        if every_nth is not None and every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        self._plans[site] = _Plan(
            site, hit, exc, delay, torn,
            hits_remaining=hits_remaining, every_nth=every_nth,
        )
        return self

    def disarm(self, site: str) -> None:
        """Drop ``site``'s plan (no-op when nothing is armed there)."""
        self._plans.pop(site, None)

    def armed(self, site: str) -> bool:
        """Whether ``site`` still has an unfired plan."""
        return site in self._plans

    def check(self, site: str, *, frame_len: Optional[int] = None) -> Optional[int]:
        """Count one pass through ``site``; fire its plan when the hit matches.

        Normally returns ``None``. A firing ``torn`` plan instead *returns*
        the seeded number of prefix bytes the journal must write before
        raising (the caller owns the file handle); every other firing plan
        raises here. A one-shot plan disarms after firing; a repeatable one
        disarms once ``hits_remaining`` firings are spent (``every_nth``
        without a bound never disarms).
        """
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        plan = self._plans.get(site)
        if plan is None or not plan.matches(count):
            return None
        if plan.hits_remaining is not None:
            plan.hits_remaining -= 1
            if plan.hits_remaining == 0:
                del self._plans[site]
        elif plan.every_nth is None:
            del self._plans[site]
        self.fired.append((site, count))
        if plan.delay:
            time.sleep(plan.delay)
        if plan.torn:
            if frame_len is None or frame_len <= 1:
                raise InjectedFault(site, count)
            return self._rng.randrange(1, frame_len)
        if plan.exc is not None:
            raise plan.exc
        if plan.delay:
            return None  # pure slowdown: the site survives, just late
        raise InjectedFault(site, count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(armed={sorted(self._plans)}, fired={self.fired},"
            f" counts={self.counts})"
        )

"""Write-ahead journal: the durable record of the service's accepted writes.

PR 7's service is memory-only — a process crash loses the entire accepted
write stream. This module pairs the in-memory service with an append-only
on-disk journal, in classic WAL order: the :class:`~repro.serving.worker.
EMWorker` appends each micro-batch *before* applying it to the dataset, so
any write a reader could ever observe is already durable. Recovery
(:mod:`repro.serving.recovery`) replays the journal into a fresh dataset and
restarts the service at the journaled epoch.

File format — a 4-byte magic (``RTJ1``) followed by self-checking frames::

    ┌──────────────┬──────────────┬──────────────────────────┐
    │ length (u32) │ crc32 (u32)  │ payload: compact JSON    │
    │ big-endian   │ of payload   │ (one record object)      │
    └──────────────┴──────────────┴──────────────────────────┘

Record kinds (the payload's ``"kind"`` key):

* ``base`` — the full dataset at service start (hierarchy edges, records,
  answers, gold, version counters), written once when a journal is fresh.
  The journal is therefore *self-contained*: recovery needs the file and
  nothing else.
* ``batch`` — one accepted micro-batch, writes encoded as
  ``["r", object, source, value]`` / ``["a", object, worker, value]``.
* ``checkpoint`` — epoch marker appended after every publish, carrying the
  epoch and the dataset's version counters so a restarted service resumes
  with dense epochs and non-regressing version stamps.
* ``quarantine`` — a supervised service journaled batch ``seq`` as poison
  (it killed the worker repeatedly and was excluded from the dataset);
  recovery replay skips that batch deterministically, so a healed live
  service and a recovered one condition on the same accepted evidence.

Journals are bounded by **compaction**: :meth:`WriteAheadJournal.compact`
atomically rewrites the file as ``base = current dataset`` plus the latest
checkpoint, so recovery replay cost is a function of data size, not of how
long the service has been running. The rewrite is crash-safe at every step —
the new content is built in a temp file, fsynced, then swapped in with one
atomic ``os.replace`` (plus a directory fsync), so a kill at any point
leaves either the old journal or the new one intact, never neither
(fault-injection sites ``journal.compact`` / ``journal.compact.rename``
prove it). ``auto_compact_bytes`` arms the worker to compact automatically
whenever the file outgrows that many bytes after a checkpoint.

The length+CRC framing makes every record independently verifiable:
:func:`scan_journal` walks the file, and on an invalid frame (torn tail from
a crash mid-write, or a flipped byte) it *resynchronises* — it advances
byte-by-byte until the next verifiable frame — so a single corrupt record
costs exactly that record. Corrupt spans are counted (``truncated_records``)
and any tail garbage is physically truncated by recovery before the journal
is reopened for append.

Fsync policy (the durability/throughput knob):

* ``"always"`` — ``os.fsync`` after every record: a crash loses nothing.
* ``"checkpoint"`` (default) — fsync only when a checkpoint is appended:
  a crash can lose at most the batches since the last publish, which is
  also the window readers had never seen fully fitted.
* ``"never"`` — OS-buffered only (still ``flush``-ed per record).

Values and ids are serialised as JSON: journaled serving assumes JSON-round-
trippable object/claimant/value ids (str, int, float, bool), which every
dataset in this repository uses. Tuple ids would come back as lists.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..data.model import Answer, Record, TruthDiscoveryDataset
from .faults import FaultInjector

MAGIC = b"RTJ1"
_HEADER = struct.Struct(">II")  # payload length, crc32(payload)
#: Frames claiming more than this are treated as corrupt (resync point).
MAX_RECORD_BYTES = 64 * 1024 * 1024
KINDS = ("base", "batch", "checkpoint", "quarantine")
FSYNC_POLICIES = ("always", "checkpoint", "never")


class JournalError(RuntimeError):
    """A structurally invalid journal file or an illegal journal operation."""


def encode_claim(claim: Union[Record, Answer]) -> List[object]:
    """``Record``/``Answer`` -> the compact JSON list stored in batch records."""
    if isinstance(claim, Record):
        return ["r", claim.object, claim.source, claim.value]
    if isinstance(claim, Answer):
        return ["a", claim.object, claim.worker, claim.value]
    raise TypeError(f"cannot journal {type(claim).__name__}")


def decode_claim(item: List[object]) -> Union[Record, Answer]:
    """Inverse of :func:`encode_claim`."""
    tag, obj, claimant, value = item
    if tag == "r":
        return Record(obj, claimant, value)
    if tag == "a":
        return Answer(obj, claimant, value)
    raise JournalError(f"unknown write tag {tag!r} in journal batch")


@dataclass(frozen=True)
class JournalScan:
    """The verified content of a journal file.

    ``entries`` are the decoded record payloads in file order; ``spans`` are
    their parallel ``(start, end)`` byte offsets. ``valid_end`` is the offset
    just past the last verifiable record — recovery truncates the file there
    before reopening it for append. ``truncated_records`` counts contiguous
    corrupt/torn spans that were skipped (each span is at least one lost
    record); ``truncated_bytes`` is their total size.
    """

    path: str
    file_bytes: int
    valid_end: int
    entries: List[Dict[str, object]]
    spans: List[Tuple[int, int]]
    truncated_records: int
    truncated_bytes: int

    @property
    def base(self) -> Optional[Dict[str, object]]:
        """The base-dataset record, when it survived."""
        if self.entries and self.entries[0].get("kind") == "base":
            return self.entries[0]
        return None

    @property
    def last_checkpoint(self) -> Optional[Dict[str, object]]:
        """The newest surviving checkpoint marker."""
        for entry in reversed(self.entries):
            if entry.get("kind") == "checkpoint":
                return entry
        return None

    @property
    def batches(self) -> List[Dict[str, object]]:
        return [e for e in self.entries if e.get("kind") == "batch"]

    @property
    def quarantined_seqs(self) -> List[int]:
        """Batch sequence numbers journaled as poison, in file order."""
        out: List[int] = []
        for entry in self.entries:
            if entry.get("kind") == "quarantine":
                seq = entry.get("seq")
                if isinstance(seq, int) and seq not in out:
                    out.append(seq)
        return out


def _try_frame(buf: bytes, offset: int) -> Optional[Tuple[Dict[str, object], int]]:
    """Decode one frame at ``offset``; ``None`` if it does not verify."""
    if offset + _HEADER.size > len(buf):
        return None
    length, crc = _HEADER.unpack_from(buf, offset)
    if not 0 < length <= MAX_RECORD_BYTES:
        return None
    start = offset + _HEADER.size
    end = start + length
    if end > len(buf):
        return None
    payload = buf[start:end]
    if zlib.crc32(payload) != crc:
        return None
    try:
        entry = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(entry, dict) or entry.get("kind") not in KINDS:
        return None
    return entry, end


def scan_journal(path: Union[str, Path]) -> JournalScan:
    """Read and verify every decodable record of ``path``.

    Invalid bytes (torn tail, flipped bytes) are skipped by byte-wise
    resynchronisation: a corrupt record costs only itself, the records after
    it still replay. Raises :class:`JournalError` when the file is missing or
    does not start with the journal magic.
    """
    path = Path(path)
    try:
        buf = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    if len(buf) < len(MAGIC) or buf[: len(MAGIC)] != MAGIC:
        raise JournalError(f"{path} is not a truth-service journal (bad magic)")
    entries: List[Dict[str, object]] = []
    spans: List[Tuple[int, int]] = []
    offset = len(MAGIC)
    valid_end = offset
    truncated_records = 0
    in_corrupt_span = False
    while offset < len(buf):
        hit = _try_frame(buf, offset)
        if hit is None:
            if not in_corrupt_span:
                truncated_records += 1
                in_corrupt_span = True
            offset += 1
            continue
        entry, end = hit
        entries.append(entry)
        spans.append((offset, end))
        valid_end = end
        offset = end
        in_corrupt_span = False
    truncated_bytes = len(buf) - len(MAGIC) - sum(e - s for s, e in spans)
    return JournalScan(
        path=str(path),
        file_bytes=len(buf),
        valid_end=valid_end,
        entries=entries,
        spans=spans,
        truncated_records=truncated_records,
        truncated_bytes=truncated_bytes,
    )


def truncate_torn_tail(path: Union[str, Path], scan: JournalScan) -> int:
    """Physically drop tail garbage after the last verified record.

    Only the *tail* is cut (mid-file corrupt spans stay put; scans skip them
    deterministically) — appending after a truncate therefore never writes
    into the middle of garbage. Returns the number of bytes dropped.
    """
    dropped = scan.file_bytes - scan.valid_end
    if dropped > 0:
        with open(path, "r+b") as fh:
            fh.truncate(scan.valid_end)
    return dropped


class WriteAheadJournal:
    """Append-only journal handle with checksummed frames and fsync policy.

    Opening a missing/empty file creates a fresh journal (magic written,
    ``is_fresh`` true — the service then appends the base-dataset record).
    Opening an existing journal positions at its end; reopening a journal
    with a torn tail is the job of :func:`~repro.serving.recovery.recover`,
    which truncates to the last valid record first.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fsync: str = "checkpoint",
        faults: Optional[FaultInjector] = None,
        auto_compact_bytes: Optional[int] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if auto_compact_bytes is not None and auto_compact_bytes < 1:
            raise ValueError("auto_compact_bytes must be >= 1 (or None to disable)")
        self.path = Path(path)
        self.fsync_policy = fsync
        self._faults = faults
        #: when set, the worker compacts after any checkpoint that leaves the
        #: file larger than this many bytes (checked post-publish, where the
        #: live dataset and the journal's replay state provably coincide).
        self.auto_compact_bytes = auto_compact_bytes
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing:
            with open(self.path, "rb") as fh:
                magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise JournalError(
                    f"{self.path} exists but is not a truth-service journal"
                )
        self._fh = open(self.path, "ab")
        self.is_fresh = not existing
        if self.is_fresh:
            self._fh.write(MAGIC)
            self._fh.flush()
        #: next batch sequence number; recovery fast-forwards it on reopen.
        self.batch_seq = 0
        self.records_appended = 0
        self.bytes_appended = 0
        self.batches_appended = 0
        self.checkpoints_appended = 0
        self.quarantines_appended = 0
        self.compactions = 0
        self.fsyncs = 0

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def append_base(self, dataset: TruthDiscoveryDataset) -> None:
        """Journal the full dataset so recovery needs no external corpus.

        Hierarchy edges are emitted parents-before-children (the tree's
        insertion order guarantees it), records/answers in the dataset's
        deterministic iteration order, and the version counters verbatim so
        a rebuilt dataset's stamps line up with journaled checkpoints.
        """
        self._append(self._base_entry(dataset))

    @staticmethod
    def _base_entry(dataset: TruthDiscoveryDataset) -> Dict[str, object]:
        hierarchy = dataset.hierarchy
        return {
            "kind": "base",
            "format": 1,
            "name": dataset.name,
            "root": hierarchy.root,
            "edges": [[c, hierarchy.parent(c)] for c in hierarchy.non_root_nodes()],
            "records": [[r.object, r.source, r.value] for r in dataset.iter_records()],
            "answers": [[a.object, a.worker, a.value] for a in dataset.iter_answers()],
            "gold": [[o, v] for o, v in dataset.gold.items()],
            "version": dataset.version,
            "records_version": dataset.records_version,
        }

    def append_batch(self, claims: List[Union[Record, Answer]]) -> int:
        """Journal one micro-batch (WAL: called before the batch is applied).

        Returns the batch's sequence number. Acceptance is not pre-judged:
        replay pushes every write through the same validating mutators, so a
        write rejected live is rejected identically on recovery.
        """
        seq = self.batch_seq
        self._append(
            {"kind": "batch", "seq": seq, "writes": [encode_claim(c) for c in claims]}
        )
        self.batch_seq = seq + 1
        self.batches_appended += 1
        return seq

    def append_checkpoint(
        self,
        *,
        epoch: int,
        dataset_version: int,
        records_version: int,
        applied_writes: int,
    ) -> None:
        """Mark a publish: every batch at or before this marker is covered."""
        if self._faults is not None:
            self._faults.check("journal.checkpoint")
        self._append(
            {
                "kind": "checkpoint",
                "epoch": epoch,
                "dataset_version": dataset_version,
                "records_version": records_version,
                "applied_writes": applied_writes,
            },
            checkpoint=True,
        )
        self.checkpoints_appended += 1

    def append_quarantine(self, seq: int, cause: str) -> None:
        """Journal batch ``seq`` as poison so recovery replay skips it.

        Fsynced regardless of policy — quarantine is a *decision*, and a
        recovered service must agree with the live one about which evidence
        was excluded. Skips the ``journal.append`` fault site (like
        checkpoints do): an injected append fault must not be able to turn
        the act of quarantining into another crash of the same site.
        """
        self._append(
            {"kind": "quarantine", "seq": seq, "cause": cause},
            checkpoint=True,
            force_sync=True,
        )
        self.quarantines_appended += 1

    @staticmethod
    def _frame(entry: Dict[str, object]) -> bytes:
        payload = json.dumps(entry, separators=(",", ":"), sort_keys=True).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def _append(
        self,
        entry: Dict[str, object],
        *,
        checkpoint: bool = False,
        force_sync: bool = False,
    ) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        frame = self._frame(entry)
        if self._faults is not None:
            if not checkpoint:
                self._faults.check("journal.append")
            torn = self._faults.check("journal.torn", frame_len=len(frame))
            if torn is not None:
                # The injected crash-mid-write: a prefix reaches the file,
                # then the "process dies" — recovery must truncate it.
                self._fh.write(frame[:torn])
                self._fh.flush()
                raise InjectedTornWrite(
                    f"torn journal write: {torn}/{len(frame)} bytes persisted"
                )
        self._fh.write(frame)
        self._fh.flush()
        if (
            force_sync
            or self.fsync_policy == "always"
            or (checkpoint and self.fsync_policy == "checkpoint")
        ):
            if self._faults is not None:
                self._faults.check("journal.fsync")
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
        self.records_appended += 1
        self.bytes_appended += len(frame)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(
        self,
        dataset: TruthDiscoveryDataset,
        *,
        epoch: int,
        dataset_version: int,
        records_version: int,
        applied_writes: int,
    ) -> Dict[str, int]:
        """Atomically rewrite the journal as ``base = dataset`` + checkpoint.

        Only legal when ``dataset`` *is* the journal's replay state — i.e.
        right after a checkpoint, when every journaled batch is applied and
        published. The replacement file is built beside the live one
        (``<name>.compact``), fsynced, then swapped in with one atomic
        ``os.replace`` plus a directory fsync: a crash before the rename
        leaves the old journal untouched (plus a harmless temp file the next
        compaction overwrites); a crash after it leaves the new journal
        complete. There is no intermediate state — the two fault-injection
        sites below pin exactly those kill points.

        ``batch_seq`` keeps counting (sequence numbers stay unique across
        compactions). Returns ``{"before_bytes": ..., "after_bytes": ...}``.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        self._fh.flush()
        before_bytes = self.path.stat().st_size
        if self._faults is not None:
            self._faults.check("journal.compact")
        tmp_path = self.path.with_name(self.path.name + ".compact")
        checkpoint_entry = {
            "kind": "checkpoint",
            "epoch": epoch,
            "dataset_version": dataset_version,
            "records_version": records_version,
            "applied_writes": applied_writes,
        }
        with open(tmp_path, "wb") as tmp:
            tmp.write(MAGIC)
            tmp.write(self._frame(self._base_entry(dataset)))
            tmp.write(self._frame(checkpoint_entry))
            tmp.flush()
            os.fsync(tmp.fileno())
        if self._faults is not None:
            # The kill point *after* the temp file is durable but *before*
            # the swap: the old journal (still open, still live) must win.
            self._faults.check("journal.compact.rename")
        self._fh.close()
        self._fh = None
        os.replace(tmp_path, self.path)
        self._sync_parent_dir()
        self._fh = open(self.path, "ab")
        after_bytes = self.path.stat().st_size
        self.compactions += 1
        self.records_appended += 2
        self.checkpoints_appended += 1
        self.fsyncs += 1
        return {"before_bytes": before_bytes, "after_bytes": after_bytes}

    def _sync_parent_dir(self) -> None:
        """Fsync the journal's directory so the rename itself is durable."""
        try:
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform without dir-fsync
            pass
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # lifecycle & introspection
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush and fsync regardless of policy."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.fsyncs += 1

    def close(self, *, sync: bool = True) -> None:
        """Close the handle, fsync-ing first unless ``sync=False``."""
        if self._fh is None:
            return
        if sync:
            self.sync()
        self._fh.close()
        self._fh = None

    def abort(self) -> None:
        """Simulated process death: drop the handle with no final sync."""
        self.close(sync=False)

    @property
    def closed(self) -> bool:
        return self._fh is None

    def stats(self) -> Dict[str, object]:
        """Plain-dict counters for ``service.stats()`` / logging."""
        return {
            "path": str(self.path),
            "fsync": self.fsync_policy,
            "records_appended": self.records_appended,
            "batches_appended": self.batches_appended,
            "checkpoints_appended": self.checkpoints_appended,
            "quarantines_appended": self.quarantines_appended,
            "compactions": self.compactions,
            "auto_compact_bytes": self.auto_compact_bytes,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
            "file_bytes": self.path.stat().st_size if self.path.exists() else 0,
            "closed": self.closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadJournal({str(self.path)!r}, fsync={self.fsync_policy!r},"
            f" records={self.records_appended}, closed={self.closed})"
        )


class InjectedTornWrite(OSError):
    """The error completing an injected torn journal write (bytes persisted)."""

"""Serving metrics: counters the service/worker maintain, latency percentiles.

Everything here is plain-Python and allocation-light on the hot paths — a
read bumps one integer, a latency sample appends one float — because the
metrics sit inside the lock-free read path and the per-batch worker loop.
The percentile math matches ``np.percentile``'s default linear interpolation
(the benchmark's p50/p99 numbers are therefore directly comparable across
runs and tools).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


@dataclass
class LatencyRecorder:
    """Bounded reservoir of latency samples with percentile summaries.

    Samples are wall-clock seconds; :meth:`summary` reports microseconds
    (the natural unit for lock-free snapshot reads). Once ``cap`` samples
    are held, further samples are dropped but still counted — load tests
    keep O(1) memory while ``count`` stays exact.
    """

    cap: int = 100_000
    samples: List[float] = field(default_factory=list)
    count: int = 0

    def record(self, seconds: float) -> None:
        self.count += 1
        if len(self.samples) < self.cap:
            self.samples.append(seconds)

    def summary(self) -> Dict[str, float]:
        """``{count, mean_us, p50_us, p99_us, max_us}`` of the reservoir."""
        if not self.samples:
            return {"count": 0}
        arr = np.asarray(self.samples, dtype=float) * 1e6
        return {
            "count": self.count,
            "mean_us": float(arr.mean()),
            "p50_us": float(np.percentile(arr, 50)),
            "p99_us": float(np.percentile(arr, 99)),
            "max_us": float(arr.max()),
        }


@dataclass
class ServiceMetrics:
    """Counters for one :class:`~repro.serving.service.TruthService`.

    Write-side counters move in a strict order — ``writes_accepted`` at
    enqueue, then exactly one of ``writes_applied`` / ``writes_rejected`` when
    the worker consumes the write — so ``accepted - applied - rejected`` is
    the number of writes still in flight (queued or mid-batch). Per-read
    staleness is derived against the *published* stamp instead
    (:attr:`~repro.serving.snapshots.PublishedResult.applied_writes`), which
    also counts writes applied to the dataset but not yet visible to readers.

    ``journal_failures`` counts batches whose write-ahead append failed (the
    batch is never applied); ``worker_failures`` counts batch-loop
    exceptions. Unsupervised, each one fail-stops the worker (recovery from
    the journal is the path back); under a supervisor each failure instead
    feeds the healing counters — ``worker_restarts``, ``quarantines`` /
    ``quarantined_writes`` (poison batches excluded from the dataset),
    ``fit_timeouts`` (watchdog-abandoned fits), ``compactions`` (journal
    rewrites), ``writes_shed`` (typed ``Overloaded`` rejections while
    degraded) and ``degraded_seconds_total`` (cumulative wall-clock the
    service spent serving reads without a live worker).
    """

    writes_accepted: int = 0
    writes_applied: int = 0
    writes_rejected: int = 0
    batches: int = 0
    last_batch_size: int = 0
    fits_cold: int = 0
    fits_incremental: int = 0
    warm_start_degradations: int = 0
    #: Per-cause tallies (``"clone"`` / ``"unservable-record-window"``) from
    #: the structured :class:`~repro.inference.base.WarmStartDegradation`
    #: reasons; sums to ``warm_start_degradations``.
    warm_start_degradation_reasons: Dict[str, int] = field(default_factory=dict)
    fit_seconds_total: float = 0.0
    last_fit_seconds: float = 0.0
    reads: int = 0
    queue_high_watermark: int = 0
    journal_failures: int = 0
    worker_failures: int = 0
    worker_restarts: int = 0
    quarantines: int = 0
    quarantined_writes: int = 0
    fit_timeouts: int = 0
    compactions: int = 0
    writes_shed: int = 0
    degraded_seconds_total: float = 0.0

    @property
    def writes_acked(self) -> int:
        """Writes fully resolved (applied or rejected)."""
        return self.writes_applied + self.writes_rejected

    @property
    def fits(self) -> int:
        return self.fits_cold + self.fits_incremental

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_watermark:
            self.queue_high_watermark = depth

    def note_fit(
        self, seconds: float, incremental: bool, degraded: Sequence[str] = ()
    ) -> None:
        if incremental:
            self.fits_incremental += 1
        else:
            self.fits_cold += 1
        self.warm_start_degradations += len(degraded)
        for reason in degraded:
            self.warm_start_degradation_reasons[reason] = (
                self.warm_start_degradation_reasons.get(reason, 0) + 1
            )
        self.fit_seconds_total += seconds
        self.last_fit_seconds = seconds

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """A plain-dict view (stable keys) for logging / JSON artifacts."""
        out: Dict[str, object] = {
            "writes_accepted": self.writes_accepted,
            "writes_applied": self.writes_applied,
            "writes_rejected": self.writes_rejected,
            "batches": self.batches,
            "last_batch_size": self.last_batch_size,
            "fits_cold": self.fits_cold,
            "fits_incremental": self.fits_incremental,
            "warm_start_degradations": self.warm_start_degradations,
            "warm_start_degradation_reasons": dict(self.warm_start_degradation_reasons),
            "fit_seconds_total": self.fit_seconds_total,
            "last_fit_seconds": self.last_fit_seconds,
            "reads": self.reads,
            "queue_high_watermark": self.queue_high_watermark,
            "journal_failures": self.journal_failures,
            "worker_failures": self.worker_failures,
            "worker_restarts": self.worker_restarts,
            "quarantines": self.quarantines,
            "quarantined_writes": self.quarantined_writes,
            "fit_timeouts": self.fit_timeouts,
            "compactions": self.compactions,
            "writes_shed": self.writes_shed,
            "degraded_seconds_total": self.degraded_seconds_total,
        }
        if extra:
            out.update(extra)
        return out

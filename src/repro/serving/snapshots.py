"""Versioned publication: immutable published results behind an atomic pointer.

The serving layer's read side is built on one invariant the rest of the
codebase already provides: a fitted :class:`~repro.inference.base.
InferenceResult` over an immutable columnar snapshot is never mutated after
the fit returns. Publication therefore needs no reader locks at all — the
EM worker wraps each fit in a :class:`PublishedResult` (truths exposed as an
O(1)-to-build mapping view, version stamps attached) and swaps it into
:attr:`SnapshotStore.latest`
with a single attribute store, which is atomic under the interpreter. Readers
grab the pointer once per call and resolve everything against that one frozen
object, so a concurrent publish can never produce a torn read: a reader sees
the old snapshot in full or the new snapshot in full, nothing in between.

Version stamps make staleness *observable* instead of hidden: every snapshot
carries the dataset mutation counter (``dataset_version``), the record-only
counter (``records_version``) and a densely increasing ``epoch``.
:meth:`SnapshotStore.publish` enforces that epochs increase by exactly one
and dataset versions never regress — the monotonicity contract the
concurrent-reader tests assert from the outside.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Mapping, Optional

from ..data.model import ObjectId
from ..hierarchy.tree import Value
from ..inference.base import InferenceResult


class PublicationError(RuntimeError):
    """An attempted publish broke the epoch/version monotonicity contract."""


@dataclass(frozen=True)
class PublishedResult:
    """One immutable published fit: truths plus the stamps that date them.

    Attributes
    ----------
    result:
        The fitted inference result (confidences, trust state, ...).
    truths:
        ``object -> value`` view over the fit (a plain dict, or a lazy
        mapping backed by the fit's flat arrays — publishing is O(1) either
        way; the argmax is paid per read, or once on first bulk iteration).
        Treated as immutable after construction.
    epoch:
        Dense publication counter: the initial fit publishes epoch 0, every
        later publish increments by exactly one.
    dataset_version / records_version:
        The dataset's mutation counters at fit time
        (:attr:`~repro.data.model.TruthDiscoveryDataset.version` /
        :attr:`~repro.data.model.TruthDiscoveryDataset.records_version`).
    applied_writes:
        Cumulative count of service writes covered by this snapshot; the
        service derives per-read staleness (``lag_writes``) from it.
    incremental:
        ``True`` when the fit was served by the dirty-frontier path
        (``frontier_size`` then says how many objects re-converged).
    fit_seconds:
        Wall-clock cost of the fit behind this snapshot.
    published_at:
        ``time.monotonic()`` at publish; :meth:`age_seconds` measures from it.
    """

    result: InferenceResult
    truths: Mapping[ObjectId, Value]
    epoch: int
    dataset_version: int
    records_version: int
    applied_writes: int
    incremental: bool
    frontier_size: Optional[int]
    fit_seconds: float
    published_at: float

    def age_seconds(self) -> float:
        """Seconds since this snapshot was published."""
        return time.monotonic() - self.published_at


class SnapshotStore:
    """Atomic latest-:class:`PublishedResult` pointer plus a bounded history.

    ``latest`` is the lock-free read side: a plain attribute load, safe from
    any coroutine (or thread — snapshots are immutable). ``publish`` is only
    ever called by the single EM worker, which is what lets the monotonicity
    checks be plain comparisons instead of a compare-and-swap loop.
    """

    def __init__(self, history: int = 8, *, base_epoch: int = 0) -> None:
        if base_epoch < 0:
            raise ValueError("base_epoch must be >= 0")
        self._latest: Optional[PublishedResult] = None
        self._history: Deque[PublishedResult] = deque(maxlen=max(1, history))
        self._base_epoch = base_epoch

    @property
    def base_epoch(self) -> int:
        """The epoch the first publish must carry.

        0 for a fresh service; recovery seeds it with the journaled
        checkpoint epoch + 1, so epochs stay dense *across* process restarts
        and readers comparing stamps before/after a crash never see a
        regression.
        """
        return self._base_epoch

    @property
    def latest(self) -> Optional[PublishedResult]:
        """The newest snapshot, or ``None`` before the first publish."""
        return self._latest

    @property
    def history(self) -> List[PublishedResult]:
        """The most recent publishes, oldest first (bounded ring)."""
        return list(self._history)

    def publish(self, snapshot: PublishedResult) -> PublishedResult:
        """Swap ``snapshot`` in as the latest, enforcing monotonicity."""
        latest = self._latest
        if latest is None:
            if snapshot.epoch != self._base_epoch:
                raise PublicationError(
                    f"first publish must be epoch {self._base_epoch},"
                    f" got {snapshot.epoch}"
                )
        else:
            if snapshot.epoch != latest.epoch + 1:
                raise PublicationError(
                    f"epoch must advance by exactly 1 (latest {latest.epoch},"
                    f" got {snapshot.epoch})"
                )
            if snapshot.dataset_version < latest.dataset_version:
                raise PublicationError(
                    f"dataset_version regressed: {latest.dataset_version} ->"
                    f" {snapshot.dataset_version}"
                )
        self._history.append(snapshot)
        # The publication point: one atomic store. Readers holding the old
        # pointer keep a fully consistent (merely older) view.
        self._latest = snapshot
        return snapshot

"""`TruthService`: the always-on asyncio truth-serving layer.

The per-script lifecycle everywhere else in this package is *load → fit →
report*. This module turns the same engine into a long-running service:

```
 writers ──append_claim/append_answer──▶ asyncio.Queue (maxsize = backpressure)
                                            │  micro-batches
                                            ▼
                                    EMWorker (one task)
          journal batch (WAL) → apply → off-loop warm/incremental fit
                        → publish → journal epoch checkpoint
                                            │
                                            ▼
                              SnapshotStore.latest  (atomic pointer)
                                            ▲
 readers ◀──get_truth/get_truths────────────┘   lock-free, version-stamped
```

With a :class:`~repro.serving.journal.WriteAheadJournal` attached the
accepted write stream is durable (journaled before it is applied) and the
service is crash-recoverable via :func:`~repro.serving.recovery.recover`;
fits run in a single-thread executor by default (``off_loop_fits``) so a
cold refit never freezes the event loop.

Consistency contract (see ``docs/serving.md`` for the full statement):

* **atomic snapshots** — a read resolves entirely against one immutable
  :class:`~repro.serving.snapshots.PublishedResult`; a multi-object
  ``get_truths`` never mixes epochs;
* **monotonic epochs** — successive reads observe non-decreasing
  ``epoch`` / ``dataset_version`` stamps (enforced at publish);
* **read-your-writes-eventually** — an accepted write is visible to readers
  after its ticket resolves, and after ``drain()`` returns every accepted
  write is visible (or rejected onto its ticket);
* **bounded ingest** — at most ``max_pending`` writes queue ahead of the EM
  worker; beyond that ``append_*`` awaits, which is the backpressure that
  keeps a write burst from outrunning fits unboundedly.

Reads are synchronous plain calls (no ``await``): the hot path is a dict
lookup on the latest snapshot plus staleness bookkeeping, so readers never
contend with the worker for anything but the GIL.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..data.model import (
    Answer,
    ObjectId,
    Record,
    SourceId,
    TruthDiscoveryDataset,
    WorkerId,
)
from ..hierarchy.tree import Value
from ..inference.base import TruthInferenceAlgorithm
from ..inference.tdh import TDHModel
from .faults import FaultInjector
from .journal import WriteAheadJournal
from .metrics import ServiceMetrics
from .snapshots import PublishedResult, SnapshotStore
from .supervisor import SupervisionPolicy, Supervisor
from .worker import EMWorker, Write


class ServiceNotStarted(RuntimeError):
    """A read or write arrived before ``start()`` published epoch 0."""


class ServiceClosed(RuntimeError):
    """A write arrived after ``stop()`` began refusing new writes."""


class Overloaded(RuntimeError):
    """A write was shed: the queue is full while the service is degraded.

    Healthy services apply backpressure instead (``append_*`` awaits queue
    space); a degraded one — worker down, mid-restart — must not let writers
    block on a queue nothing is consuming, so beyond ``max_pending`` it
    fails fast with this typed error. Counted in ``metrics.writes_shed``.
    """


@dataclass(frozen=True)
class TruthRead:
    """One lock-free read: the truth plus the stamps that date it.

    ``lag_writes`` is the number of writes the service had accepted but not
    yet published when the read happened — 0 means the reader saw a fully
    caught-up snapshot. ``staleness_seconds`` is the snapshot's age.
    ``degraded`` is True while a supervised service's worker is down or
    restarting (the snapshot is still the last published truth — reads
    never fail over a worker crash), and ``time_in_degraded`` is how long
    the current degraded period has lasted at read time.
    """

    object: ObjectId
    value: Value
    confidence: float
    epoch: int
    dataset_version: int
    records_version: int
    incremental: bool
    lag_writes: int
    staleness_seconds: float
    degraded: bool = False
    time_in_degraded: float = 0.0


class TruthService:
    """Always-on truth discovery over one live dataset.

    Parameters
    ----------
    dataset:
        The live dataset; must already hold at least one record (the service
        appends onto it, it does not bootstrap an empty corpus).
    model:
        Any truth-inference algorithm. Defaults to
        ``TDHModel(use_columnar=True, incremental=True)`` — the dirty-frontier
        configuration, so steady-state answer traffic costs O(frontier) per
        batch. Models whose ``fit`` accepts ``warm_start`` are warm-started
        from the latest publish; others are simply refitted.
    max_pending:
        Write-queue capacity — the backpressure knob. ``append_*`` awaits
        once this many writes are queued ahead of the EM worker.
    batch_max / batch_wait:
        Micro-batching: up to ``batch_max`` queued writes are folded into one
        fit; ``batch_wait`` seconds of linger (0 = none) lets sparse writers
        coalesce instead of paying one fit per write.
    history:
        How many published snapshots the store retains for inspection.
    journal:
        Optional :class:`~repro.serving.journal.WriteAheadJournal`. When
        attached, every micro-batch is journaled *before* it is applied
        (WAL order) and every publish appends an epoch checkpoint, making
        the accepted write stream crash-recoverable via
        :func:`~repro.serving.recovery.recover`. A fresh journal gets the
        full base dataset written at ``start()`` so recovery is
        self-contained.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector` — the
        deterministic crash harness threaded through journal/worker sites.
        Production services leave it ``None``.
    off_loop_fits:
        When true (default) every fit runs in a single-thread executor so
        reads and enqueues stay responsive during cold refits; false keeps
        the PR-7 on-loop behaviour (used by the blocking-regression test).
    initial_epoch:
        The epoch the first publish carries — 0 for a fresh service;
        recovery passes the journaled checkpoint epoch + 1 so epochs stay
        dense across restarts.
    supervision:
        Optional :class:`~repro.serving.supervisor.SupervisionPolicy`.
        When given, the worker runs under a
        :class:`~repro.serving.supervisor.Supervisor` — batch-loop crashes
        roll back to the last published state and restart with backoff,
        poison batches are quarantined, fits are watchdogged, and reads
        stay live (``degraded`` stamps) while the worker heals. ``None``
        keeps the PR-7..9 fail-stop policy.
    """

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        model: Optional[TruthInferenceAlgorithm] = None,
        *,
        max_pending: int = 1024,
        batch_max: int = 256,
        batch_wait: float = 0.0,
        history: int = 8,
        journal: Optional[WriteAheadJournal] = None,
        faults: Optional[FaultInjector] = None,
        off_loop_fits: bool = True,
        initial_epoch: int = 0,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._dataset = dataset
        self._model = model if model is not None else TDHModel(
            use_columnar=True, incremental=True
        )
        self._accepts_warm_start = (
            "warm_start" in inspect.signature(self._model.fit).parameters
        )
        self._max_pending = max_pending
        self._batch_max = batch_max
        self._batch_wait = batch_wait
        self._journal = journal
        self._faults = faults
        self._off_loop_fits = off_loop_fits
        self._store = SnapshotStore(history=history, base_epoch=initial_epoch)
        self.metrics = ServiceMetrics()
        self._supervision = supervision
        self._queue: Optional["asyncio.Queue[Write]"] = None
        self.worker: Optional[EMWorker] = None
        self.supervisor: Optional[Supervisor] = None
        self._worker_task: Optional["asyncio.Task[None]"] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, run_worker: bool = True) -> "TruthService":
        """Publish the epoch-0 cold fit and (by default) spawn the worker.

        ``run_worker=False`` leaves the batch loop unscheduled so tests can
        drive it deterministically via ``service.worker.step()``.
        """
        if self._started:
            raise RuntimeError("TruthService.start() called twice")
        if self._closed:
            raise ServiceClosed("service already stopped")
        if not self._dataset.objects:
            raise ValueError("TruthService needs a dataset with at least one record")
        if self._journal is not None and self._journal.is_fresh:
            # A fresh journal opens with the full base dataset, making the
            # file self-contained: recover(path) needs no external corpus.
            self._journal.append_base(self._dataset)
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self.worker = EMWorker(
            self._dataset,
            self._model,
            self._queue,
            self._store,
            self.metrics,
            accepts_warm_start=self._accepts_warm_start,
            batch_max=self._batch_max,
            batch_wait=self._batch_wait,
            journal=self._journal,
            faults=self._faults,
            off_loop_fits=self._off_loop_fits,
            supervised=self._supervision is not None,
            fit_timeout=(
                self._supervision.fit_timeout
                if self._supervision is not None
                else None
            ),
        )
        if self._supervision is not None:
            # Built before the initial fit so its rollback ledger anchors at
            # the pristine dataset and its commit hook sees every publish.
            self.supervisor = Supervisor(self, self._supervision)
        # The initial fit before any write is accepted: readers never see
        # "no data". Epoch 0 on a fresh service; the journaled resume epoch
        # on a recovered one. Startup is not supervised: a crash here is a
        # configuration problem, not a runtime fault to heal around.
        await self.worker.fit_and_publish()
        self._started = True
        if run_worker:
            runner = (
                self.supervisor.run() if self.supervisor is not None
                else self.worker.run()
            )
            self._worker_task = asyncio.create_task(
                runner, name="truth-service-em-worker"
            )
        return self

    async def drain(self) -> PublishedResult:
        """Wait until every accepted write is published (or rejected).

        Requires the worker task (or an external driver calling
        ``worker.step()``) to be consuming the queue. Returns the snapshot
        that is latest once the queue is fully processed.

        If the worker task dies mid-drain — a fail-stop crash, or a
        supervised service exhausting its restart budget — the barrier can
        never complete, so instead of hanging forever this raises the
        worker's own failure (``ServiceClosed`` if it was cancelled).
        """
        self._require_started()
        join = asyncio.ensure_future(self._queue.join())
        sentinel = self._worker_task
        if sentinel is None:
            # Manually driven service (run_worker=False): there is no task
            # whose death could strand the barrier — the driver is us.
            await join
            return self._store.latest
        await asyncio.wait({join, sentinel}, return_when=asyncio.FIRST_COMPLETED)
        if join.done():
            # Fully processed wins even if the worker stopped in the same
            # tick — every write is resolved, which is what drain promises.
            return self._store.latest
        join.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await join
        failure = None if sentinel.cancelled() else sentinel.exception()
        if failure is not None:
            raise failure
        raise ServiceClosed("EM worker was cancelled mid-drain")

    async def stop(self, *, drain: bool = True) -> None:
        """Refuse new writes, optionally drain, then tear down cleanly.

        The journal (when attached) is closed with a final fsync, and the
        fit executor is released. A fail-stopped worker's exception is
        swallowed here — it already surfaced on the crashed batch's tickets.
        """
        if not self._started or self._queue is None:
            self._closed = True
            return
        self._closed = True
        if drain and (self._worker_task is not None and not self._worker_task.done()):
            # The guarded barrier: a worker dying mid-drain raises instead
            # of hanging; during teardown that failure is swallowed here —
            # it already surfaced on the crashed batch's tickets.
            with contextlib.suppress(Exception):
                await self.drain()
        if self._worker_task is not None:
            if self._worker_task.done():
                if not self._worker_task.cancelled():
                    self._worker_task.exception()  # mark retrieved
            else:
                self._worker_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._worker_task
            self._worker_task = None
        if self.supervisor is not None:
            # A stop while degraded may leave a parked batch (and queued
            # writes) with unresolved tickets; fail them so no writer
            # awaits a heal that will never come.
            self.supervisor.abandon_pending(
                ServiceClosed("service stopped while writes were pending")
            )
        if self.worker is not None:
            self.worker.shutdown()
        if self._journal is not None and not self._journal.closed:
            self._journal.close()

    def crash(self) -> None:
        """Simulate abrupt process death (the fault harness's kill switch).

        No drain, no final journal sync, no ticket resolution: the worker
        task is cancelled where it stands, the journal handle is dropped,
        and the service refuses everything from here on. Whatever the
        journal already holds is what :func:`~repro.serving.recovery.
        recover` will restore — exactly the accepted durable prefix.
        """
        self._closed = True
        if self._worker_task is not None:
            if self._worker_task.done() and not self._worker_task.cancelled():
                self._worker_task.exception()  # mark retrieved
            else:
                self._worker_task.cancel()
            self._worker_task = None
        if self.worker is not None:
            self.worker.shutdown()
        if self._journal is not None and not self._journal.closed:
            self._journal.abort()

    async def __aenter__(self) -> "TruthService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # On a clean exit drain first (read-your-writes for the block's
        # writers); on an exception just tear down.
        await self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    async def append_claim(
        self, obj: ObjectId, source: SourceId, value: Value
    ) -> "asyncio.Future[int]":
        """Enqueue a source claim; returns the write's awaitable ticket.

        Note a record append moves ``records_version``, so the covering fit
        runs cold (the warm-start gate refuses the seed — counted in
        ``metrics.warm_start_degradations``, not warned). Claims are the
        slow, rare path; answers are the hot one.
        """
        return await self._enqueue(Write(Record(obj, source, value)))

    async def append_answer(
        self, obj: ObjectId, worker: WorkerId, value: Value
    ) -> "asyncio.Future[int]":
        """Enqueue a crowd answer; returns the write's awaitable ticket.

        Validation happens at apply time against the dataset state the write
        actually lands on (an answer must name an existing candidate value);
        a rejected write resolves its ticket with the ``DatasetError``.
        """
        return await self._enqueue(Write(Answer(obj, worker, value)))

    async def _enqueue(self, write: Write) -> "asyncio.Future[int]":
        self._require_started()
        if self._closed:
            raise ServiceClosed("service is stopping; write refused")
        if self._worker_task is not None and self._worker_task.done():
            # Fail-stop aftermath: the worker died (journal append failed,
            # fit raised, ...). Accepting more writes would queue them into
            # nowhere — refuse loudly; recovery from the journal is the way
            # back to a writable service.
            failure = (
                None
                if self._worker_task.cancelled()
                else self._worker_task.exception()
            )
            raise ServiceClosed(f"EM worker has stopped ({failure!r}); write refused")
        write.ticket = asyncio.get_running_loop().create_future()
        if (
            self.supervisor is not None
            and self.supervisor.degraded_since is not None
        ):
            # Degraded mode: nothing is consuming the queue right now, so
            # blocking on backpressure could block on a heal that takes
            # arbitrarily long. Queue within capacity, shed loudly beyond.
            try:
                self._queue.put_nowait(write)
            except asyncio.QueueFull:
                self.metrics.writes_shed += 1
                raise Overloaded(
                    f"queue full ({self._queue.maxsize} pending) while the"
                    " worker is restarting; write shed"
                ) from None
        else:
            await self._queue.put(write)  # backpressure point
        self.metrics.writes_accepted += 1
        self.metrics.note_queue_depth(self._queue.qsize())
        return write.ticket

    # ------------------------------------------------------------------
    # read side (synchronous, lock-free)
    # ------------------------------------------------------------------
    @property
    def latest(self) -> PublishedResult:
        """The latest published snapshot (raises before ``start()``)."""
        self._require_started()
        return self._store.latest

    @property
    def history(self):
        """Recent publishes, oldest first (bounded by ``history``)."""
        return self._store.history

    def get_truth(self, obj: ObjectId) -> TruthRead:
        """Resolve one object's truth against the latest snapshot."""
        return self._read(self._snapshot(), obj)

    def get_truths(
        self, ids: Optional[Iterable[ObjectId]] = None
    ) -> Dict[ObjectId, TruthRead]:
        """Resolve many truths against ONE snapshot (never mixed epochs).

        ``ids=None`` reads every object the snapshot covers.
        """
        snapshot = self._snapshot()
        if ids is None:
            ids = snapshot.truths.keys()
        return {obj: self._read(snapshot, obj) for obj in ids}

    def _snapshot(self) -> PublishedResult:
        self._require_started()
        # The single pointer load every read in a call resolves against.
        return self._store.latest

    def _read(self, snapshot: PublishedResult, obj: ObjectId) -> TruthRead:
        try:
            value = snapshot.truths[obj]
        except KeyError:
            raise KeyError(
                f"object {obj!r} is not covered by snapshot epoch"
                f" {snapshot.epoch} (it may have been appended after the"
                " latest publish)"
            ) from None
        self.metrics.reads += 1
        lag = (
            self.metrics.writes_accepted
            - self.metrics.writes_rejected
            - snapshot.applied_writes
        )
        degraded_since = (
            self.supervisor.degraded_since if self.supervisor is not None else None
        )
        return TruthRead(
            object=obj,
            value=value,
            confidence=snapshot.result.confidence(obj).get(value, 0.0),
            epoch=snapshot.epoch,
            dataset_version=snapshot.dataset_version,
            records_version=snapshot.records_version,
            incremental=snapshot.incremental,
            lag_writes=max(0, lag),
            staleness_seconds=snapshot.age_seconds(),
            degraded=degraded_since is not None,
            time_in_degraded=(
                time.monotonic() - degraded_since
                if degraded_since is not None
                else 0.0
            ),
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _adopt_dataset(self, dataset: TruthDiscoveryDataset) -> None:
        """Swap in a rolled-back dataset (supervisor-only, worker parked)."""
        self._dataset = dataset
        self.worker.replace_dataset(dataset)

    async def compact(self) -> Dict[str, int]:
        """Drain, then rewrite the journal as base = the current dataset.

        The drain is what makes the rewrite legal: once every accepted write
        is published, the live dataset *is* the journal's replay state, so
        replacing history with it loses nothing. Returns ``compact()``'s
        ``{before_bytes, after_bytes}``. Raises when no journal is attached.
        """
        self._require_started()
        if self._journal is None:
            raise ValueError("compact() needs a journal-backed service")
        await self.drain()
        latest = self._store.latest
        info = self._journal.compact(
            self._dataset,
            epoch=latest.epoch,
            dataset_version=latest.dataset_version,
            records_version=latest.records_version,
            applied_writes=latest.applied_writes,
        )
        self.metrics.compactions += 1
        if self.supervisor is not None:
            self.supervisor.rebase_ledger()
        return info

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Metrics plus the latest snapshot's stamps, as one plain dict."""
        latest = self._store.latest
        extra: Dict[str, object] = {
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "started": self._started,
            "closed": self._closed,
            "worker_alive": bool(
                self._worker_task is not None and not self._worker_task.done()
            ),
            "off_loop_fits": self._off_loop_fits,
            "supervised": self.supervisor is not None,
        }
        if self.supervisor is not None:
            extra["supervisor"] = self.supervisor.stats()
        if self._journal is not None:
            extra["journal"] = self._journal.stats()
        if latest is not None:
            extra.update(
                epoch=latest.epoch,
                dataset_version=latest.dataset_version,
                records_version=latest.records_version,
                frontier_size=latest.frontier_size,
                snapshot_age_seconds=latest.age_seconds(),
            )
        return self.metrics.snapshot(extra)

    def _require_started(self) -> None:
        if not self._started or self._store.latest is None:
            raise ServiceNotStarted(
                "TruthService.start() has not published an initial snapshot yet"
            )

"""Always-on serving: an asyncio truth service over versioned snapshots.

Writers append claims/answers into a bounded queue; a single background EM
worker batches them onto the live dataset (the columnar appender splices each
batch into a new immutable snapshot), refits warm/incrementally, and
publishes the result behind an atomic latest-snapshot pointer that readers
hit lock-free. See ``docs/serving.md`` for the architecture, the
staleness/consistency contract and a runnable round-trip.
"""

from .metrics import LatencyRecorder, ServiceMetrics, percentile
from .service import ServiceClosed, ServiceNotStarted, TruthRead, TruthService
from .snapshots import PublicationError, PublishedResult, SnapshotStore
from .worker import EMWorker, Write

__all__ = [
    "TruthService",
    "TruthRead",
    "ServiceClosed",
    "ServiceNotStarted",
    "PublishedResult",
    "SnapshotStore",
    "PublicationError",
    "EMWorker",
    "Write",
    "ServiceMetrics",
    "LatencyRecorder",
    "percentile",
]

"""Always-on serving: an asyncio truth service over versioned snapshots.

Writers append claims/answers into a bounded queue; a single background EM
worker journals each micro-batch to a write-ahead journal (when attached),
batches it onto the live dataset (the columnar appender splices each batch
into a new immutable snapshot), refits warm/incrementally off the event
loop, and publishes the result behind an atomic latest-snapshot pointer
that readers hit lock-free. After a crash, :func:`recover` replays the
journal into an identical dataset and restarts the service at the next
epoch. With a :class:`SupervisionPolicy` attached the service is
self-healing in-process too: worker crashes roll back to the last published
state and restart with backoff, poison batches are quarantined
(:class:`BatchQuarantined`), wedged fits are watchdogged
(:class:`FitTimeout`), reads stay live while degraded, and the journal is
bounded by compaction. See ``docs/serving.md`` for the architecture, the
staleness / consistency / durability contracts and runnable round-trips.
"""

from .faults import FaultInjector, InjectedFault
from .journal import (
    FSYNC_POLICIES,
    InjectedTornWrite,
    JournalError,
    JournalScan,
    WriteAheadJournal,
    scan_journal,
    truncate_torn_tail,
)
from .metrics import LatencyRecorder, ServiceMetrics, percentile
from .recovery import RecoveryReport, rebuild_dataset, recover
from .service import (
    Overloaded,
    ServiceClosed,
    ServiceNotStarted,
    TruthRead,
    TruthService,
)
from .snapshots import PublicationError, PublishedResult, SnapshotStore
from .supervisor import BatchQuarantined, SupervisionPolicy, Supervisor
from .worker import EMWorker, FitTimeout, PendingBatch, Write

__all__ = [
    "TruthService",
    "TruthRead",
    "ServiceClosed",
    "ServiceNotStarted",
    "Overloaded",
    "Supervisor",
    "SupervisionPolicy",
    "BatchQuarantined",
    "FitTimeout",
    "PendingBatch",
    "PublishedResult",
    "SnapshotStore",
    "PublicationError",
    "EMWorker",
    "Write",
    "ServiceMetrics",
    "LatencyRecorder",
    "percentile",
    "WriteAheadJournal",
    "JournalError",
    "JournalScan",
    "InjectedTornWrite",
    "FSYNC_POLICIES",
    "scan_journal",
    "truncate_torn_tail",
    "recover",
    "rebuild_dataset",
    "RecoveryReport",
    "FaultInjector",
    "InjectedFault",
]

"""ASUMS — hierarchy-adapted SUMS (Beretta et al., WIMS 2016).

SUMS (Pasternack & Roth 2010) is the Hubs/Authorities-style fixed point:
source trust = sum of its claims' beliefs, value belief = sum of its
claimants' trusts, with max-normalisation each round. The hierarchical
adaptation lets a claim support its ancestors too, so a source claiming
"Liberty Island" also (partially) supports "NY".

Two properties the paper highlights — and that motivate TDH — are faithfully
reproduced: ASUMS keeps a *single* reliability per source (no generalization
tendency, Figure 5) and requires a **granularity threshold** ``tau`` to decide
how specific the output truth should be.

Fixed-point updates per round:

* **belief step**: ``B_o(v) = sum_{claims (o,s,v)} T(s) +
  rho sum_{claims (o,s,u), v in Go(u)} T(s)`` — a claim supports its value
  fully and each candidate ancestor by the fraction ``rho``
  (``ancestor_support``), then all beliefs are max-normalised globally;
* **trust step**: ``T(s) = sum_{claims (o,s,v)} B_o(v)``, max-normalised.

The columnar engine (``use_columnar``) scatters the trust mass with two
``np.bincount`` calls — one over the claim table, one over a claim x
candidate-ancestor expansion derived from the
:class:`~repro.data.columnar.ColumnarHierarchy` slot-level CSR arrays — and
vectorizes the deepest-within-``tau`` truth selection as a two-stage
per-object argmax (depth first, then belief, first-slot tie-break). The dict
loops stay as the reference; parity within 1e-8 is enforced by
``tests/test_columnar_parity.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Union

import numpy as np

from ..data.columnar import csr_expand, resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import ColumnarInferenceResult, InferenceResult, TruthInferenceAlgorithm


class Asums(TruthInferenceAlgorithm):
    """Hierarchy-aware SUMS fixed point with threshold-controlled specificity.

    Parameters
    ----------
    tau:
        Granularity threshold: among candidates whose belief is at least
        ``tau * max_belief``, the deepest (most specific) one is returned.
    ancestor_support:
        Fraction of a claim's trust that also flows to each candidate
        ancestor of the claimed value.
    max_iter / tol:
        Fixed-point stopping rule on normalised beliefs.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    """

    name = "ASUMS"
    supports_workers = True

    def __init__(
        self,
        tau: float = 0.8,
        ancestor_support: float = 0.5,
        max_iter: int = 50,
        tol: float = 1e-5,
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        self.tau = tau
        self.ancestor_support = ancestor_support
        self.max_iter = max_iter
        self.tol = tol
        self.use_columnar = use_columnar

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        hier = col.hierarchy
        trust = np.ones(col.n_claimants, dtype=np.float64)
        beliefs = np.ones(col.n_slots, dtype=np.float64)

        # Claim x candidate-ancestor expansion: row k pairs a claim with one
        # slot in Go(claimed value) — the targets of the partial support.
        anc_counts = hier.slot_gsize[col.claim_slot]
        anc_claim = np.repeat(
            np.arange(col.n_claims, dtype=np.int64), anc_counts
        )
        anc_slot = hier.slot_anc_slots[
            csr_expand(hier.slot_anc_offsets[col.claim_slot], anc_counts)
        ]

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            claim_trust = trust[col.claim_claimant]
            new_beliefs = np.bincount(
                col.claim_slot, weights=claim_trust, minlength=col.n_slots
            ) + self.ancestor_support * np.bincount(
                anc_slot, weights=claim_trust[anc_claim], minlength=col.n_slots
            )
            max_belief = max(float(new_beliefs.max()) if col.n_slots else 1.0, 1e-12)
            new_beliefs = new_beliefs / max_belief

            new_trust = np.bincount(
                col.claim_claimant,
                weights=new_beliefs[col.claim_slot],
                minlength=col.n_claimants,
            )
            max_trust = max(
                float(new_trust.max()) if col.n_claimants else 1.0, 1e-12
            )
            new_trust = new_trust / max_trust

            delta = (
                float(np.max(np.abs(new_beliefs - beliefs))) if col.n_slots else 0.0
            )
            beliefs = new_beliefs
            trust = new_trust
            if delta < self.tol:
                converged = True
                break

        # Truth selection: among candidates within tau of the object's peak
        # belief, the deepest wins; ties by higher belief, then first slot.
        if col.n_objects:
            peak = np.maximum.reduceat(beliefs, col.value_offsets[:-1])
        else:
            peak = np.zeros(0, dtype=np.float64)
        eligible = (peak[col.slot_obj] > 0) & (
            beliefs >= self.tau * peak[col.slot_obj]
        )
        eff_depth = np.where(eligible, hier.slot_depth, -1)
        if col.n_objects:
            max_depth = np.maximum.reduceat(eff_depth, col.value_offsets[:-1])
        else:
            max_depth = np.zeros(0, dtype=np.int64)
        best = eligible & (eff_depth == max_depth[col.slot_obj])
        masked = np.where(best, beliefs, -np.inf)
        chosen = col.segment_argmax_slot(masked)

        totals = col.segment_sum(beliefs)
        positive = (totals > 0)[col.slot_obj]
        safe = np.where(positive, totals[col.slot_obj], 1.0)
        scores = np.where(positive, beliefs / safe, beliefs)
        boost = np.zeros(col.n_slots, dtype=np.float64)
        boost[chosen] = 1.0
        flat_conf = 0.5 * scores + 0.5 * boost

        result = ColumnarInferenceResult(
            dataset, col, flat_conf, iterations, converged
        )
        result.trust = col.claimant_mapping(trust)  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        trust: Dict[Hashable, float] = {c: 1.0 for c in claimants}
        beliefs: Dict[ObjectId, np.ndarray] = {
            obj: np.ones(dataset.context(obj).size) for obj in dataset.objects
        }
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            # Belief step: claims support the claimed value and, partially,
            # its candidate ancestors.
            new_beliefs: Dict[ObjectId, np.ndarray] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                belief = np.zeros(ctx.size)
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    belief[u] += trust[claimant]
                    for ancestor_pos in ctx.ancestor_sets[u]:
                        belief[ancestor_pos] += self.ancestor_support * trust[claimant]
                new_beliefs[obj] = belief
            max_belief = max(
                (float(vec.max()) for vec in new_beliefs.values()), default=1.0
            )
            max_belief = max(max_belief, 1e-12)
            for obj in new_beliefs:
                new_beliefs[obj] = new_beliefs[obj] / max_belief

            # Trust step: a source is trusted if its claimed values are believed.
            new_trust: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            counts: Dict[Hashable, int] = {c: 0 for c in claimants}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                belief = new_beliefs[obj]
                for claimant, value in claims.items():
                    new_trust[claimant] += float(belief[ctx.index[value]])
                    counts[claimant] += 1
            max_trust = max(new_trust.values(), default=1.0)
            max_trust = max(max_trust, 1e-12)
            new_trust = {c: t / max_trust for c, t in new_trust.items()}

            delta = max(
                float(np.max(np.abs(new_beliefs[obj] - beliefs[obj])))
                for obj in beliefs
            )
            beliefs = new_beliefs
            trust = new_trust
            if delta < self.tol:
                converged = True
                break

        # Truth selection: deepest candidate within tau of the max belief.
        confidences: Dict[ObjectId, np.ndarray] = {}
        hierarchy = dataset.hierarchy
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            belief = beliefs[obj]
            peak = float(belief.max())
            chosen = 0
            best_depth = -1
            for pos, value in enumerate(ctx.values):
                if peak <= 0 or belief[pos] < self.tau * peak:
                    continue
                depth = hierarchy.depth(value)
                if depth > best_depth or (
                    depth == best_depth and belief[pos] > belief[chosen]
                ):
                    chosen = pos
                    best_depth = depth
            # Encode the selection while preserving belief ordering elsewhere.
            scores = belief.copy()
            if scores.sum() > 0:
                scores = scores / scores.sum()
            boost = np.zeros(ctx.size)
            boost[chosen] = 1.0
            confidences[obj] = 0.5 * scores + 0.5 * boost
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.trust = trust  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

"""ASUMS — hierarchy-adapted SUMS (Beretta et al., WIMS 2016).

SUMS (Pasternack & Roth 2010) is the Hubs/Authorities-style fixed point:
source trust = sum of its claims' beliefs, value belief = sum of its
claimants' trusts, with max-normalisation each round. The hierarchical
adaptation lets a claim support its ancestors too, so a source claiming
"Liberty Island" also (partially) supports "NY".

Two properties the paper highlights — and that motivate TDH — are faithfully
reproduced: ASUMS keeps a *single* reliability per source (no generalization
tendency, Figure 5) and requires a **granularity threshold** ``tau`` to decide
how specific the output truth should be.
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import InferenceResult, TruthInferenceAlgorithm


class Asums(TruthInferenceAlgorithm):
    """Hierarchy-aware SUMS fixed point with threshold-controlled specificity.

    Parameters
    ----------
    tau:
        Granularity threshold: among candidates whose belief is at least
        ``tau * max_belief``, the deepest (most specific) one is returned.
    ancestor_support:
        Fraction of a claim's trust that also flows to each candidate
        ancestor of the claimed value.
    max_iter / tol:
        Fixed-point stopping rule on normalised beliefs.
    """

    name = "ASUMS"
    supports_workers = True

    def __init__(
        self,
        tau: float = 0.8,
        ancestor_support: float = 0.5,
        max_iter: int = 50,
        tol: float = 1e-5,
    ) -> None:
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        self.tau = tau
        self.ancestor_support = ancestor_support
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        trust: Dict[Hashable, float] = {c: 1.0 for c in claimants}
        beliefs: Dict[ObjectId, np.ndarray] = {
            obj: np.ones(dataset.context(obj).size) for obj in dataset.objects
        }
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            # Belief step: claims support the claimed value and, partially,
            # its candidate ancestors.
            new_beliefs: Dict[ObjectId, np.ndarray] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                belief = np.zeros(ctx.size)
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    belief[u] += trust[claimant]
                    for ancestor_pos in ctx.ancestor_sets[u]:
                        belief[ancestor_pos] += self.ancestor_support * trust[claimant]
                new_beliefs[obj] = belief
            max_belief = max(
                (float(vec.max()) for vec in new_beliefs.values()), default=1.0
            )
            max_belief = max(max_belief, 1e-12)
            for obj in new_beliefs:
                new_beliefs[obj] = new_beliefs[obj] / max_belief

            # Trust step: a source is trusted if its claimed values are believed.
            new_trust: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            counts: Dict[Hashable, int] = {c: 0 for c in claimants}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                belief = new_beliefs[obj]
                for claimant, value in claims.items():
                    new_trust[claimant] += float(belief[ctx.index[value]])
                    counts[claimant] += 1
            max_trust = max(new_trust.values(), default=1.0)
            max_trust = max(max_trust, 1e-12)
            new_trust = {c: t / max_trust for c, t in new_trust.items()}

            delta = max(
                float(np.max(np.abs(new_beliefs[obj] - beliefs[obj])))
                for obj in beliefs
            )
            beliefs = new_beliefs
            trust = new_trust
            if delta < self.tol:
                converged = True
                break

        # Truth selection: deepest candidate within tau of the max belief.
        confidences: Dict[ObjectId, np.ndarray] = {}
        hierarchy = dataset.hierarchy
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            belief = beliefs[obj]
            peak = float(belief.max())
            chosen = 0
            best_depth = -1
            for pos, value in enumerate(ctx.values):
                if peak <= 0 or belief[pos] < self.tau * peak:
                    continue
                depth = hierarchy.depth(value)
                if depth > best_depth or (
                    depth == best_depth and belief[pos] > belief[chosen]
                ):
                    chosen = pos
                    best_depth = depth
            # Encode the selection while preserving belief ordering elsewhere.
            scores = belief.copy()
            if scores.sum() > 0:
                scores = scores / scores.sum()
            boost = np.zeros(ctx.size)
            boost[chosen] = 1.0
            confidences[obj] = 0.5 * scores + 0.5 * boost
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.trust = trust  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

"""DART — Domain-Aware multi-truth discovery (Lin & Chen, PVLDB 2018).

DART estimates, per source and *domain*, how completely and precisely the
source reports the truth set of an object. Our domain extraction matches the
DOCS adaptation (top-level hierarchy ancestor). Per the paper's Table 5, DART
trades precision for recall — it happily emits several values per object —
which our implementation reproduces via a permissive inclusion rule driven by
per-domain source recall.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value
from .base import InferenceResult, TruthInferenceAlgorithm
from .docs import Docs


class DartResult(InferenceResult):
    """DART result with thresholded multi-truth sets."""

    def __init__(self, dataset, confidences, truth_probability, threshold, iterations, converged):
        super().__init__(dataset, confidences, iterations, converged)
        self.truth_probability = truth_probability
        self.threshold = threshold

    def truth_sets(self) -> Dict[ObjectId, Set[Value]]:
        out: Dict[ObjectId, Set[Value]] = {}
        for obj, probs in self.truth_probability.items():
            ctx = self.dataset.context(obj)
            chosen = {
                value for value, p in zip(ctx.values, probs) if p >= self.threshold
            }
            if not chosen:
                chosen = {ctx.values[int(np.argmax(probs))]}
            out[obj] = chosen
        return out


class Dart(TruthInferenceAlgorithm):
    """Domain-aware multi-truth discovery.

    Parameters
    ----------
    threshold:
        Inclusion threshold on the per-value truth posterior. DART's published
        behaviour is recall-heavy, hence the low default.
    max_iter / tol:
        Fixed-point stopping rule.
    """

    name = "DART"
    supports_workers = True

    def __init__(self, threshold: float = 0.3, max_iter: int = 40, tol: float = 1e-5) -> None:
        self.threshold = threshold
        self.max_iter = max_iter
        self.tol = tol
        self._domains = Docs()

    def fit(self, dataset: TruthDiscoveryDataset) -> DartResult:
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        domains = {
            obj: self._domains.object_domain(dataset, obj) for obj in dataset.objects
        }
        claimants = {c for claims in claims_cache.values() for c in claims}
        # Per (claimant, domain) recall and precision analogues.
        recall: Dict[Tuple[Hashable, Value], float] = {}
        precision: Dict[Tuple[Hashable, Value], float] = {}
        default_recall, default_precision = 0.5, 0.6

        truth_prob: Dict[ObjectId, np.ndarray] = {
            obj: np.full(dataset.context(obj).size, 0.5) for obj in dataset.objects
        }
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            new_probs: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                domain = domains[obj]
                log_true = np.zeros(n)
                log_false = np.zeros(n)
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    key = (claimant, domain)
                    rec = min(max(recall.get(key, default_recall), 1e-3), 1 - 1e-3)
                    pre = min(max(precision.get(key, default_precision), 1e-3), 1 - 1e-3)
                    for v in range(n):
                        if v == u:
                            log_true[v] += np.log(rec)
                            log_false[v] += np.log(1.0 - pre)
                        else:
                            # Hierarchy-aware: not claiming an ancestor of your
                            # claim is not evidence against it.
                            if v in ctx.ancestor_sets[u]:
                                continue
                            log_true[v] += np.log(1.0 - rec)
                            log_false[v] += np.log(pre)
                posterior = 1.0 / (1.0 + np.exp(log_false - log_true))
                delta = max(delta, float(np.max(np.abs(posterior - truth_prob[obj]))))
                new_probs[obj] = posterior
            truth_prob = new_probs

            # Update per-domain recall/precision.
            tp: Dict[Tuple[Hashable, Value], float] = {}
            claimed: Dict[Tuple[Hashable, Value], float] = {}
            truth_mass: Dict[Tuple[Hashable, Value], float] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                domain = domains[obj]
                probs = truth_prob[obj]
                total_truth = float(probs.sum())
                for claimant, value in claims.items():
                    key = (claimant, domain)
                    u = ctx.index[value]
                    tp[key] = tp.get(key, 0.0) + float(probs[u])
                    claimed[key] = claimed.get(key, 0.0) + 1.0
                    truth_mass[key] = truth_mass.get(key, 0.0) + max(total_truth, 1e-9)
            recall = {
                key: (tp[key] + 1.0) / (truth_mass[key] + 2.0) for key in tp
            }
            precision = {
                key: (tp[key] + 1.0) / (claimed[key] + 2.0) for key in tp
            }
            if delta < self.tol:
                converged = True
                break

        confidences = {}
        for obj, probs in truth_prob.items():
            total = float(probs.sum())
            confidences[obj] = probs / total if total > 0 else probs
        return DartResult(
            dataset, confidences, truth_prob, self.threshold, iterations, converged
        )

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

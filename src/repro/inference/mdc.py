"""MDC — reliable Medical Diagnosis from Crowdsourcing (Li et al., WSDM 2017).

MDC targets non-expert crowds: claimants have a reliability and *objects have
a difficulty*, so a mediocre claimant can still be right on easy questions.
We implement the GLAD-style core: the probability that claimant ``c`` answers
object ``o`` correctly is ``sigma(r_c / d_o)`` with reliability ``r_c`` in
``R`` and difficulty ``d_o > 0``, estimated by coordinate-ascent EM. Wrong
answers spread uniformly over the remaining candidates.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import InferenceResult, TruthInferenceAlgorithm, initial_confidences


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class Mdc(TruthInferenceAlgorithm):
    """Reliability + difficulty model for non-expert claims.

    Parameters
    ----------
    max_iter / tol:
        EM stopping rule on confidence change.
    learning_rate / inner_steps:
        Gradient-ascent settings for the reliability/difficulty M-step.
    """

    name = "MDC"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 30,
        tol: float = 1e-4,
        learning_rate: float = 0.2,
        inner_steps: int = 3,
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.learning_rate = learning_rate
        self.inner_steps = inner_steps

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        reliability: Dict[Hashable, float] = {c: 1.0 for c in claimants}
        inv_difficulty: Dict[ObjectId, float] = {obj: 1.0 for obj in dataset.objects}

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            # E-step: posterior truths under current correctness probabilities.
            new_mu: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                log_post = np.log(np.maximum(mu[obj], 1e-12))
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    p_correct = _sigmoid(reliability[claimant] * inv_difficulty[obj])
                    p_correct = min(max(p_correct, 1e-6), 1.0 - 1e-6)
                    like = np.full(n, (1.0 - p_correct) / max(n - 1, 1))
                    like[u] = p_correct
                    log_post += np.log(like)
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
            mu = new_mu

            # M-step: gradient ascent on expected log-likelihood wrt r_c, 1/d_o.
            for _ in range(self.inner_steps):
                grad_r: Dict[Hashable, float] = {c: 0.0 for c in claimants}
                grad_d: Dict[ObjectId, float] = {obj: 0.0 for obj in inv_difficulty}
                for obj, claims in claims_cache.items():
                    ctx = dataset.context(obj)
                    for claimant, value in claims.items():
                        u = ctx.index[value]
                        expected_correct = float(mu[obj][u])
                        p = _sigmoid(reliability[claimant] * inv_difficulty[obj])
                        # d/dx log-likelihood of a Bernoulli(sigma(x)) observation.
                        common = expected_correct - p
                        grad_r[claimant] += common * inv_difficulty[obj]
                        grad_d[obj] += common * reliability[claimant]
                for c in claimants:
                    reliability[c] = float(
                        np.clip(reliability[c] + self.learning_rate * grad_r[c], -5.0, 5.0)
                    )
                for obj in inv_difficulty:
                    inv_difficulty[obj] = float(
                        np.clip(inv_difficulty[obj] + self.learning_rate * grad_d[obj], 0.05, 5.0)
                    )
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, mu, iterations, converged)
        result.reliability = reliability  # type: ignore[attr-defined]
        result.inverse_difficulty = inv_difficulty  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

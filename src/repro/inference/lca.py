"""LCA — Latent Credibility Analysis (Pasternack & Roth, WWW 2013).

We implement **GuessLCA**, the best performer of the seven LCA variants per
the paper's Section 5.1: each source ``s`` has an honesty ``h_s``; an honest
claim asserts the truth, a dishonest one *guesses* according to a prior guess
distribution ``q_o`` (the popularity of candidate values), so

``P(claim = u | truth = v) = h_s               if u = v``
``P(claim = u | truth = v) = (1-h_s) q_o(u|not v)  otherwise``

EM alternates between the two updates per round:

* **E-step**: ``mu_{o,v} proportional to mu_{o,v} prod_claims L(u | v, h_s)``
  with the likelihood above and ``q_o(u | not v) = q_o(u) / (1 - q_o(v))``;
* **M-step**: ``h_s = (sum_claims mu_{o,u} + k) / (|claims_s| + 2k)`` — the
  Beta-smoothed expected fraction of honest claims.

The columnar engine (``use_columnar``) evaluates the likelihood per claim x
candidate pair over the :class:`~repro.data.columnar.PairExpansion` (the
guess distribution ``q`` is one flat per-slot array) and reduces with
``np.bincount``; the dict loops stay as the reference, parity within 1e-8
enforced by ``tests/test_columnar_parity.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    claim_counts,
    initial_confidences,
)


class GuessLca(TruthInferenceAlgorithm):
    """GuessLCA with popularity guess distribution.

    Parameters
    ----------
    prior_honesty:
        Initial honesty for every source/worker.
    max_iter / tol:
        EM stopping rule on confidence change.
    smoothing:
        Beta-style pseudo-counts on the honesty update.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    """

    name = "LCA"
    supports_workers = True

    def __init__(
        self,
        prior_honesty: float = 0.7,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 1.0,
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        self.prior_honesty = prior_honesty
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.use_columnar = use_columnar

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        pairs = col.pairs
        mu = col.initial_confidences_flat()
        honesty = np.full(col.n_claimants, self.prior_honesty, dtype=np.float64)
        counts = col.claimant_counts()

        # Guess distribution q from claim popularity, smoothed so every
        # candidate is guessable.
        q = col.segment_normalize(col.vote_counts() + 1.0)
        q_claimed = q[col.claim_slot]  # q_o(u) of each claim's value

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            h = honesty[col.claim_claimant]
            miss = ((1.0 - h) * q_claimed)[pairs.pair_claim] / np.maximum(
                1.0 - q[pairs.pair_slot], 1e-9
            )
            like = np.where(pairs.pair_is_claimed, h[pairs.pair_claim], miss)
            contrib = np.log(np.maximum(like, 1e-12))
            log_post = np.log(np.maximum(mu, 1e-12)) + np.bincount(
                pairs.pair_slot, weights=contrib, minlength=col.n_slots
            )
            posterior = col.segment_softmax(log_post)
            delta = float(np.max(np.abs(posterior - mu))) if col.n_slots else 0.0
            mu = posterior
            correct_mass = np.bincount(
                col.claim_claimant,
                weights=posterior[col.claim_slot],
                minlength=col.n_claimants,
            )
            honesty = np.clip(
                (correct_mass + self.smoothing)
                / (counts + 2.0 * self.smoothing),
                0.01,
                0.99,
            )
            if delta < self.tol:
                converged = True
                break
        result = ColumnarInferenceResult(dataset, col, mu, iterations, converged)
        result.honesty = col.claimant_mapping(honesty)  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        honesty: Dict[Hashable, float] = {c: self.prior_honesty for c in claimants}

        # Guess distributions q_o from claim popularity (records + answers).
        guess: Dict[ObjectId, np.ndarray] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            counts = claim_counts(dataset, obj)
            for value in dataset.answers_for(obj).values():
                counts[ctx.index[value]] += 1.0
            counts += 1.0  # smooth so every candidate is guessable
            guess[obj] = counts / counts.sum()

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            new_mu: Dict[ObjectId, np.ndarray] = {}
            correct_mass: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            claim_count: Dict[Hashable, int] = {c: 0 for c in claimants}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                q = guess[obj]
                log_post = np.log(np.maximum(mu[obj], 1e-12))
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    h = honesty[claimant]
                    like = np.empty(n)
                    for v in range(n):
                        if v == u:
                            like[v] = h
                        else:
                            denom = max(1.0 - q[v], 1e-9)
                            like[v] = (1.0 - h) * q[u] / denom
                    log_post += np.log(np.maximum(like, 1e-12))
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
                for claimant, value in claims.items():
                    correct_mass[claimant] += float(posterior[ctx.index[value]])
                    claim_count[claimant] += 1
            mu = new_mu
            honesty = {
                c: min(
                    max(
                        (correct_mass[c] + self.smoothing)
                        / (claim_count[c] + 2.0 * self.smoothing),
                        0.01,
                    ),
                    0.99,
                )
                for c in claimants
            }
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, mu, iterations, converged)
        result.honesty = honesty  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

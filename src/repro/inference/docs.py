"""DOCS — DOmain-aware Crowdsourcing System (Zheng, Li & Cheng, PVLDB 2016).

DOCS keys worker (and here, source) quality by *domain*: a worker good at
geography questions about Europe may be poor on Asia. Objects are mapped to
domains; every claimant gets a per-domain accuracy with Bayesian smoothing,
and truth inference is a domain-weighted Bayesian vote.

Domain extraction: the original uses knowledge-base entity linking. Our
objects live in a value hierarchy, so the natural analogue — and the one we
use — is the top-level (depth-1) ancestor of the object's majority candidate,
e.g. the continent of a birthplace. This preserves the property the paper's
experiments probe: on Heritages, where domains are many and answers per
domain few, DOCS's per-domain estimates starve and its accuracy degrades
(Figure 11 discussion).

E/M updates per round, with ``d(o)`` the object's domain:

* **E-step**: ``mu_{o,v} proportional to mu_{o,v} prod_claims L(u | v)``
  where ``L(u | v) = a_{s,d(o)}`` if ``u = v`` else
  ``(1 - a_{s,d(o)}) / (|Vo| - 1)``;
* **M-step**: ``a_{s,d} = (sum_claims-in-d mu_{o,u} + k a0) /
  (|claims_{s,d}| + k)`` — Beta-smoothed per-domain accuracy toward the
  prior ``a0``.

The columnar engine (``use_columnar``) reads each object's domain off
:class:`~repro.data.columnar.ColumnarHierarchy` (``top_code`` of the
majority-record candidate), keeps the accuracies in one dense
``(claimants, domains)`` array — whose unobserved cells equal the Beta prior
exactly, matching the reference's dict fallback — and reduces the E/M steps
with ``np.bincount`` over the claim x candidate pairs. Parity within 1e-8 is
enforced by ``tests/test_columnar_parity.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value
from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    initial_confidences,
)


class Docs(TruthInferenceAlgorithm):
    """Domain-aware Bayesian truth inference.

    Parameters
    ----------
    max_iter / tol:
        EM stopping rule on confidence change.
    smoothing:
        Beta pseudo-counts for per-domain accuracies.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    """

    name = "DOCS"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 4.0,
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.use_columnar = use_columnar

    # ------------------------------------------------------------------
    def object_domain(self, dataset: TruthDiscoveryDataset, obj: ObjectId) -> Value:
        """Domain of ``obj``: the depth-1 ancestor of its majority candidate."""
        ctx = dataset.context(obj)
        counts = np.zeros(ctx.size)
        for value in dataset.records_for(obj).values():
            counts[ctx.index[value]] += 1.0
        majority = ctx.values[int(np.argmax(counts))]
        path = dataset.hierarchy.path_to_root(majority)
        # path ends at the root; the element before it is the depth-1 node.
        return path[-2] if len(path) >= 2 else majority

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        pairs = col.pairs
        hier = col.hierarchy
        mu = col.initial_confidences_flat()

        # Domain per object: top_code of the majority *record* candidate
        # (first-max tie-break, like np.argmax in the reference).
        majority_slot = col.segment_argmax_slot(col.record_counts())
        domain_code = hier.top_code[col.slot_vid[majority_slot]]
        n_domains = max(len(hier.domains), 1)

        prior_correct = 0.7
        accuracy = np.full(
            col.n_claimants * n_domains, prior_correct, dtype=np.float64
        )
        claim_key = col.claim_claimant * n_domains + domain_code[col.claim_obj]
        claim_key_counts = np.bincount(claim_key, minlength=len(accuracy))
        miss_denom = np.maximum(
            col.sizes[col.claim_obj] - 1, 1
        ).astype(np.float64)

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            acc = np.clip(accuracy[claim_key], 1e-3, 1.0 - 1e-3)
            contrib = np.where(
                pairs.pair_is_claimed,
                np.log(acc)[pairs.pair_claim],
                np.log((1.0 - acc) / miss_denom)[pairs.pair_claim],
            )
            log_post = np.log(np.maximum(mu, 1e-12)) + np.bincount(
                pairs.pair_slot, weights=contrib, minlength=col.n_slots
            )
            posterior = col.segment_softmax(log_post)
            delta = float(np.max(np.abs(posterior - mu))) if col.n_slots else 0.0
            mu = posterior

            # Per-domain accuracy update with Beta smoothing.
            correct_mass = np.bincount(
                claim_key, weights=mu[col.claim_slot], minlength=len(accuracy)
            )
            accuracy = (correct_mass + self.smoothing * prior_correct) / (
                claim_key_counts + self.smoothing
            )
            if delta < self.tol:
                converged = True
                break

        result = ColumnarInferenceResult(dataset, col, mu, iterations, converged)
        observed = np.flatnonzero(claim_key_counts)
        result.domain_accuracy = {  # type: ignore[attr-defined]
            (col.claimants[key // n_domains], hier.domains[key % n_domains]):
                float(accuracy[key])
            for key in observed
        }
        result.domains = {  # type: ignore[attr-defined]
            obj: hier.domains[code]
            for obj, code in zip(col.objects, domain_code)
        }
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        domains = {obj: self.object_domain(dataset, obj) for obj in dataset.objects}
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}

        # accuracy[(claimant, domain)] with global fallback.
        prior_correct = 0.7
        accuracy: Dict[Tuple[Hashable, Value], float] = {}

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            new_mu: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                domain = domains[obj]
                log_post = np.log(np.maximum(mu[obj], 1e-12))
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    acc = accuracy.get((claimant, domain), prior_correct)
                    acc = min(max(acc, 1e-3), 1.0 - 1e-3)
                    like = np.full(n, (1.0 - acc) / max(n - 1, 1))
                    like[u] = acc
                    log_post += np.log(like)
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
            mu = new_mu

            # Per-domain accuracy update with Beta smoothing.
            correct_mass: Dict[Tuple[Hashable, Value], float] = {}
            counts: Dict[Tuple[Hashable, Value], float] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                domain = domains[obj]
                probs = mu[obj]
                for claimant, value in claims.items():
                    key = (claimant, domain)
                    correct_mass[key] = correct_mass.get(key, 0.0) + float(
                        probs[ctx.index[value]]
                    )
                    counts[key] = counts.get(key, 0.0) + 1.0
            accuracy = {
                key: (correct_mass[key] + self.smoothing * prior_correct)
                / (counts[key] + self.smoothing)
                for key in counts
            }
            if delta < self.tol:
                converged = True
                break

        result = InferenceResult(dataset, mu, iterations, converged)
        result.domain_accuracy = accuracy  # type: ignore[attr-defined]
        result.domains = domains  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

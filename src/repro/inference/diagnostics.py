"""EM diagnostics: the MAP objective of Eq. (7)/(8) and convergence traces.

``log_posterior`` evaluates the objective ``F`` the TDH EM maximises — the
log-likelihood of all records and answers under the current parameters plus
the Dirichlet log-priors. Useful for verifying convergence (EM must never
decrease ``F``) and for comparing hyperparameter settings on held-in data.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np
from scipy.special import gammaln

from ..data.model import TruthDiscoveryDataset
from .tdh import TDHModel, TDHResult

_EPS = 1e-300


def _log_dirichlet_pdf(x: np.ndarray, alpha: np.ndarray) -> float:
    """Log-density of ``Dir(alpha)`` at ``x`` (both 1-D, same length)."""
    x = np.clip(np.asarray(x, dtype=float), 1e-12, 1.0)
    alpha = np.asarray(alpha, dtype=float)
    log_beta = float(gammaln(alpha).sum() - gammaln(alpha.sum()))
    return float(((alpha - 1.0) * np.log(x)).sum() - log_beta)


def log_likelihood(dataset: TruthDiscoveryDataset, result: TDHResult) -> float:
    """The data term of Eq. (8): ``log P(R, A | Theta)``."""
    total = 0.0
    for obj in dataset.objects:
        structure = result.structures.get(obj)
        mu = result.confidences[obj]
        for source, value in dataset.records_for(obj).items():
            row = structure.source_likelihood_row(
                structure.index[value], result.phi[source]
            )
            total += math.log(max(float(row @ mu), _EPS))
        for worker, value in dataset.answers_for(obj).items():
            row = structure.worker_likelihood_row(
                structure.index[value], result.psi[worker]
            )
            total += math.log(max(float(row @ mu), _EPS))
    return total


def log_posterior(
    dataset: TruthDiscoveryDataset, result: TDHResult, model: TDHModel
) -> float:
    """The full MAP objective ``F`` of Eq. (8) under ``model``'s priors."""
    total = log_likelihood(dataset, result)
    for phi in result.phi.values():
        total += _log_dirichlet_pdf(phi, model.alpha)
    for psi in result.psi.values():
        total += _log_dirichlet_pdf(psi, model.beta)
    for obj in dataset.objects:
        mu = result.confidences[obj]
        gamma = np.full(len(mu), model.gamma)
        total += _log_dirichlet_pdf(mu, gamma)
    return total


def objective_trace(
    dataset: TruthDiscoveryDataset, model: TDHModel, iterations: int = 10
) -> List[float]:
    """``F`` after 1, 2, ... ``iterations`` EM sweeps (same initialisation).

    EM guarantees the sequence is non-decreasing (up to numerical noise);
    the test suite asserts this invariant.
    """
    trace: List[float] = []
    for k in range(1, iterations + 1):
        step_model = TDHModel(
            alpha=model.alpha,
            beta=model.beta,
            gamma=model.gamma,
            max_iter=k,
            tol=0.0,
            use_hierarchy=model.use_hierarchy,
            use_popularity=model.use_popularity,
        )
        result = step_model.fit(dataset)
        trace.append(log_posterior(dataset, result, model))
    return trace

"""Truth-inference algorithms: TDH (the paper's) plus all compared baselines."""

from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    WarmStartDegradation,
    initial_confidences,
)
from .tdh import TDHModel, TDHResult
from .vote import Vote
from .accu import Accu, PopAccu
from .lfc import Lfc, LfcMT
from .crh import Crh, CrhNumeric
from .lca import GuessLca
from .asums import Asums
from .mdc import Mdc
from .docs import Docs
from .ltm import Ltm
from .dart import Dart
from .numeric import Catd, Mean, Median
from .numeric_tdh import NumericTdh
from .diagnostics import log_likelihood, log_posterior, objective_trace
from .weblink import AverageLog, Investment, PooledInvestment, Sums, TruthFinder
from .dawid_skene import DawidSkene, ZenCrowd

__all__ = [
    "TruthInferenceAlgorithm",
    "InferenceResult",
    "ColumnarInferenceResult",
    "WarmStartDegradation",
    "initial_confidences",
    "TDHModel",
    "TDHResult",
    "Vote",
    "Accu",
    "PopAccu",
    "Lfc",
    "LfcMT",
    "Crh",
    "CrhNumeric",
    "GuessLca",
    "Asums",
    "Mdc",
    "Docs",
    "Ltm",
    "Dart",
    "Catd",
    "Mean",
    "Median",
    "NumericTdh",
    "log_likelihood",
    "log_posterior",
    "objective_trace",
    "Sums",
    "AverageLog",
    "Investment",
    "PooledInvestment",
    "TruthFinder",
    "DawidSkene",
    "ZenCrowd",
]

"""LFC — Learning From Crowds (Raykar et al., JMLR 2010).

Models every source/worker with a *confusion matrix* over the global value
space: ``pi_s[t][c]`` is the probability of claiming ``c`` when the truth is
``t``. We keep the matrices sparse (only observed pairs are materialised) with
Dirichlet smoothing over the object's candidate set, which preserves the
original model's behaviour while staying tractable — the paper notes LFC is
the slowest algorithm on BirthPlaces precisely because its state is quadratic
in the number of distinct values.

E/M updates per round:

* **M-step**: ``pi_s[t][c] = (sum_{claims (o,s,c)} mu_{o,t} + delta) /
  (sum_{claims of s on o} mu_{o,t} + delta |Vo|)`` — responsibility-weighted
  confusion counts with Dirichlet pseudo-count ``delta``;
* **E-step**: ``mu_{o,t} proportional to prod_{claims (o,s,c)} pi_s[t][c]``
  (uniform class prior, unlike Dawid-Skene which multiplies in the current
  ``mu``), normalised per object.

The columnar engine (``use_columnar``) runs the same two steps as
``np.bincount`` scatter/gathers over the precomputed claim x candidate
:class:`~repro.data.columnar.PairExpansion` — structurally the Dawid-Skene
fast path minus the class-prior term. The dict loops stay as the reference;
parity within 1e-8 is enforced by ``tests/test_columnar_parity.py``.

``LfcMT`` is the multi-truth reading used in Table 5: every value whose
posterior exceeds a threshold is emitted.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from ..data.sharding import ColumnarShards, parallel_plan
from ..hierarchy.tree import Value
from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    initial_confidences,
    validate_warm_start,
)
from .dawid_skene import _confusion_estep_kernel, _incremental_confusion_fit


class Lfc(TruthInferenceAlgorithm):
    """Confusion-matrix EM over sources and workers.

    Parameters
    ----------
    smoothing:
        Dirichlet pseudo-count added to every (truth, claimed) cell.
    max_iter / tol:
        EM stopping rule on confidence change.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    n_jobs, shards, parallel_backend:
        Parallel-execution knobs for the columnar engine (object-range
        shards, bitwise-identical results; see :mod:`repro.data.sharding`).
        ``parallel_backend="auto"`` downgrades to serial on 1-core hosts or
        small shards.
    incremental / frontier_hops:
        With ``incremental=True`` and a ``warm_start=`` result from the same
        dataset, re-converge only the dirty frontier (see
        :func:`repro.inference.dawid_skene._incremental_confusion_fit`).
    """

    name = "LFC"
    supports_workers = True
    supports_incremental = True

    def __init__(
        self,
        smoothing: float = 1.0,
        max_iter: int = 50,
        tol: float = 1e-5,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "auto",
        incremental: bool = False,
        frontier_hops: int = 1,
    ) -> None:
        self.smoothing = smoothing
        self.max_iter = max_iter
        self.tol = tol
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend
        self.incremental = incremental
        if frontier_hops < 0:
            raise ValueError("frontier_hops must be >= 0")
        self.frontier_hops = frontier_hops

    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[InferenceResult] = None,
    ) -> InferenceResult:
        warm_start = validate_warm_start(dataset, warm_start)
        if resolve_engine(self.use_columnar, dataset):
            if self.incremental and warm_start is not None:
                result = _incremental_confusion_fit(
                    self, dataset, warm_start, with_prior=False
                )
                if result is not None:
                    return result
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        pairs = col.pairs
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        shards.ensure_pairs()
        mu = col.initial_confidences_flat()
        iterations = 0
        converged = False
        # The Dawid-Skene kernel without the class-prior term (LFC's E-step
        # uses a uniform prior): the log-posterior is the likelihood sum.
        consts = [{"with_prior": False} for _ in shards]

        with executor.session(shards, consts) as sess:
            for iterations in range(1, self.max_iter + 1):
                # M-step: pair (claim j, candidate slot s) adds mu[s] to the
                # claimant's (truth, claimed) confusion cell and (truth,)
                # total — a global reduction (cells span shards).
                weight = mu[pairs.pair_slot]
                cells = np.bincount(
                    pairs.cell_index, weights=weight, minlength=pairs.n_cells
                )
                totals = np.bincount(
                    pairs.total_index, weights=weight, minlength=pairs.n_totals
                )

                parts = sess.map(
                    _confusion_estep_kernel,
                    {
                        "mu": mu,
                        "cells": cells,
                        "totals": totals,
                        "smoothing": self.smoothing,
                    },
                )
                posterior = ColumnarShards.concat([p[0] for p in parts])
                delta = max((p[1] for p in parts), default=0.0)
                mu = posterior
                if delta < self.tol:
                    converged = True
                    break
        return ColumnarInferenceResult(dataset, col, mu, iterations, converged)

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        claims_cache = {
            obj: self._claims_of(dataset, obj) for obj in dataset.objects
        }
        iterations = 0
        converged = False
        confusion: Dict[Hashable, Dict[Tuple[Value, Value], float]] = {}
        totals: Dict[Hashable, Dict[Value, float]] = {}

        for iterations in range(1, self.max_iter + 1):
            # M-step for confusion matrices from current responsibilities.
            confusion = {}
            totals = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                probs = mu[obj]
                for claimant, claimed in claims.items():
                    cell = confusion.setdefault(claimant, {})
                    tot = totals.setdefault(claimant, {})
                    for pos, truth in enumerate(ctx.values):
                        weight = float(probs[pos])
                        if weight <= 0:
                            continue
                        cell[(truth, claimed)] = cell.get((truth, claimed), 0.0) + weight
                        tot[truth] = tot.get(truth, 0.0) + weight

            # E-step: posterior over candidate truths.
            new_mu: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                log_post = np.zeros(n)
                for claimant, claimed in claims.items():
                    cell = confusion.get(claimant, {})
                    tot = totals.get(claimant, {})
                    for pos, truth in enumerate(ctx.values):
                        numerator = cell.get((truth, claimed), 0.0) + self.smoothing
                        denominator = tot.get(truth, 0.0) + self.smoothing * n
                        log_post[pos] += np.log(numerator / denominator)
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
            mu = new_mu
            if delta < self.tol:
                converged = True
                break
        return InferenceResult(dataset, mu, iterations, converged)

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId) -> Dict[Hashable, Value]:
        claims: Dict[Hashable, Value] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims


class LfcMT(Lfc):
    """Multi-truth LFC (Table 5's LFC-MT).

    Runs per-value binary inference: for each candidate value, sources that
    claimed it support "true", sources that claimed something else that is not
    an ancestor/descendant support "false". Values with posterior above
    ``threshold`` are emitted.
    """

    name = "LFC-MT"

    def __init__(self, threshold: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        self.threshold = threshold

    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[InferenceResult] = None,
    ) -> "LfcMTResult":
        base = super().fit(dataset, warm_start=warm_start)
        hierarchy = dataset.hierarchy
        truth_sets: Dict[ObjectId, Set[Value]] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            probs = base.confidences[obj]
            chosen = {
                value
                for value, p in zip(ctx.values, probs)
                if p >= self.threshold
            }
            best = ctx.values[int(np.argmax(probs))]
            chosen.add(best)
            # A value and its candidate ancestors are mutually compatible;
            # emit the closure of each chosen value within the candidates.
            closed = set(chosen)
            for value in chosen:
                for ancestor in hierarchy.ancestors(value):
                    if ancestor in ctx.index:
                        closed.add(ancestor)
            truth_sets[obj] = closed
        return LfcMTResult(dataset, base.confidences, truth_sets, base.iterations, base.converged)


class LfcMTResult(InferenceResult):
    """LFC-MT result carrying explicit truth sets."""

    def __init__(self, dataset, confidences, truth_sets, iterations, converged) -> None:
        super().__init__(dataset, confidences, iterations, converged)
        self._truth_sets = truth_sets

    def truth_sets(self) -> Dict[ObjectId, Set[Value]]:
        return {obj: set(values) for obj, values in self._truth_sets.items()}

"""TDH — Truth Discovery in the presence of Hierarchies (paper Section 3).

The generative model gives every source ``s`` a trustworthiness distribution
``phi_s = (phi_exact, phi_generalized, phi_wrong)`` and every worker ``w`` a
``psi_w`` of the same shape; each object ``o`` carries a confidence
distribution ``mu_o`` over its candidate values. This module implements the
MAP EM of Section 3.2:

* **E-step** (Figure 4): posterior truth responsibilities ``f`` for every
  record/answer and case responsibilities ``g`` per claim:
  ``f_{c,v} = P(claim u | truth v, phi_c) mu_{o,v} / Z_c`` with
  ``Z_c = sum_v' P(u | v', phi_c) mu_{o,v'}``, and
  ``g_{c,k} = phi_{c,k} L_k(u | .) . mu_o / Z_c`` for the three
  interpretation cases k (exact / generalized / wrong);
* **M-step**: Dirichlet-smoothed closed-form updates, Eq. (9)-(11) —
  ``mu_{o,v} = (sum_c f_{c,v} + gamma - 1) / (|claims_o| + |Vo|(gamma - 1))``
  and ``phi_{s,k} = (sum_c g_{c,k} + alpha_k - 1) / (|Os| + sum(alpha) - 3)``
  (same shape with ``beta`` for worker ``psi``);
* **truth**: argmax confidence, Eq. (12).

Two execution engines implement the identical updates. The reference engine
walks per-object dicts with the small per-object likelihood matrices of
:mod:`repro.inference._structures`. The columnar engine (``use_columnar``)
evaluates the case weights of Eq. (1)-(4) once per claim x candidate pair —
the ancestor tests come from
:class:`~repro.data.columnar.ColumnarHierarchy`'s Euler intervals, the
popularity denominators from its CSR ancestor arrays — after which every EM
round is a handful of ``np.bincount`` scatter/gathers over the flat claim
table. Parity (1e-8, identical iteration counts) is enforced by
``tests/test_columnar_parity.py``.

The result object additionally exposes the numerators ``N_{o,v}`` and
denominators ``D_o`` of Eq. (9), which the EAI task assigner's incremental
EM (Section 4.2) reuses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.columnar import (
    ColumnarClaims,
    FrontierView,
    incremental_frontier,
    resolve_engine,
)
from ..data.model import ObjectId, SourceId, TruthDiscoveryDataset, WorkerId
from ..data.sharding import ColumnarShards, parallel_plan
from ._structures import ObjectStructure, StructureCache
from .base import (
    InferenceResult,
    LazyConfidences,
    LazyObjectScalars,
    LazyTruths,
    TruthInferenceAlgorithm,
    validate_warm_start,
)

DEFAULT_ALPHA = (3.0, 3.0, 2.0)
"""Source prior from Section 5.1: correct values are more frequent than wrong."""

DEFAULT_BETA = (2.0, 2.0, 2.0)
"""Worker prior (all dimensions 2, Section 5.1)."""

DEFAULT_GAMMA = 2.0
"""Per-value confidence prior (all dimensions 2, Section 5.1)."""


class TDHResult(InferenceResult):
    """TDH fit: confidences plus source/worker trustworthiness and EM state."""

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        confidences: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
        numerators: Dict[ObjectId, np.ndarray],
        denominators: Dict[ObjectId, float],
        structures: StructureCache,
        iterations: int,
        converged: bool,
    ) -> None:
        super().__init__(dataset, confidences, iterations, converged)
        self.phi = phi
        self.psi = psi
        self.numerators = numerators
        self.denominators = denominators
        self.structures = structures
        #: The dataset's record-mutation counter at fit time. The columnar
        #: EAI assigner refuses to build its likelihood tables when this no
        #: longer matches the dataset (records added between fit and assign
        #: would silently change the Pop2/Pop3 popularity weights).
        self.records_version = getattr(dataset, "_records_version", 0)
        #: Set by the columnar engine: ``(encoding, mu, numerators,
        #: denominators)`` as flat slot/object arrays, which the columnar EAI
        #: assigner consumes directly (the dict views above alias ``mu`` and
        #: ``numerators``, so the two representations cannot diverge).
        self.columnar_state: Optional[
            Tuple[ColumnarClaims, np.ndarray, np.ndarray, np.ndarray]
        ] = None
        #: Set by the columnar engine: ``{"g_sums": (n_claimants, 3),
        #: "trust": (n_claimants, 3), "claimants": [...]}`` — the final
        #: iteration's per-claimant case responsibility sums and trust rows,
        #: keyed by claimant. The incremental fit patches these totals with
        #: the frontier's delta contributions instead of re-reducing the
        #: whole claim table, and re-seeds its trust array from the stored
        #: rows without a per-claimant dict walk.
        self.em_state: Optional[Dict[str, object]] = None
        #: Set by the incremental fit: number of objects re-converged (the
        #: frontier size). ``None`` for full fits.
        self.frontier_size: Optional[int] = None

    def truths(self):
        """Estimated truth for every object; lazy off the flat columnar
        state when available, so publishing a result costs O(1)."""
        if self.columnar_state is not None:
            return LazyTruths(self.columnar_state[0], self.columnar_state[1])
        return super().truths()

    def source_trustworthiness(self, source: SourceId) -> Tuple[float, float, float]:
        """``(phi_exact, phi_generalized, phi_wrong)`` for ``source``."""
        vec = self.phi[source]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_trustworthiness(self, worker: WorkerId) -> Tuple[float, float, float]:
        """``(psi_exact, psi_generalized, psi_wrong)`` for ``worker``."""
        vec = self.psi[worker]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_psi(self, worker: WorkerId, prior: Sequence[float] = DEFAULT_BETA) -> np.ndarray:
        """``psi`` for ``worker``, falling back to the prior mean for unseen workers."""
        vec = self.psi.get(worker)
        if vec is not None:
            return vec
        prior_arr = np.asarray(prior, dtype=float)
        return prior_arr / prior_arr.sum()


def _tdh_estep_kernel(shard, consts, state):
    """One TDH E-step over one object-range shard (Figure 4, Eq. 1-8).

    ``consts`` holds the shard's slices of the per-pair case weights (built
    once per fit), ``state`` the loop state (``trust``, global flat ``mu``).
    Returns the shard's slice of the confidence numerator sums plus the
    per-claim case responsibilities ``g1``/``g2``/``g3`` — the per-claimant
    reduction runs globally on the concatenated arrays so the accumulation
    order (hence every float) matches the unsharded path exactly; see the
    merge contract in :mod:`repro.data.sharding`.
    """
    trust = state["trust"]
    mu = state["mu"][shard.slot_lo : shard.slot_hi]
    pc = consts["pair_claimant"]
    mu_pair = mu[shard.pair_slot]
    like = (
        trust[:, 0][pc] * consts["exact"]
        + trust[:, 1][pc] * consts["case2"]
        + trust[:, 2][pc] * consts["case3"]
    )
    joint = like * mu_pair
    z = np.bincount(shard.pair_claim, weights=joint, minlength=shard.n_claims)
    zpos = z > 0
    z_safe = np.where(zpos, z, 1.0)
    # Degenerate claims (z <= 0) fall back to the prior confidence, exactly
    # like the reference sweep.
    f = np.where(zpos[shard.pair_claim], joint / z_safe[shard.pair_claim], mu_pair)
    f_sum = np.bincount(shard.pair_slot, weights=f, minlength=shard.n_slots)

    t_claim = trust[shard.claim_claimant]
    s2 = np.bincount(
        shard.pair_claim, weights=consts["case2"] * mu_pair, minlength=shard.n_claims
    )
    third = 1.0 / 3.0
    g1 = np.where(zpos, t_claim[:, 0] * mu[shard.claim_slot] / z_safe, third)
    g2 = np.where(zpos, t_claim[:, 1] * s2 / z_safe, third)
    g3 = np.where(zpos, np.maximum(0.0, 1.0 - g1 - g2), third)
    return f_sum, g1, g2, g3


class TDHModel(TruthInferenceAlgorithm):
    """The paper's hierarchical truth-inference EM.

    Parameters
    ----------
    alpha, beta:
        Dirichlet hyperparameters of the source / worker trustworthiness
        priors. Defaults are the paper's Section 5.1 settings.
    gamma:
        Symmetric Dirichlet hyperparameter of the confidence prior; a scalar
        applied to every candidate value.
    max_iter, tol:
        EM stopping rule — stop when the largest absolute confidence change
        falls below ``tol`` or after ``max_iter`` iterations.
    use_hierarchy:
        Ablation switch: ``False`` collapses the model to two interpretations
        (exact / wrong), i.e. the hierarchy-blind variant the paper argues
        against.
    use_popularity:
        Ablation switch: ``False`` replaces the worker popularity terms
        ``Pop2``/``Pop3`` (Eq. 3) with the uniform weighting of Eq. (1).
    collapse_flat_objects:
        Ablation switch: ``False`` disables the Eq. (2)/(4) special case for
        objects outside ``OH``, leaving their case-2 channel unsupported —
        the configuration the paper warns underestimates ``phi_2``.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    n_jobs, shards, parallel_backend:
        Parallel-execution knobs for the columnar engine: the E/M steps run
        over ``shards`` object-range shards (default: one per worker) on
        ``n_jobs`` workers (``-1`` = all cores) under the given backend
        (``"serial"`` / ``"thread"`` / ``"process"``, or ``"auto"`` — the
        default — which downgrades to serial on single-core hosts or small
        claim tables; see :func:`repro.data.sharding.resolve_backend`).
        Results are bitwise identical to the unsharded path for every
        configuration; see :mod:`repro.data.sharding`.
    incremental, frontier_hops:
        ``incremental=True`` makes ``fit(dataset, warm_start=previous)``
        re-converge only the *dirty frontier* — the objects touched since
        the previous (columnar) fit plus everything within ``frontier_hops``
        claimant links of them — holding clean objects' E-step outputs
        fixed and patching the previous round's per-claimant reductions
        with the frontier's delta. Falls back to the full fit whenever the
        delta is not servable (no columnar state, an in-place overwrite, a
        record append, a trimmed oplog window, or a frontier saturating to
        the whole corpus — the last delegates to the full fit for exact
        parity). Results agree with a cold fit within the convergence
        tolerance; see ``docs/architecture.md``.
    """

    name = "TDH"
    supports_workers = True
    supports_incremental = True

    def __init__(
        self,
        alpha: Sequence[float] = DEFAULT_ALPHA,
        beta: Sequence[float] = DEFAULT_BETA,
        gamma: float = DEFAULT_GAMMA,
        max_iter: int = 100,
        tol: float = 1e-6,
        use_hierarchy: bool = True,
        use_popularity: bool = True,
        collapse_flat_objects: bool = True,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "auto",
        incremental: bool = False,
        frontier_hops: int = 1,
    ) -> None:
        self.alpha = np.asarray(alpha, dtype=float)
        self.beta = np.asarray(beta, dtype=float)
        if self.alpha.shape != (3,) or self.beta.shape != (3,):
            raise ValueError("alpha and beta must have three components")
        if gamma < 1.0:
            raise ValueError("gamma must be >= 1 for a proper MAP update")
        self.gamma = float(gamma)
        self.max_iter = max_iter
        self.tol = tol
        self.use_hierarchy = use_hierarchy
        self.use_popularity = use_popularity
        self.collapse_flat_objects = collapse_flat_objects
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend
        self.incremental = incremental
        if frontier_hops < 0:
            raise ValueError("frontier_hops must be >= 0")
        self.frontier_hops = frontier_hops

    def make_structure_cache(self, dataset: TruthDiscoveryDataset) -> StructureCache:
        """A structure cache matching this model's ablation flags."""
        return StructureCache(
            dataset,
            use_hierarchy=self.use_hierarchy,
            use_popularity=self.use_popularity,
            collapse_flat_objects=self.collapse_flat_objects,
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult] = None,
        structures: Optional[StructureCache] = None,
    ) -> TDHResult:
        """Run EM to convergence and return a :class:`TDHResult`.

        ``warm_start`` (a previous fit of this dataset) seeds source and
        worker trustworthiness, which the round-based crowd simulator uses to
        avoid re-learning from scratch every round; a warm start fitted on a
        different dataset object, or across an in-place record overwrite, is
        refused with a :class:`RuntimeWarning` and degrades to a cold start
        (append-only record windows are accepted — trust is keyed by
        claimant, robust to growth).
        ``structures`` may share a :class:`StructureCache` across fits on
        identical records. With ``incremental=True`` and a usable columnar
        ``warm_start``, only the dirty frontier is re-converged.
        """
        warm_start = validate_warm_start(dataset, warm_start)
        if resolve_engine(self.use_columnar, dataset):
            if self.incremental and warm_start is not None:
                result = self._fit_incremental(dataset, warm_start, structures)
                if result is not None:
                    return result
            return self._fit_columnar(dataset, warm_start, structures)
        return self._fit_reference(dataset, warm_start, structures)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _pair_case_arrays(self, col: ColumnarClaims, view=None):
        """Per claim x candidate case weights of Eq. (1)-(4), as flat arrays.

        Element ``p`` of each returned array is the corresponding entry
        ``[u, v]`` of the reference :class:`ObjectStructure` matrices, where
        ``u`` is the pair's claimed value and ``v`` its hypothesised truth.
        The ablation flags are honoured exactly as in
        :func:`repro.inference._structures.build_structure`.

        With a :class:`~repro.data.columnar.FrontierView` the arrays cover
        only the view's pairs (same expressions, evaluated on the view's
        global claim rows / slots), so an incremental fit's setup cost is
        O(frontier pairs) — plus one O(claims) pass for the global popularity
        denominators, which are corpus-wide by definition.
        """
        if view is None:
            pairs = col.pairs
            pair_claim_rows = pairs.pair_claim
            pair_slots = pairs.pair_slot
            pair_size = pairs.pair_size
            pair_is_claimed = pairs.pair_is_claimed
        else:
            pair_claim_rows = view.claim_ids[view.pair_claim]
            pair_slots = view.slot_ids[view.pair_slot]
            pair_size = view.pair_size
            pair_is_claimed = view.pair_is_claimed
        n_pairs = len(pair_claim_rows)
        n = pair_size  # |Vo| per pair, float
        exact_f = pair_is_claimed.astype(np.float64)

        if self.use_hierarchy:
            # Only this ablation branch needs the encoded hierarchy; keep the
            # hierarchy-blind variant from paying for its construction.
            hier = col.hierarchy
            anc = hier.is_ancestor_vid(
                col.claim_vid[pair_claim_rows], col.slot_vid[pair_slots]
            )
            gsize = hier.slot_gsize[pair_slots].astype(np.float64)
            hflag_obj = (
                np.ones(col.n_objects, dtype=bool)
                if not self.collapse_flat_objects
                else hier.obj_has_hierarchy
            )
        else:
            anc = np.zeros(n_pairs, dtype=bool)
            gsize = np.zeros(n_pairs, dtype=np.float64)
            hflag_obj = np.zeros(col.n_objects, dtype=bool)
        hflag = hflag_obj[col.claim_obj[pair_claim_rows]]
        anc_f = anc.astype(np.float64)
        case3_f = (~pair_is_claimed & ~anc).astype(np.float64)

        # Eq. (1)/(2): generalized truths uniform over Go(v); wrong values
        # uniform over the remaining candidates (all non-truth ones for
        # objects outside OH).
        src2_h = np.where(gsize > 0, anc_f / np.maximum(gsize, 1.0), 0.0)
        wrong = n - gsize - 1.0
        src3_h = np.where(wrong > 0, case3_f / np.maximum(wrong, 1.0), 0.0)
        src3_flat = np.where(n > 1, case3_f / np.maximum(n - 1.0, 1.0), 0.0)
        source_case2 = np.where(hflag, src2_h, exact_f)
        source_case3 = np.where(hflag, src3_h, src3_flat)

        if not self.use_popularity:
            return exact_f, source_case2, source_case3, source_case2, source_case3

        # Eq. (3): Pop2/Pop3 redistribute the worker case mass by how often
        # sources claimed each value.
        counts, pop2_slot, pop3_slot = col.popularity_denominators(self.use_hierarchy)
        u_counts = counts[col.claim_slot[pair_claim_rows]]
        pop2 = pop2_slot[pair_slots]
        pop3 = pop3_slot[pair_slots]
        wrk2_h = np.where(pop2 > 0, anc_f * u_counts / np.maximum(pop2, 1.0), 0.0)
        worker_case2 = np.where(hflag, wrk2_h, exact_f)
        worker_case3 = np.where(pop3 > 0, case3_f * u_counts / np.maximum(pop3, 1.0), 0.0)
        return exact_f, source_case2, source_case3, worker_case2, worker_case3

    def _fit_columnar(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult],
        structures: Optional[StructureCache],
    ) -> TDHResult:
        col = dataset.columnar()
        pairs = col.pairs
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()
        is_worker = col.claimant_is_worker

        trust = np.where(is_worker[:, None], prior_psi, prior_phi)
        if warm_start is not None:
            for cid, key in enumerate(col.claimants):
                vec = (
                    warm_start.psi.get(key[1])
                    if is_worker[cid]
                    else warm_start.phi.get(key)
                )
                if vec is not None:
                    trust[cid] = vec

        # Per-pair case weights of Eq. (1)-(4): iteration-invariant, computed
        # once globally and sliced per shard into the kernel constants.
        exact_f, src2, src3, wrk2, wrk3 = self._pair_case_arrays(col)
        is_answer_pair = col.claim_is_answer[pairs.pair_claim]
        case2 = np.where(is_answer_pair, wrk2, src2)
        case3 = np.where(is_answer_pair, wrk3, src3)
        pair_claimant = col.claim_claimant[pairs.pair_claim]
        consts = [
            {"exact": e, "case2": c2, "case3": c3, "pair_claimant": pc}
            for e, c2, c3, pc in zip(
                shards.slice_pairs(exact_f),
                shards.slice_pairs(case2),
                shards.slice_pairs(case3),
                shards.slice_pairs(pair_claimant),
            )
        ]

        mu = col.initial_confidences_flat()
        gamma_minus_1 = self.gamma - 1.0
        denom_obj = (
            np.diff(col.claim_offsets).astype(np.float64)
            + col.sizes * gamma_minus_1
        )
        den_slot = denom_obj[col.slot_obj]
        den_positive = den_slot > 0
        den_safe = np.where(den_positive, den_slot, 1.0)
        uniform_slot = 1.0 / col.sizes.astype(np.float64)[col.slot_obj]
        prior_m1 = np.where(is_worker[:, None], self.beta - 1.0, self.alpha - 1.0)
        prior_mean = np.where(is_worker[:, None], prior_psi, prior_phi)

        numer_flat = np.zeros(col.n_slots, dtype=np.float64)
        iterations = 0
        converged = False
        g_sums = None

        with executor.session(shards, consts) as sess:
            for iterations in range(1, self.max_iter + 1):
                # E-step per shard: every per-claim / per-slot quantity is
                # computed inside the shard that owns the object.
                parts = sess.map(_tdh_estep_kernel, {"trust": trust, "mu": mu})
                f_sum = ColumnarShards.concat([p[0] for p in parts])
                g1 = ColumnarShards.concat([p[1] for p in parts])
                g2 = ColumnarShards.concat([p[2] for p in parts])
                g3 = ColumnarShards.concat([p[3] for p in parts])
                # Cross-shard reduction over claimants: one global bincount
                # on the concatenated per-claim responsibilities (the merge
                # contract's bitwise-stable half).
                g_sums = np.stack(
                    [
                        np.bincount(
                            col.claim_claimant, weights=g, minlength=col.n_claimants
                        )
                        for g in (g1, g2, g3)
                    ],
                    axis=1,
                )

                # M-step for trustworthiness (Eq. 10-11).
                count_c = g_sums.sum(axis=1)
                denom_c = count_c + prior_m1.sum(axis=1)
                vec = (g_sums + prior_m1) / np.where(denom_c > 0, denom_c, 1.0)[:, None]
                vec = np.clip(vec, 1e-12, None)
                vec = vec / vec.sum(axis=1, keepdims=True)
                trust = np.where((denom_c > 0)[:, None], vec, prior_mean)

                # M-step for confidences (Eq. 9).
                numer_flat = f_sum + gamma_minus_1
                new_mu = np.where(den_positive, numer_flat / den_safe, uniform_slot)
                delta = float(np.max(np.abs(new_mu - mu))) if col.n_slots else 0.0
                mu = new_mu
                if delta < self.tol:
                    converged = True
                    break

        phi: Dict[SourceId, np.ndarray] = {}
        psi: Dict[WorkerId, np.ndarray] = {}
        for cid, key in enumerate(col.claimants):
            if is_worker[cid]:
                psi[key[1]] = trust[cid].copy()
            else:
                phi[key] = trust[cid].copy()

        result = TDHResult(
            dataset=dataset,
            confidences=LazyConfidences(col, mu),
            phi=phi,
            psi=psi,
            numerators=LazyConfidences(col, numer_flat),
            denominators=LazyObjectScalars(col, denom_obj),
            structures=cache,
            iterations=iterations,
            converged=converged,
        )
        result.columnar_state = (col, mu, numer_flat, denom_obj)
        if g_sums is not None:
            result.em_state = {
                "g_sums": g_sums,
                "trust": trust,
                "claimants": col.claimants,
            }
        return result

    # ------------------------------------------------------------------
    # incremental engine (dirty-object frontier)
    # ------------------------------------------------------------------
    def _fit_incremental(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: "TDHResult",
        structures: Optional[StructureCache],
    ) -> Optional[TDHResult]:
        """Warm-started frontier re-convergence; ``None`` -> run the full fit.

        Per EM iteration only the frontier's E-step runs (the unmodified
        :func:`_tdh_estep_kernel` over a
        :class:`~repro.data.columnar.FrontierView`); the global per-claimant
        case sums are patched as ``base + frontier`` where ``base`` is the
        previous round's stored totals minus the frontier's pre-existing
        claims re-evaluated at the warm parameters. Clean objects keep their
        previous posteriors and numerators verbatim. The freeze makes the
        result an approximation bounded by the previous fit's convergence
        tolerance — ``tests/test_incremental_em.py`` property-checks it
        against cold fits — except when the frontier saturates, where the
        fit delegates to :meth:`_fit_columnar` for bitwise parity.
        """
        state = warm_start.columnar_state
        em = warm_start.em_state
        if state is None or em is None:
            return None
        plan = incremental_frontier(
            dataset,
            state[0],
            hops=self.frontier_hops,
            reuse=getattr(warm_start, "frontier_state", None),
        )
        if plan is None:
            return None
        col, frontier, ops = plan
        if len(frontier) >= col.n_objects:
            # Saturated frontier: the full warm fit is both exact and no
            # more expensive than re-converging "everything incrementally".
            return self._fit_columnar(dataset, warm_start, structures)

        fv = FrontierView(col, frontier)
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()
        is_worker = col.claimant_is_worker

        # Old claimant id -> current id (append-only => every old claimant
        # still exists; brand-new ones keep the prior rows set below).
        index = col.claimant_index
        old_ids = np.fromiter(
            (index[key] for key in em["claimants"]),
            dtype=np.int64,
            count=len(em["claimants"]),
        )
        trust = np.where(is_worker[:, None], prior_psi, prior_phi)
        warm_trust = em.get("trust")
        if warm_trust is not None:
            trust[old_ids] = warm_trust
        else:  # pragma: no cover - states predating the stored trust array
            for cid, key in enumerate(col.claimants):
                vec = (
                    warm_start.psi.get(key[1])
                    if is_worker[cid]
                    else warm_start.phi.get(key)
                )
                if vec is not None:
                    trust[cid] = vec

        exact_f, src2, src3, wrk2, wrk3 = self._pair_case_arrays(col, fv)
        is_answer_pair = fv.claim_is_answer[fv.pair_claim]
        consts = {
            "exact": exact_f,
            "case2": np.where(is_answer_pair, wrk2, src2),
            "case3": np.where(is_answer_pair, wrk3, src3),
            "pair_claimant": fv.claim_claimant[fv.pair_claim],
        }

        # Slot growth scatter-expands the stored per-slot state into the new
        # layout with new slots at 0.0: the E-step is multiplicative in
        # ``mu`` (``joint = like * mu_pair``), so a zero-weight new slot
        # contributes nothing to the base subtraction below — matching the
        # stored totals, which never saw it. The new slots are re-seeded
        # (uniform prior) right before the EM loop. For grown objects the
        # re-evaluated case weights shift slightly (|Vo| and popularity
        # moved), which folds into the approximation bound already accepted
        # for frontier-local claims.
        mu = plan.expand_slots(state[1])
        numer_flat = plan.expand_slots(state[2])
        mu_f = mu[fv.slot_ids]

        # Base per-claimant case sums: the previous round's totals re-keyed
        # to the current claimant ids (append-only => every old claimant
        # still exists; new ones start at zero), minus the frontier's
        # pre-existing claims re-evaluated at the warm parameters — the
        # appended claims were never inside the stored totals.
        n_claimants = col.n_claimants
        base_g = np.zeros((n_claimants, 3), dtype=np.float64)
        base_g[old_ids] = em["g_sums"]
        _, g1, g2, g3 = _tdh_estep_kernel(fv, consts, {"trust": trust, "mu": mu_f})
        appended_keys = np.asarray(
            [
                col.object_index[obj] * n_claimants
                + index[claimant if kind == "record" else ("worker", claimant)]
                for kind, obj, claimant, _value in ops
            ],
            dtype=np.int64,
        )
        fv_keys = col.claim_obj[fv.claim_ids] * n_claimants + fv.claim_claimant
        old_claims = ~np.isin(fv_keys, appended_keys)
        for k, g in enumerate((g1, g2, g3)):
            base_g[:, k] -= np.bincount(
                fv.claim_claimant[old_claims],
                weights=g[old_claims],
                minlength=n_claimants,
            )

        gamma_minus_1 = self.gamma - 1.0
        denom_obj = (
            np.diff(col.claim_offsets).astype(np.float64)
            + col.sizes * gamma_minus_1
        )
        den_slot = denom_obj[fv.obj_ids][fv.slot_obj]
        den_positive = den_slot > 0
        den_safe = np.where(den_positive, den_slot, 1.0)
        uniform_slot = 1.0 / fv.sizes.astype(np.float64)[fv.slot_obj]
        if plan.grew:
            # Brand-new candidate slots (all on frontier objects) start from
            # the per-object uniform prior: the zero used for the base
            # subtraction would otherwise pin their posterior at zero — the
            # E-step can never move mass onto a zero-prior slot.
            mu_f = np.where(plan.new_slot_mask[fv.slot_ids], uniform_slot, mu_f)
        prior_m1 = np.where(is_worker[:, None], self.beta - 1.0, self.alpha - 1.0)
        prior_mean = np.where(is_worker[:, None], prior_psi, prior_phi)

        def m_step_trust(g, m1, m1_sum, mean):
            # Trust M-step (Eq. 10-11) over a (rows, 3) case-sum block.
            denom_c = g.sum(axis=1) + m1_sum
            ok = denom_c > 0
            vec = (g + m1) / np.where(ok, denom_c, 1.0)[:, None]
            vec = np.clip(vec, 1e-12, None)
            vec /= vec.sum(axis=1, keepdims=True)
            return np.where(ok[:, None], vec, mean)

        # Only claimants with frontier claims see their case sums move, and
        # the E-step kernel only ever gathers *their* trust rows — every
        # other row of ``g_sums`` is ``base_g`` for the whole loop, so its
        # M-step output is a constant that can wait until after the loop.
        # Per iteration we re-solve just the frontier claimants' block: this
        # is exactly the global M-step, restricted to the rows that can
        # change anything.
        f_cids = np.unique(fv.claim_claimant)
        claim_local = np.searchsorted(f_cids, fv.claim_claimant)
        n_local_cids = len(f_cids)
        prior_m1_f = prior_m1[f_cids]
        prior_m1_sum_f = prior_m1_f.sum(axis=1)
        prior_mean_f = prior_mean[f_cids]
        base_g_f = base_g[f_cids]
        # One fused bincount per iteration: the three case columns live at
        # offsets 0 / n / 2n of a single index array.
        claim_local_3 = np.concatenate(
            [claim_local + k * n_local_cids for k in range(3)]
        )

        numer_f = numer_flat[fv.slot_ids]
        n_local_slots = fv.slot_hi
        iterations = 0
        converged = False
        g_local = base_g_f
        for iterations in range(1, self.max_iter + 1):
            f_sum, g1, g2, g3 = _tdh_estep_kernel(
                fv, consts, {"trust": trust, "mu": mu_f}
            )
            g_local = base_g_f + np.bincount(
                claim_local_3,
                weights=np.concatenate((g1, g2, g3)),
                minlength=3 * n_local_cids,
            ).reshape(3, n_local_cids).T
            trust[f_cids] = m_step_trust(
                g_local, prior_m1_f, prior_m1_sum_f, prior_mean_f
            )

            # Confidence M-step (Eq. 9) over the frontier slots only.
            numer_f = f_sum + gamma_minus_1
            new_mu_f = np.where(den_positive, numer_f / den_safe, uniform_slot)
            delta = (
                float(np.max(np.abs(new_mu_f - mu_f))) if n_local_slots else 0.0
            )
            mu_f = new_mu_f
            if delta < self.tol:
                converged = True
                break

        mu[fv.slot_ids] = mu_f
        numer_flat[fv.slot_ids] = numer_f

        # Clean claimants' constant M-step rows, deferred from the loop.
        frontier_trust = trust[f_cids]
        trust = m_step_trust(base_g, prior_m1, prior_m1.sum(axis=1), prior_mean)
        trust[f_cids] = frontier_trust
        g_sums = base_g.copy()
        g_sums[f_cids] = g_local

        # Rows are views into the freshly built ``trust`` (never mutated
        # again) — same aliasing contract as :meth:`to_confidences`.
        phi: Dict[SourceId, np.ndarray] = {}
        psi: Dict[WorkerId, np.ndarray] = {}
        for cid, key in enumerate(col.claimants):
            if is_worker[cid]:
                psi[key[1]] = trust[cid]
            else:
                phi[key] = trust[cid]

        result = TDHResult(
            dataset=dataset,
            confidences=LazyConfidences(col, mu),
            phi=phi,
            psi=psi,
            numerators=LazyConfidences(col, numer_flat),
            denominators=LazyObjectScalars(col, denom_obj),
            structures=cache,
            iterations=iterations,
            converged=converged,
        )
        result.columnar_state = (col, mu, numer_flat, denom_obj)
        result.em_state = {
            "g_sums": g_sums,
            "trust": trust,
            "claimants": col.claimants,
        }
        result.frontier_size = len(frontier)
        result.frontier_state = plan.frontier_state
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult] = None,
        structures: Optional[StructureCache] = None,
    ) -> TDHResult:
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        objects = dataset.objects
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()

        phi: Dict[SourceId, np.ndarray] = {}
        for source in dataset.sources:
            if warm_start is not None and source in warm_start.phi:
                phi[source] = warm_start.phi[source].copy()
            else:
                phi[source] = prior_phi.copy()
        psi: Dict[WorkerId, np.ndarray] = {}
        for worker in dataset.workers:
            if warm_start is not None and worker in warm_start.psi:
                psi[worker] = warm_start.psi[worker].copy()
            else:
                psi[worker] = prior_psi.copy()

        mu: Dict[ObjectId, np.ndarray] = {}
        for obj in objects:
            structure = cache.get(obj)
            counts = structure.counts.copy()
            for value in dataset.answers_for(obj).values():
                counts[structure.index[value]] += 1.0
            total = counts.sum()
            mu[obj] = (
                counts / total
                if total > 0
                else np.full(structure.size, 1.0 / structure.size)
            )

        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        iterations = 0
        converged = False

        records_by_object = {obj: dataset.records_for(obj) for obj in objects}
        answers_by_object = {obj: dataset.answers_for(obj) for obj in objects}

        for iterations in range(1, self.max_iter + 1):
            new_mu, numerators, denominators, g_source, g_worker = self._em_sweep(
                objects, records_by_object, answers_by_object, cache, mu, phi, psi
            )
            # M-step for trustworthiness (Eq. 10-11).
            phi = self._update_trust(g_source, self.alpha, prior_phi)
            psi = self._update_trust(g_worker, self.beta, prior_psi)

            delta = max(
                (float(np.max(np.abs(new_mu[obj] - mu[obj]))) for obj in objects),
                default=0.0,
            )
            mu = new_mu
            if delta < self.tol:
                converged = True
                break

        return TDHResult(
            dataset=dataset,
            confidences=mu,
            phi=phi,
            psi=psi,
            numerators=numerators,
            denominators=denominators,
            structures=cache,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _em_sweep(
        self,
        objects,
        records_by_object,
        answers_by_object,
        cache: StructureCache,
        mu: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
    ):
        """One fused E-step + confidence M-step over all claims.

        Returns the new confidences, their numerators/denominators (Eq. 9) and
        the per-source / per-worker case-responsibility sums feeding Eq. (10)
        and (11).
        """
        gamma_minus_1 = self.gamma - 1.0
        new_mu: Dict[ObjectId, np.ndarray] = {}
        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        g_source: Dict[SourceId, np.ndarray] = {}
        g_worker: Dict[WorkerId, np.ndarray] = {}

        for obj in objects:
            structure = cache.get(obj)
            mu_o = mu[obj]
            n = structure.size
            f_sum = np.zeros(n)
            claims = records_by_object[obj]
            answers = answers_by_object[obj]

            for source, value in claims.items():
                u = structure.index[value]
                likelihood = structure.source_likelihood_row(u, phi[source])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    # Degenerate likelihood (e.g. zero-mass claim); fall back
                    # to the prior confidence so EM keeps moving.
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = phi[source][0] * mu_o[u] / z
                    g2 = phi[source][1] * float(
                        structure.source_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_source.setdefault(source, np.zeros(3))
                g_source[source] += g

            for worker, value in answers.items():
                u = structure.index[value]
                likelihood = structure.worker_likelihood_row(u, psi[worker])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = psi[worker][0] * mu_o[u] / z
                    g2 = psi[worker][1] * float(
                        structure.worker_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_worker.setdefault(worker, np.zeros(3))
                g_worker[worker] += g

            numerator = f_sum + gamma_minus_1
            denominator = len(claims) + len(answers) + n * gamma_minus_1
            numerators[obj] = numerator
            denominators[obj] = denominator
            new_mu[obj] = numerator / denominator if denominator > 0 else (
                np.full(n, 1.0 / n)
            )

        return new_mu, numerators, denominators, g_source, g_worker

    @staticmethod
    def _update_trust(
        g_sums: Dict,
        prior: np.ndarray,
        prior_mean: np.ndarray,
    ) -> Dict:
        """Eq. (10)/(11): Dirichlet-MAP update of a trustworthiness triple."""
        updated = {}
        prior_minus_1 = prior - 1.0
        prior_total = prior_minus_1.sum()
        for key, sums in g_sums.items():
            count = sums.sum()  # responsibilities per claim sum to 1 => |Os|
            denominator = count + prior_total
            if denominator <= 0:
                updated[key] = prior_mean.copy()
                continue
            vec = (sums + prior_minus_1) / denominator
            vec = np.clip(vec, 1e-12, None)
            updated[key] = vec / vec.sum()
        return updated

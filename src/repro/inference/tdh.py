"""TDH — Truth Discovery in the presence of Hierarchies (paper Section 3).

The generative model gives every source ``s`` a trustworthiness distribution
``phi_s = (phi_exact, phi_generalized, phi_wrong)`` and every worker ``w`` a
``psi_w`` of the same shape; each object ``o`` carries a confidence
distribution ``mu_o`` over its candidate values. This module implements the
MAP EM of Section 3.2:

* **E-step** (Figure 4): posterior truth responsibilities ``f`` for every
  record/answer and case responsibilities ``g`` per claim:
  ``f_{c,v} = P(claim u | truth v, phi_c) mu_{o,v} / Z_c`` with
  ``Z_c = sum_v' P(u | v', phi_c) mu_{o,v'}``, and
  ``g_{c,k} = phi_{c,k} L_k(u | .) . mu_o / Z_c`` for the three
  interpretation cases k (exact / generalized / wrong);
* **M-step**: Dirichlet-smoothed closed-form updates, Eq. (9)-(11) —
  ``mu_{o,v} = (sum_c f_{c,v} + gamma - 1) / (|claims_o| + |Vo|(gamma - 1))``
  and ``phi_{s,k} = (sum_c g_{c,k} + alpha_k - 1) / (|Os| + sum(alpha) - 3)``
  (same shape with ``beta`` for worker ``psi``);
* **truth**: argmax confidence, Eq. (12).

Two execution engines implement the identical updates. The reference engine
walks per-object dicts with the small per-object likelihood matrices of
:mod:`repro.inference._structures`. The columnar engine (``use_columnar``)
evaluates the case weights of Eq. (1)-(4) once per claim x candidate pair —
the ancestor tests come from
:class:`~repro.data.columnar.ColumnarHierarchy`'s Euler intervals, the
popularity denominators from its CSR ancestor arrays — after which every EM
round is a handful of ``np.bincount`` scatter/gathers over the flat claim
table. Parity (1e-8, identical iteration counts) is enforced by
``tests/test_columnar_parity.py``.

The result object additionally exposes the numerators ``N_{o,v}`` and
denominators ``D_o`` of Eq. (9), which the EAI task assigner's incremental
EM (Section 4.2) reuses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.columnar import ColumnarClaims, resolve_engine
from ..data.model import ObjectId, SourceId, TruthDiscoveryDataset, WorkerId
from ..data.sharding import ColumnarShards, parallel_plan
from ._structures import ObjectStructure, StructureCache
from .base import InferenceResult, TruthInferenceAlgorithm

DEFAULT_ALPHA = (3.0, 3.0, 2.0)
"""Source prior from Section 5.1: correct values are more frequent than wrong."""

DEFAULT_BETA = (2.0, 2.0, 2.0)
"""Worker prior (all dimensions 2, Section 5.1)."""

DEFAULT_GAMMA = 2.0
"""Per-value confidence prior (all dimensions 2, Section 5.1)."""


class TDHResult(InferenceResult):
    """TDH fit: confidences plus source/worker trustworthiness and EM state."""

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        confidences: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
        numerators: Dict[ObjectId, np.ndarray],
        denominators: Dict[ObjectId, float],
        structures: StructureCache,
        iterations: int,
        converged: bool,
    ) -> None:
        super().__init__(dataset, confidences, iterations, converged)
        self.phi = phi
        self.psi = psi
        self.numerators = numerators
        self.denominators = denominators
        self.structures = structures
        #: The dataset's record-mutation counter at fit time. The columnar
        #: EAI assigner refuses to build its likelihood tables when this no
        #: longer matches the dataset (records added between fit and assign
        #: would silently change the Pop2/Pop3 popularity weights).
        self.records_version = getattr(dataset, "_records_version", 0)
        #: Set by the columnar engine: ``(encoding, mu, numerators,
        #: denominators)`` as flat slot/object arrays, which the columnar EAI
        #: assigner consumes directly (the dict views above alias ``mu`` and
        #: ``numerators``, so the two representations cannot diverge).
        self.columnar_state: Optional[
            Tuple[ColumnarClaims, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    def source_trustworthiness(self, source: SourceId) -> Tuple[float, float, float]:
        """``(phi_exact, phi_generalized, phi_wrong)`` for ``source``."""
        vec = self.phi[source]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_trustworthiness(self, worker: WorkerId) -> Tuple[float, float, float]:
        """``(psi_exact, psi_generalized, psi_wrong)`` for ``worker``."""
        vec = self.psi[worker]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_psi(self, worker: WorkerId, prior: Sequence[float] = DEFAULT_BETA) -> np.ndarray:
        """``psi`` for ``worker``, falling back to the prior mean for unseen workers."""
        vec = self.psi.get(worker)
        if vec is not None:
            return vec
        prior_arr = np.asarray(prior, dtype=float)
        return prior_arr / prior_arr.sum()


def _tdh_estep_kernel(shard, consts, state):
    """One TDH E-step over one object-range shard (Figure 4, Eq. 1-8).

    ``consts`` holds the shard's slices of the per-pair case weights (built
    once per fit), ``state`` the loop state (``trust``, global flat ``mu``).
    Returns the shard's slice of the confidence numerator sums plus the
    per-claim case responsibilities ``g1``/``g2``/``g3`` — the per-claimant
    reduction runs globally on the concatenated arrays so the accumulation
    order (hence every float) matches the unsharded path exactly; see the
    merge contract in :mod:`repro.data.sharding`.
    """
    trust = state["trust"]
    mu = state["mu"][shard.slot_lo : shard.slot_hi]
    pc = consts["pair_claimant"]
    mu_pair = mu[shard.pair_slot]
    like = (
        trust[:, 0][pc] * consts["exact"]
        + trust[:, 1][pc] * consts["case2"]
        + trust[:, 2][pc] * consts["case3"]
    )
    joint = like * mu_pair
    z = np.bincount(shard.pair_claim, weights=joint, minlength=shard.n_claims)
    zpos = z > 0
    z_safe = np.where(zpos, z, 1.0)
    # Degenerate claims (z <= 0) fall back to the prior confidence, exactly
    # like the reference sweep.
    f = np.where(zpos[shard.pair_claim], joint / z_safe[shard.pair_claim], mu_pair)
    f_sum = np.bincount(shard.pair_slot, weights=f, minlength=shard.n_slots)

    t_claim = trust[shard.claim_claimant]
    s2 = np.bincount(
        shard.pair_claim, weights=consts["case2"] * mu_pair, minlength=shard.n_claims
    )
    third = 1.0 / 3.0
    g1 = np.where(zpos, t_claim[:, 0] * mu[shard.claim_slot] / z_safe, third)
    g2 = np.where(zpos, t_claim[:, 1] * s2 / z_safe, third)
    g3 = np.where(zpos, np.maximum(0.0, 1.0 - g1 - g2), third)
    return f_sum, g1, g2, g3


class TDHModel(TruthInferenceAlgorithm):
    """The paper's hierarchical truth-inference EM.

    Parameters
    ----------
    alpha, beta:
        Dirichlet hyperparameters of the source / worker trustworthiness
        priors. Defaults are the paper's Section 5.1 settings.
    gamma:
        Symmetric Dirichlet hyperparameter of the confidence prior; a scalar
        applied to every candidate value.
    max_iter, tol:
        EM stopping rule — stop when the largest absolute confidence change
        falls below ``tol`` or after ``max_iter`` iterations.
    use_hierarchy:
        Ablation switch: ``False`` collapses the model to two interpretations
        (exact / wrong), i.e. the hierarchy-blind variant the paper argues
        against.
    use_popularity:
        Ablation switch: ``False`` replaces the worker popularity terms
        ``Pop2``/``Pop3`` (Eq. 3) with the uniform weighting of Eq. (1).
    collapse_flat_objects:
        Ablation switch: ``False`` disables the Eq. (2)/(4) special case for
        objects outside ``OH``, leaving their case-2 channel unsupported —
        the configuration the paper warns underestimates ``phi_2``.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    n_jobs, shards, parallel_backend:
        Parallel-execution knobs for the columnar engine: the E/M steps run
        over ``shards`` object-range shards (default: one per worker) on
        ``n_jobs`` workers (``-1`` = all cores) under the given backend
        (``"thread"`` / ``"process"`` / ``"serial"``). Results are bitwise
        identical to the unsharded path for every configuration; see
        :mod:`repro.data.sharding`.
    """

    name = "TDH"
    supports_workers = True

    def __init__(
        self,
        alpha: Sequence[float] = DEFAULT_ALPHA,
        beta: Sequence[float] = DEFAULT_BETA,
        gamma: float = DEFAULT_GAMMA,
        max_iter: int = 100,
        tol: float = 1e-6,
        use_hierarchy: bool = True,
        use_popularity: bool = True,
        collapse_flat_objects: bool = True,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "thread",
    ) -> None:
        self.alpha = np.asarray(alpha, dtype=float)
        self.beta = np.asarray(beta, dtype=float)
        if self.alpha.shape != (3,) or self.beta.shape != (3,):
            raise ValueError("alpha and beta must have three components")
        if gamma < 1.0:
            raise ValueError("gamma must be >= 1 for a proper MAP update")
        self.gamma = float(gamma)
        self.max_iter = max_iter
        self.tol = tol
        self.use_hierarchy = use_hierarchy
        self.use_popularity = use_popularity
        self.collapse_flat_objects = collapse_flat_objects
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend

    def make_structure_cache(self, dataset: TruthDiscoveryDataset) -> StructureCache:
        """A structure cache matching this model's ablation flags."""
        return StructureCache(
            dataset,
            use_hierarchy=self.use_hierarchy,
            use_popularity=self.use_popularity,
            collapse_flat_objects=self.collapse_flat_objects,
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult] = None,
        structures: Optional[StructureCache] = None,
    ) -> TDHResult:
        """Run EM to convergence and return a :class:`TDHResult`.

        ``warm_start`` (a previous fit on the same records) seeds source and
        worker trustworthiness, which the round-based crowd simulator uses to
        avoid re-learning from scratch every round. ``structures`` may share a
        :class:`StructureCache` across fits on identical records.
        """
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset, warm_start, structures)
        return self._fit_reference(dataset, warm_start, structures)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _pair_case_arrays(self, col: ColumnarClaims):
        """Per claim x candidate case weights of Eq. (1)-(4), as flat arrays.

        Element ``p`` of each returned array is the corresponding entry
        ``[u, v]`` of the reference :class:`ObjectStructure` matrices, where
        ``u`` is the pair's claimed value and ``v`` its hypothesised truth.
        The ablation flags are honoured exactly as in
        :func:`repro.inference._structures.build_structure`.
        """
        pairs = col.pairs
        n_pairs = len(pairs.pair_claim)
        n = pairs.pair_size  # |Vo| per pair, float
        exact_f = pairs.pair_is_claimed.astype(np.float64)

        if self.use_hierarchy:
            # Only this ablation branch needs the encoded hierarchy; keep the
            # hierarchy-blind variant from paying for its construction.
            hier = col.hierarchy
            anc = hier.is_ancestor_vid(
                col.claim_vid[pairs.pair_claim], col.slot_vid[pairs.pair_slot]
            )
            gsize = hier.slot_gsize[pairs.pair_slot].astype(np.float64)
            hflag_obj = (
                np.ones(col.n_objects, dtype=bool)
                if not self.collapse_flat_objects
                else hier.obj_has_hierarchy
            )
        else:
            anc = np.zeros(n_pairs, dtype=bool)
            gsize = np.zeros(n_pairs, dtype=np.float64)
            hflag_obj = np.zeros(col.n_objects, dtype=bool)
        hflag = hflag_obj[col.claim_obj[pairs.pair_claim]]
        anc_f = anc.astype(np.float64)
        case3_f = (~pairs.pair_is_claimed & ~anc).astype(np.float64)

        # Eq. (1)/(2): generalized truths uniform over Go(v); wrong values
        # uniform over the remaining candidates (all non-truth ones for
        # objects outside OH).
        src2_h = np.where(gsize > 0, anc_f / np.maximum(gsize, 1.0), 0.0)
        wrong = n - gsize - 1.0
        src3_h = np.where(wrong > 0, case3_f / np.maximum(wrong, 1.0), 0.0)
        src3_flat = np.where(n > 1, case3_f / np.maximum(n - 1.0, 1.0), 0.0)
        source_case2 = np.where(hflag, src2_h, exact_f)
        source_case3 = np.where(hflag, src3_h, src3_flat)

        if not self.use_popularity:
            return exact_f, source_case2, source_case3, source_case2, source_case3

        # Eq. (3): Pop2/Pop3 redistribute the worker case mass by how often
        # sources claimed each value.
        counts, pop2_slot, pop3_slot = col.popularity_denominators(self.use_hierarchy)
        u_counts = counts[col.claim_slot[pairs.pair_claim]]
        pop2 = pop2_slot[pairs.pair_slot]
        pop3 = pop3_slot[pairs.pair_slot]
        wrk2_h = np.where(pop2 > 0, anc_f * u_counts / np.maximum(pop2, 1.0), 0.0)
        worker_case2 = np.where(hflag, wrk2_h, exact_f)
        worker_case3 = np.where(pop3 > 0, case3_f * u_counts / np.maximum(pop3, 1.0), 0.0)
        return exact_f, source_case2, source_case3, worker_case2, worker_case3

    def _fit_columnar(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult],
        structures: Optional[StructureCache],
    ) -> TDHResult:
        col = dataset.columnar()
        pairs = col.pairs
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()
        is_worker = col.claimant_is_worker

        trust = np.where(is_worker[:, None], prior_psi, prior_phi)
        if warm_start is not None:
            for cid, key in enumerate(col.claimants):
                vec = (
                    warm_start.psi.get(key[1])
                    if is_worker[cid]
                    else warm_start.phi.get(key)
                )
                if vec is not None:
                    trust[cid] = vec

        # Per-pair case weights of Eq. (1)-(4): iteration-invariant, computed
        # once globally and sliced per shard into the kernel constants.
        exact_f, src2, src3, wrk2, wrk3 = self._pair_case_arrays(col)
        is_answer_pair = col.claim_is_answer[pairs.pair_claim]
        case2 = np.where(is_answer_pair, wrk2, src2)
        case3 = np.where(is_answer_pair, wrk3, src3)
        pair_claimant = col.claim_claimant[pairs.pair_claim]
        consts = [
            {"exact": e, "case2": c2, "case3": c3, "pair_claimant": pc}
            for e, c2, c3, pc in zip(
                shards.slice_pairs(exact_f),
                shards.slice_pairs(case2),
                shards.slice_pairs(case3),
                shards.slice_pairs(pair_claimant),
            )
        ]

        mu = col.initial_confidences_flat()
        gamma_minus_1 = self.gamma - 1.0
        denom_obj = (
            np.diff(col.claim_offsets).astype(np.float64)
            + col.sizes * gamma_minus_1
        )
        den_slot = denom_obj[col.slot_obj]
        den_positive = den_slot > 0
        den_safe = np.where(den_positive, den_slot, 1.0)
        uniform_slot = 1.0 / col.sizes.astype(np.float64)[col.slot_obj]
        prior_m1 = np.where(is_worker[:, None], self.beta - 1.0, self.alpha - 1.0)
        prior_mean = np.where(is_worker[:, None], prior_psi, prior_phi)

        numer_flat = np.zeros(col.n_slots, dtype=np.float64)
        iterations = 0
        converged = False

        with executor.session(shards, consts) as sess:
            for iterations in range(1, self.max_iter + 1):
                # E-step per shard: every per-claim / per-slot quantity is
                # computed inside the shard that owns the object.
                parts = sess.map(_tdh_estep_kernel, {"trust": trust, "mu": mu})
                f_sum = ColumnarShards.concat([p[0] for p in parts])
                g1 = ColumnarShards.concat([p[1] for p in parts])
                g2 = ColumnarShards.concat([p[2] for p in parts])
                g3 = ColumnarShards.concat([p[3] for p in parts])
                # Cross-shard reduction over claimants: one global bincount
                # on the concatenated per-claim responsibilities (the merge
                # contract's bitwise-stable half).
                g_sums = np.stack(
                    [
                        np.bincount(
                            col.claim_claimant, weights=g, minlength=col.n_claimants
                        )
                        for g in (g1, g2, g3)
                    ],
                    axis=1,
                )

                # M-step for trustworthiness (Eq. 10-11).
                count_c = g_sums.sum(axis=1)
                denom_c = count_c + prior_m1.sum(axis=1)
                vec = (g_sums + prior_m1) / np.where(denom_c > 0, denom_c, 1.0)[:, None]
                vec = np.clip(vec, 1e-12, None)
                vec = vec / vec.sum(axis=1, keepdims=True)
                trust = np.where((denom_c > 0)[:, None], vec, prior_mean)

                # M-step for confidences (Eq. 9).
                numer_flat = f_sum + gamma_minus_1
                new_mu = np.where(den_positive, numer_flat / den_safe, uniform_slot)
                delta = float(np.max(np.abs(new_mu - mu))) if col.n_slots else 0.0
                mu = new_mu
                if delta < self.tol:
                    converged = True
                    break

        phi: Dict[SourceId, np.ndarray] = {}
        psi: Dict[WorkerId, np.ndarray] = {}
        for cid, key in enumerate(col.claimants):
            if is_worker[cid]:
                psi[key[1]] = trust[cid].copy()
            else:
                phi[key] = trust[cid].copy()

        result = TDHResult(
            dataset=dataset,
            confidences=col.to_confidences(mu),
            phi=phi,
            psi=psi,
            numerators=col.to_confidences(numer_flat),
            denominators={
                obj: float(denom_obj[oid]) for oid, obj in enumerate(col.objects)
            },
            structures=cache,
            iterations=iterations,
            converged=converged,
        )
        result.columnar_state = (col, mu, numer_flat, denom_obj)
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult] = None,
        structures: Optional[StructureCache] = None,
    ) -> TDHResult:
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        objects = dataset.objects
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()

        phi: Dict[SourceId, np.ndarray] = {}
        for source in dataset.sources:
            if warm_start is not None and source in warm_start.phi:
                phi[source] = warm_start.phi[source].copy()
            else:
                phi[source] = prior_phi.copy()
        psi: Dict[WorkerId, np.ndarray] = {}
        for worker in dataset.workers:
            if warm_start is not None and worker in warm_start.psi:
                psi[worker] = warm_start.psi[worker].copy()
            else:
                psi[worker] = prior_psi.copy()

        mu: Dict[ObjectId, np.ndarray] = {}
        for obj in objects:
            structure = cache.get(obj)
            counts = structure.counts.copy()
            for value in dataset.answers_for(obj).values():
                counts[structure.index[value]] += 1.0
            total = counts.sum()
            mu[obj] = (
                counts / total
                if total > 0
                else np.full(structure.size, 1.0 / structure.size)
            )

        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        iterations = 0
        converged = False

        records_by_object = {obj: dataset.records_for(obj) for obj in objects}
        answers_by_object = {obj: dataset.answers_for(obj) for obj in objects}

        for iterations in range(1, self.max_iter + 1):
            new_mu, numerators, denominators, g_source, g_worker = self._em_sweep(
                objects, records_by_object, answers_by_object, cache, mu, phi, psi
            )
            # M-step for trustworthiness (Eq. 10-11).
            phi = self._update_trust(g_source, self.alpha, prior_phi)
            psi = self._update_trust(g_worker, self.beta, prior_psi)

            delta = max(
                (float(np.max(np.abs(new_mu[obj] - mu[obj]))) for obj in objects),
                default=0.0,
            )
            mu = new_mu
            if delta < self.tol:
                converged = True
                break

        return TDHResult(
            dataset=dataset,
            confidences=mu,
            phi=phi,
            psi=psi,
            numerators=numerators,
            denominators=denominators,
            structures=cache,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _em_sweep(
        self,
        objects,
        records_by_object,
        answers_by_object,
        cache: StructureCache,
        mu: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
    ):
        """One fused E-step + confidence M-step over all claims.

        Returns the new confidences, their numerators/denominators (Eq. 9) and
        the per-source / per-worker case-responsibility sums feeding Eq. (10)
        and (11).
        """
        gamma_minus_1 = self.gamma - 1.0
        new_mu: Dict[ObjectId, np.ndarray] = {}
        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        g_source: Dict[SourceId, np.ndarray] = {}
        g_worker: Dict[WorkerId, np.ndarray] = {}

        for obj in objects:
            structure = cache.get(obj)
            mu_o = mu[obj]
            n = structure.size
            f_sum = np.zeros(n)
            claims = records_by_object[obj]
            answers = answers_by_object[obj]

            for source, value in claims.items():
                u = structure.index[value]
                likelihood = structure.source_likelihood_row(u, phi[source])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    # Degenerate likelihood (e.g. zero-mass claim); fall back
                    # to the prior confidence so EM keeps moving.
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = phi[source][0] * mu_o[u] / z
                    g2 = phi[source][1] * float(
                        structure.source_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_source.setdefault(source, np.zeros(3))
                g_source[source] += g

            for worker, value in answers.items():
                u = structure.index[value]
                likelihood = structure.worker_likelihood_row(u, psi[worker])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = psi[worker][0] * mu_o[u] / z
                    g2 = psi[worker][1] * float(
                        structure.worker_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_worker.setdefault(worker, np.zeros(3))
                g_worker[worker] += g

            numerator = f_sum + gamma_minus_1
            denominator = len(claims) + len(answers) + n * gamma_minus_1
            numerators[obj] = numerator
            denominators[obj] = denominator
            new_mu[obj] = numerator / denominator if denominator > 0 else (
                np.full(n, 1.0 / n)
            )

        return new_mu, numerators, denominators, g_source, g_worker

    @staticmethod
    def _update_trust(
        g_sums: Dict,
        prior: np.ndarray,
        prior_mean: np.ndarray,
    ) -> Dict:
        """Eq. (10)/(11): Dirichlet-MAP update of a trustworthiness triple."""
        updated = {}
        prior_minus_1 = prior - 1.0
        prior_total = prior_minus_1.sum()
        for key, sums in g_sums.items():
            count = sums.sum()  # responsibilities per claim sum to 1 => |Os|
            denominator = count + prior_total
            if denominator <= 0:
                updated[key] = prior_mean.copy()
                continue
            vec = (sums + prior_minus_1) / denominator
            vec = np.clip(vec, 1e-12, None)
            updated[key] = vec / vec.sum()
        return updated

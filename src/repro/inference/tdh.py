"""TDH — Truth Discovery in the presence of Hierarchies (paper Section 3).

The generative model gives every source ``s`` a trustworthiness distribution
``phi_s = (phi_exact, phi_generalized, phi_wrong)`` and every worker ``w`` a
``psi_w`` of the same shape; each object ``o`` carries a confidence
distribution ``mu_o`` over its candidate values. This module implements the
MAP EM of Section 3.2:

* **E-step** (Figure 4): posterior truth responsibilities ``f`` for every
  record/answer and case responsibilities ``g`` per claim;
* **M-step**: Dirichlet-smoothed closed-form updates, Eq. (9)-(11);
* **truth**: argmax confidence, Eq. (12).

The result object additionally exposes the numerators ``N_{o,v}`` and
denominators ``D_o`` of Eq. (9), which the EAI task assigner's incremental
EM (Section 4.2) reuses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.model import ObjectId, SourceId, TruthDiscoveryDataset, WorkerId
from ._structures import ObjectStructure, StructureCache
from .base import InferenceResult, TruthInferenceAlgorithm

DEFAULT_ALPHA = (3.0, 3.0, 2.0)
"""Source prior from Section 5.1: correct values are more frequent than wrong."""

DEFAULT_BETA = (2.0, 2.0, 2.0)
"""Worker prior (all dimensions 2, Section 5.1)."""

DEFAULT_GAMMA = 2.0
"""Per-value confidence prior (all dimensions 2, Section 5.1)."""


class TDHResult(InferenceResult):
    """TDH fit: confidences plus source/worker trustworthiness and EM state."""

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        confidences: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
        numerators: Dict[ObjectId, np.ndarray],
        denominators: Dict[ObjectId, float],
        structures: StructureCache,
        iterations: int,
        converged: bool,
    ) -> None:
        super().__init__(dataset, confidences, iterations, converged)
        self.phi = phi
        self.psi = psi
        self.numerators = numerators
        self.denominators = denominators
        self.structures = structures

    def source_trustworthiness(self, source: SourceId) -> Tuple[float, float, float]:
        """``(phi_exact, phi_generalized, phi_wrong)`` for ``source``."""
        vec = self.phi[source]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_trustworthiness(self, worker: WorkerId) -> Tuple[float, float, float]:
        """``(psi_exact, psi_generalized, psi_wrong)`` for ``worker``."""
        vec = self.psi[worker]
        return (float(vec[0]), float(vec[1]), float(vec[2]))

    def worker_psi(self, worker: WorkerId, prior: Sequence[float] = DEFAULT_BETA) -> np.ndarray:
        """``psi`` for ``worker``, falling back to the prior mean for unseen workers."""
        vec = self.psi.get(worker)
        if vec is not None:
            return vec
        prior_arr = np.asarray(prior, dtype=float)
        return prior_arr / prior_arr.sum()


class TDHModel(TruthInferenceAlgorithm):
    """The paper's hierarchical truth-inference EM.

    Parameters
    ----------
    alpha, beta:
        Dirichlet hyperparameters of the source / worker trustworthiness
        priors. Defaults are the paper's Section 5.1 settings.
    gamma:
        Symmetric Dirichlet hyperparameter of the confidence prior; a scalar
        applied to every candidate value.
    max_iter, tol:
        EM stopping rule — stop when the largest absolute confidence change
        falls below ``tol`` or after ``max_iter`` iterations.
    use_hierarchy:
        Ablation switch: ``False`` collapses the model to two interpretations
        (exact / wrong), i.e. the hierarchy-blind variant the paper argues
        against.
    use_popularity:
        Ablation switch: ``False`` replaces the worker popularity terms
        ``Pop2``/``Pop3`` (Eq. 3) with the uniform weighting of Eq. (1).
    collapse_flat_objects:
        Ablation switch: ``False`` disables the Eq. (2)/(4) special case for
        objects outside ``OH``, leaving their case-2 channel unsupported —
        the configuration the paper warns underestimates ``phi_2``.
    """

    name = "TDH"
    supports_workers = True

    def __init__(
        self,
        alpha: Sequence[float] = DEFAULT_ALPHA,
        beta: Sequence[float] = DEFAULT_BETA,
        gamma: float = DEFAULT_GAMMA,
        max_iter: int = 100,
        tol: float = 1e-6,
        use_hierarchy: bool = True,
        use_popularity: bool = True,
        collapse_flat_objects: bool = True,
    ) -> None:
        self.alpha = np.asarray(alpha, dtype=float)
        self.beta = np.asarray(beta, dtype=float)
        if self.alpha.shape != (3,) or self.beta.shape != (3,):
            raise ValueError("alpha and beta must have three components")
        if gamma < 1.0:
            raise ValueError("gamma must be >= 1 for a proper MAP update")
        self.gamma = float(gamma)
        self.max_iter = max_iter
        self.tol = tol
        self.use_hierarchy = use_hierarchy
        self.use_popularity = use_popularity
        self.collapse_flat_objects = collapse_flat_objects

    def make_structure_cache(self, dataset: TruthDiscoveryDataset) -> StructureCache:
        """A structure cache matching this model's ablation flags."""
        return StructureCache(
            dataset,
            use_hierarchy=self.use_hierarchy,
            use_popularity=self.use_popularity,
            collapse_flat_objects=self.collapse_flat_objects,
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[TDHResult] = None,
        structures: Optional[StructureCache] = None,
    ) -> TDHResult:
        """Run EM to convergence and return a :class:`TDHResult`.

        ``warm_start`` (a previous fit on the same records) seeds source and
        worker trustworthiness, which the round-based crowd simulator uses to
        avoid re-learning from scratch every round. ``structures`` may share a
        :class:`StructureCache` across fits on identical records.
        """
        cache = structures if structures is not None else self.make_structure_cache(dataset)
        objects = dataset.objects
        prior_phi = self.alpha / self.alpha.sum()
        prior_psi = self.beta / self.beta.sum()

        phi: Dict[SourceId, np.ndarray] = {}
        for source in dataset.sources:
            if warm_start is not None and source in warm_start.phi:
                phi[source] = warm_start.phi[source].copy()
            else:
                phi[source] = prior_phi.copy()
        psi: Dict[WorkerId, np.ndarray] = {}
        for worker in dataset.workers:
            if warm_start is not None and worker in warm_start.psi:
                psi[worker] = warm_start.psi[worker].copy()
            else:
                psi[worker] = prior_psi.copy()

        mu: Dict[ObjectId, np.ndarray] = {}
        for obj in objects:
            structure = cache.get(obj)
            counts = structure.counts.copy()
            for value in dataset.answers_for(obj).values():
                counts[structure.index[value]] += 1.0
            total = counts.sum()
            mu[obj] = (
                counts / total
                if total > 0
                else np.full(structure.size, 1.0 / structure.size)
            )

        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        iterations = 0
        converged = False

        records_by_object = {obj: dataset.records_for(obj) for obj in objects}
        answers_by_object = {obj: dataset.answers_for(obj) for obj in objects}

        for iterations in range(1, self.max_iter + 1):
            new_mu, numerators, denominators, g_source, g_worker = self._em_sweep(
                objects, records_by_object, answers_by_object, cache, mu, phi, psi
            )
            # M-step for trustworthiness (Eq. 10-11).
            phi = self._update_trust(g_source, self.alpha, prior_phi)
            psi = self._update_trust(g_worker, self.beta, prior_psi)

            delta = max(
                (float(np.max(np.abs(new_mu[obj] - mu[obj]))) for obj in objects),
                default=0.0,
            )
            mu = new_mu
            if delta < self.tol:
                converged = True
                break

        return TDHResult(
            dataset=dataset,
            confidences=mu,
            phi=phi,
            psi=psi,
            numerators=numerators,
            denominators=denominators,
            structures=cache,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _em_sweep(
        self,
        objects,
        records_by_object,
        answers_by_object,
        cache: StructureCache,
        mu: Dict[ObjectId, np.ndarray],
        phi: Dict[SourceId, np.ndarray],
        psi: Dict[WorkerId, np.ndarray],
    ):
        """One fused E-step + confidence M-step over all claims.

        Returns the new confidences, their numerators/denominators (Eq. 9) and
        the per-source / per-worker case-responsibility sums feeding Eq. (10)
        and (11).
        """
        gamma_minus_1 = self.gamma - 1.0
        new_mu: Dict[ObjectId, np.ndarray] = {}
        numerators: Dict[ObjectId, np.ndarray] = {}
        denominators: Dict[ObjectId, float] = {}
        g_source: Dict[SourceId, np.ndarray] = {}
        g_worker: Dict[WorkerId, np.ndarray] = {}

        for obj in objects:
            structure = cache.get(obj)
            mu_o = mu[obj]
            n = structure.size
            f_sum = np.zeros(n)
            claims = records_by_object[obj]
            answers = answers_by_object[obj]

            for source, value in claims.items():
                u = structure.index[value]
                likelihood = structure.source_likelihood_row(u, phi[source])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    # Degenerate likelihood (e.g. zero-mass claim); fall back
                    # to the prior confidence so EM keeps moving.
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = phi[source][0] * mu_o[u] / z
                    g2 = phi[source][1] * float(
                        structure.source_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_source.setdefault(source, np.zeros(3))
                g_source[source] += g

            for worker, value in answers.items():
                u = structure.index[value]
                likelihood = structure.worker_likelihood_row(u, psi[worker])
                joint = likelihood * mu_o
                z = joint.sum()
                if z <= 0:
                    f = mu_o.copy()
                    g = np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
                else:
                    f = joint / z
                    g1 = psi[worker][0] * mu_o[u] / z
                    g2 = psi[worker][1] * float(
                        structure.worker_case2[u] @ mu_o
                    ) / z
                    g = np.array([g1, g2, max(0.0, 1.0 - g1 - g2)])
                f_sum += f
                g_worker.setdefault(worker, np.zeros(3))
                g_worker[worker] += g

            numerator = f_sum + gamma_minus_1
            denominator = len(claims) + len(answers) + n * gamma_minus_1
            numerators[obj] = numerator
            denominators[obj] = denominator
            new_mu[obj] = numerator / denominator if denominator > 0 else (
                np.full(n, 1.0 / n)
            )

        return new_mu, numerators, denominators, g_source, g_worker

    @staticmethod
    def _update_trust(
        g_sums: Dict,
        prior: np.ndarray,
        prior_mean: np.ndarray,
    ) -> Dict:
        """Eq. (10)/(11): Dirichlet-MAP update of a trustworthiness triple."""
        updated = {}
        prior_minus_1 = prior - 1.0
        prior_total = prior_minus_1.sum()
        for key, sums in g_sums.items():
            count = sums.sum()  # responsibilities per claim sum to 1 => |Os|
            denominator = count + prior_total
            if denominator <= 0:
                updated[key] = prior_mean.copy()
                continue
            vec = (sums + prior_minus_1) / denominator
            vec = np.clip(vec, 1e-12, None)
            updated[key] = vec / vec.sum()
        return updated

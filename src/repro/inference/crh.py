"""CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD 2014).

CRH alternates between (1) inferring truths as the weighted aggregate of
claims and (2) re-weighting sources by their total loss:
``w_s = -log( loss_s / sum_s' loss_s' )``. Categorical attributes use 0-1
loss with weighted voting; numeric attributes use variance-normalised squared
loss with a weighted mean — both from the original framework, so the same
class serves Table 3 (categorical) and Table 6 (numeric).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from ..data.sharding import ColumnarShards, parallel_plan
from .base import ColumnarInferenceResult, InferenceResult, TruthInferenceAlgorithm


def _crh_step_kernel(shard, consts, state):
    """One CRH truth step + 0-1 loss evaluation over one shard.

    The weighted vote, the per-object normalize/argmax and the per-claim
    loss are all shard-local; the per-claimant loss reduction runs globally
    on the concatenated per-claim ``wrong`` flags (claimants span shards).
    Returns ``(confidences_slice, wrong_per_claim)``.
    """
    scores = shard.weighted_counts(state["weights"])
    flat_conf = shard.segment_normalize(scores)
    truth_slot = shard.segment_argmax_slot(scores)
    wrong = (shard.claim_slot != truth_slot[shard.claim_obj]).astype(np.float64)
    return flat_conf, wrong


class Crh(TruthInferenceAlgorithm):
    """CRH for categorical claims (weighted voting + loss-based weights).

    ``use_columnar`` selects between the per-object dict loop (reference) and
    the vectorized engine, where both CRH steps collapse to ``np.bincount``
    calls over the flat claim table: the weighted vote scatters claimant
    weights onto candidate slots, and the 0-1 loss step compares each claim's
    slot against the per-object argmax slot. ``n_jobs`` / ``shards`` /
    ``parallel_backend`` run the vectorized steps over object-range shards
    with bitwise-identical results (see :mod:`repro.data.sharding`).
    """

    name = "CRH"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 30,
        tol: float = 1e-4,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "thread",
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        weights = np.ones(col.n_claimants, dtype=np.float64)
        counts = col.claimant_counts()
        flat_conf = np.zeros(col.n_slots, dtype=np.float64)
        iterations = 0
        converged = False

        with executor.session(shards) as sess:
            for iterations in range(1, self.max_iter + 1):
                # Truth step per shard: weighted vote + per-object argmax,
                # then 0-1 loss per claim against the current truths.
                parts = sess.map(_crh_step_kernel, {"weights": weights})
                flat_conf = ColumnarShards.concat([p[0] for p in parts])
                wrong = ColumnarShards.concat([p[1] for p in parts])
                # Weight step: global per-claimant loss reduction.
                losses = np.bincount(
                    col.claim_claimant, weights=wrong, minlength=col.n_claimants
                )
                ratios = (losses + 0.5) / (counts + 1.0)
                new_weights = -np.log(ratios / ratios.sum())
                delta = (
                    float(np.max(np.abs(new_weights - weights)))
                    if col.n_claimants
                    else 0.0
                )
                weights = new_weights
                if delta < self.tol:
                    converged = True
                    break
        result = ColumnarInferenceResult(dataset, col, flat_conf, iterations, converged)
        result.source_weights = col.claimant_mapping(weights)  # type: ignore[attr-defined]
        return result

    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        weights: Dict[Hashable, float] = {c: 1.0 for c in claimants}
        confidences: Dict[ObjectId, np.ndarray] = {}
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            # Truth step: weighted vote.
            confidences = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                scores = np.zeros(ctx.size)
                for claimant, value in claims.items():
                    scores[ctx.index[value]] += weights[claimant]
                total = scores.sum()
                confidences[obj] = (
                    scores / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
                )
            truths = {
                obj: dataset.context(obj).values[int(np.argmax(vec))]
                for obj, vec in confidences.items()
            }
            # Weight step: 0-1 loss against current truths.
            losses: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            counts: Dict[Hashable, int] = {c: 0 for c in claimants}
            for obj, claims in claims_cache.items():
                for claimant, value in claims.items():
                    losses[claimant] += 0.0 if value == truths[obj] else 1.0
                    counts[claimant] += 1
            total_loss = sum(
                (losses[c] + 0.5) / (counts[c] + 1.0) for c in claimants
            )
            new_weights = {
                c: -math.log(((losses[c] + 0.5) / (counts[c] + 1.0)) / total_loss)
                for c in claimants
            }
            delta = max(
                abs(new_weights[c] - weights[c]) for c in claimants
            ) if claimants else 0.0
            weights = new_weights
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.source_weights = weights  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims


class CrhNumeric:
    """CRH for numeric claims: weighted mean + normalised squared loss.

    Operates on raw numeric claim tables (``object -> {source: value}``)
    rather than :class:`TruthDiscoveryDataset`, since numeric truths are not
    restricted to candidate values.
    """

    name = "CRH"

    def __init__(self, max_iter: int = 30, tol: float = 1e-6) -> None:
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, claims: Mapping[ObjectId, Mapping[Hashable, float]]) -> Dict[ObjectId, float]:
        """Return the estimated numeric truth per object."""
        sources = {s for per_obj in claims.values() for s in per_obj}
        weights: Dict[Hashable, float] = {s: 1.0 for s in sources}
        truths: Dict[ObjectId, float] = {
            obj: float(np.median(list(per_obj.values()))) for obj, per_obj in claims.items()
        }
        # Per-object scale for loss normalisation (std of claims, floored).
        scales = {
            obj: max(float(np.std(list(per_obj.values()))), 1e-9)
            for obj, per_obj in claims.items()
        }
        for _ in range(self.max_iter):
            losses: Dict[Hashable, float] = {s: 0.0 for s in sources}
            counts: Dict[Hashable, int] = {s: 0 for s in sources}
            for obj, per_obj in claims.items():
                truth = truths[obj]
                scale = scales[obj]
                for source, value in per_obj.items():
                    losses[source] += ((value - truth) / scale) ** 2
                    counts[source] += 1
            total_loss = sum(
                (losses[s] + 1e-6) / (counts[s] or 1) for s in sources
            )
            weights = {
                s: -math.log(((losses[s] + 1e-6) / (counts[s] or 1)) / total_loss)
                for s in sources
            }
            new_truths = {}
            for obj, per_obj in claims.items():
                wsum = sum(max(weights[s], 1e-9) for s in per_obj)
                new_truths[obj] = (
                    sum(max(weights[s], 1e-9) * v for s, v in per_obj.items()) / wsum
                )
            delta = max(abs(new_truths[o] - truths[o]) for o in truths)
            truths = new_truths
            if delta < self.tol:
                break
        return truths

"""Common interfaces for truth-inference algorithms.

Every algorithm consumes a :class:`~repro.data.model.TruthDiscoveryDataset`
and produces an :class:`InferenceResult` holding a per-object *confidence
distribution* over candidate values. Single-truth algorithms pick the argmax;
multi-truth algorithms (LTM, DART, LFC-MT) additionally report a value set per
object via :meth:`InferenceResult.truth_sets`.
"""

from __future__ import annotations

import abc
import warnings
from typing import Dict, Hashable, List, Mapping, Optional, Set

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value


class InferenceResult:
    """Per-object confidence distributions and derived truths.

    Parameters
    ----------
    dataset:
        The dataset the algorithm was fitted on.
    confidences:
        ``object -> probability vector`` aligned with
        ``dataset.context(obj).values``. Vectors need not be normalised for
        score-based algorithms; :meth:`confidence` normalises on read.
    iterations / converged:
        Optional fitting diagnostics.
    """

    #: Number of objects re-converged by an incremental fit; ``None`` when
    #: the result came from a full (cold or saturated-frontier) fit.
    frontier_size: Optional[int] = None

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        confidences: Mapping[ObjectId, np.ndarray],
        iterations: int = 0,
        converged: bool = True,
    ) -> None:
        self.dataset = dataset
        self.confidences: Dict[ObjectId, np.ndarray] = {
            obj: vec
            if type(vec) is np.ndarray and vec.dtype == np.float64
            else np.asarray(vec, dtype=float)
            for obj, vec in confidences.items()
        }
        self.iterations = iterations
        self.converged = converged
        #: Record-mutation counter at fit time; half of the warm-start gate
        #: (:func:`validate_warm_start`).
        self.records_version = getattr(dataset, "_records_version", 0)

    def confidence(self, obj: ObjectId) -> Dict[Value, float]:
        """Normalised ``value -> confidence`` for ``obj``."""
        vec = self.confidences[obj]
        total = float(vec.sum())
        values = self.dataset.context(obj).values
        if total <= 0:
            uniform = 1.0 / len(values)
            return {value: uniform for value in values}
        return {value: float(p) / total for value, p in zip(values, vec)}

    def truth(self, obj: ObjectId) -> Value:
        """The estimated truth for ``obj`` (argmax confidence, Eq. 12)."""
        vec = self.confidences[obj]
        return self.dataset.context(obj).values[int(np.argmax(vec))]

    def truths(self) -> Dict[ObjectId, Value]:
        """Estimated truth for every object."""
        return {obj: self.truth(obj) for obj in self.confidences}

    def truth_sets(self) -> Dict[ObjectId, Set[Value]]:
        """Multi-truth view; single-truth algorithms return singletons."""
        return {obj: {self.truth(obj)} for obj in self.confidences}


class ColumnarInferenceResult(InferenceResult):
    """An :class:`InferenceResult` backed by a flat per-slot array.

    The columnar fast paths produce one ``(n_slots,)`` confidence array; the
    per-object dict view costs a Python loop over all objects, so it is built
    lazily on first access to :attr:`confidences`. :meth:`truths` is
    overridden with a vectorized per-segment argmax.
    """

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        columnar,
        flat: np.ndarray,
        iterations: int = 0,
        converged: bool = True,
    ) -> None:
        self.dataset = dataset
        self._columnar = columnar
        self.flat = np.asarray(flat, dtype=float)
        self.iterations = iterations
        self.converged = converged
        self.records_version = getattr(dataset, "_records_version", 0)
        self._confidences: Optional[Dict[ObjectId, np.ndarray]] = None

    @property
    def confidences(self) -> Dict[ObjectId, np.ndarray]:
        if self._confidences is None:
            self._confidences = self._columnar.to_confidences(self.flat)
        return self._confidences

    def truths(self) -> Dict[ObjectId, Value]:
        col = self._columnar
        slots = col.segment_argmax_slot(self.flat)
        vids = col.slot_vid[slots]
        return {obj: col.values[vid] for obj, vid in zip(col.objects, vids)}


class TruthInferenceAlgorithm(abc.ABC):
    """Base class for truth-inference algorithms.

    Subclasses set :attr:`name` (the label used in the paper's tables) and
    implement :meth:`fit`. Algorithms that model crowd answers consume both
    records and answers; the rest fold answers in as extra single-claim
    sources, which is how the paper combines source-only baselines with task
    assignment (``X+ME`` rows in Table 4).
    """

    name: str = "base"
    supports_workers: bool = False
    #: ``True`` when ``fit`` accepts ``warm_start=`` and (with the model's
    #: ``incremental`` knob on) can re-converge only the dirty frontier of a
    #: previous result — the round-loop callers key on this to thread the
    #: previous round's result through.
    supports_incremental: bool = False

    @abc.abstractmethod
    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        """Run inference and return confidences over candidate values."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def validate_warm_start(
    dataset: TruthDiscoveryDataset, warm_start: Optional[InferenceResult]
) -> Optional[InferenceResult]:
    """Refuse a warm start fitted on a different (cloned or mutated) dataset.

    A previous result seeds trust/reliability/confidence state keyed by this
    dataset's claimants and slot layout. Fitted on a *clone* — even a
    claim-identical one — or on a record state that has since changed, those
    keys silently mismatch (clones renumber independently; record appends
    move candidate slots and popularity weights). The gate requires object
    identity plus an unchanged ``records_version``; anything else degrades
    to a cold start with a :class:`RuntimeWarning`. Answer appends keep the
    record counter, so crowd rounds always pass.
    """
    if warm_start is None:
        return None
    label = repr(dataset.name) if getattr(dataset, "name", "") else "<unnamed>"
    if warm_start.dataset is not dataset:
        warnings.warn(
            warm_start_degradation_message(
                label,
                "it was fitted on a different dataset object (a clone?), so"
                " its claimant/slot keys cannot be trusted",
            ),
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    current = getattr(dataset, "_records_version", 0)
    if warm_start.records_version != current:
        warnings.warn(
            warm_start_degradation_message(
                label,
                f"it was fitted at records_version {warm_start.records_version}"
                f" but a record mutation moved the dataset to {current}, which"
                " may have changed candidate sets",
            ),
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return warm_start


#: Shared prefix of every warm-start degradation warning. The serving layer's
#: EM worker keys on it to count degradations without silencing unrelated
#: RuntimeWarnings, and ``tests/test_incremental_em.py`` asserts the exact
#: composed messages.
WARM_START_DEGRADED_PREFIX = "warm_start degraded to a cold fit for dataset "


def warm_start_degradation_message(dataset_label: str, reason: str) -> str:
    """The exact warning text for a refused warm start (one format, two gates)."""
    return f"{WARM_START_DEGRADED_PREFIX}{dataset_label}: {reason}"


def initial_confidences(dataset: TruthDiscoveryDataset) -> Dict[ObjectId, np.ndarray]:
    """Vote-proportion initial confidence for every object.

    Counts both records and answers; this is the standard EM initialisation
    used across the probabilistic algorithms in this package.
    """
    out: Dict[ObjectId, np.ndarray] = {}
    for obj in dataset.objects:
        ctx = dataset.context(obj)
        counts = np.zeros(ctx.size, dtype=float)
        for value in dataset.records_for(obj).values():
            counts[ctx.index[value]] += 1.0
        for value in dataset.answers_for(obj).values():
            counts[ctx.index[value]] += 1.0
        total = counts.sum()
        out[obj] = counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
    return out


def claim_counts(dataset: TruthDiscoveryDataset, obj: ObjectId) -> np.ndarray:
    """Number of *source* claims per candidate value of ``obj``."""
    ctx = dataset.context(obj)
    counts = np.zeros(ctx.size, dtype=float)
    for value in dataset.records_for(obj).values():
        counts[ctx.index[value]] += 1.0
    return counts

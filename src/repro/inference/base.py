"""Common interfaces for truth-inference algorithms.

Every algorithm consumes a :class:`~repro.data.model.TruthDiscoveryDataset`
and produces an :class:`InferenceResult` holding a per-object *confidence
distribution* over candidate values. Single-truth algorithms pick the argmax;
multi-truth algorithms (LTM, DART, LFC-MT) additionally report a value set per
object via :meth:`InferenceResult.truth_sets`.
"""

from __future__ import annotations

import abc
import warnings
from collections.abc import Mapping as AbstractMapping
from typing import Dict, Hashable, List, Mapping, Optional, Set

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value


class LazyConfidences(AbstractMapping):
    """``object -> confidence vector`` sliced lazily off one flat slot array.

    The columnar fits used to materialise this dict eagerly — an
    O(n_objects) Python loop that dominated incremental refits once the
    frontier shrank below the corpus. This read-only view keeps just the
    encoding and the flat array; each lookup slices the object's slot run
    (a numpy view, no copy), so building a result costs O(1) regardless of
    corpus size. ``dict(view)`` materialises when a mutable copy is needed.
    """

    def __init__(self, columnar, flat: np.ndarray) -> None:
        self._col = columnar
        self._flat = flat

    def __getitem__(self, obj: ObjectId) -> np.ndarray:
        col = self._col
        oid = col.object_index[obj]
        return self._flat[col.value_offsets[oid] : col.value_offsets[oid + 1]]

    def __iter__(self):
        return iter(self._col.objects)

    def __len__(self) -> int:
        return self._col.n_objects

    def __contains__(self, obj: object) -> bool:
        return obj in self._col.object_index

    def __eq__(self, other: object) -> bool:
        # The Mapping mixin compares via ``dict(self) == dict(other)``, which
        # raises on ndarray values; compare per key instead.
        if not isinstance(other, AbstractMapping):
            return NotImplemented
        if len(self) != len(other):
            return False
        missing = object()
        return all(
            np.array_equal(vec, other.get(obj, missing)) for obj, vec in self.items()
        )

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self._col.n_objects} objects)"


class LazyTruths(AbstractMapping):
    """``object -> argmax truth`` computed on demand off the flat array.

    Single reads (the serving hot path) pay one small-slice ``argmax``; bulk
    access (``items()``/``values()``/equality) materialises the full dict
    once with the vectorized per-segment argmax and caches it. Compares
    equal to a plain dict with the same contents (the :class:`Mapping` ABC
    contract), so pinned ``snapshot.truths == cold.truths()`` tests hold.
    """

    def __init__(self, columnar, flat: np.ndarray) -> None:
        self._col = columnar
        self._flat = flat
        self._dense: Optional[Dict[ObjectId, Value]] = None

    def _materialize(self) -> Dict[ObjectId, Value]:
        if self._dense is None:
            col = self._col
            slots = col.segment_argmax_slot(self._flat)
            vids = col.slot_vid[slots]
            self._dense = {obj: col.values[vid] for obj, vid in zip(col.objects, vids)}
        return self._dense

    def __getitem__(self, obj: ObjectId) -> Value:
        if self._dense is not None:
            return self._dense[obj]
        col = self._col
        oid = col.object_index[obj]
        lo = int(col.value_offsets[oid])
        hi = int(col.value_offsets[oid + 1])
        return col.values[col.slot_vid[lo + int(np.argmax(self._flat[lo:hi]))]]

    def __iter__(self):
        return iter(self._col.objects)

    def __len__(self) -> int:
        return self._col.n_objects

    def __contains__(self, obj: object) -> bool:
        return obj in self._col.object_index

    def items(self):
        return self._materialize().items()

    def values(self):
        return self._materialize().values()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractMapping):
            return NotImplemented
        return self._materialize() == dict(other)

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self._col.n_objects} objects)"


class LazyObjectScalars(AbstractMapping):
    """``object -> float`` view over one per-object array (e.g. the TDH
    confidence denominators), replacing an O(n_objects) ``dict(zip(...))``
    at result-construction time with O(1)."""

    def __init__(self, columnar, values: np.ndarray) -> None:
        self._col = columnar
        self._values = values

    def __getitem__(self, obj: ObjectId) -> float:
        return float(self._values[self._col.object_index[obj]])

    def __iter__(self):
        return iter(self._col.objects)

    def __len__(self) -> int:
        return self._col.n_objects

    def __contains__(self, obj: object) -> bool:
        return obj in self._col.object_index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self._col.n_objects} objects)"


class InferenceResult:
    """Per-object confidence distributions and derived truths.

    Parameters
    ----------
    dataset:
        The dataset the algorithm was fitted on.
    confidences:
        ``object -> probability vector`` aligned with
        ``dataset.context(obj).values``. Vectors need not be normalised for
        score-based algorithms; :meth:`confidence` normalises on read.
    iterations / converged:
        Optional fitting diagnostics.
    """

    #: Number of objects re-converged by an incremental fit; ``None`` when
    #: the result came from a full (cold or saturated-frontier) fit.
    frontier_size: Optional[int] = None
    #: ``{"version", "hops", "frontier", "cids"}`` attached by incremental
    #: fits so the next round can reuse the computed frontier when its delta
    #: overlaps this one (:func:`repro.data.columnar.incremental_frontier`).
    frontier_state: Optional[dict] = None

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        confidences: Mapping[ObjectId, np.ndarray],
        iterations: int = 0,
        converged: bool = True,
    ) -> None:
        self.dataset = dataset
        if isinstance(confidences, LazyConfidences):
            # Already float64 slices of one flat array — coercing would
            # materialise the O(n_objects) dict the lazy view exists to avoid.
            self.confidences: Mapping[ObjectId, np.ndarray] = confidences
        else:
            self.confidences = {
                obj: vec
                if type(vec) is np.ndarray and vec.dtype == np.float64
                else np.asarray(vec, dtype=float)
                for obj, vec in confidences.items()
            }
        self.iterations = iterations
        self.converged = converged
        #: Record-mutation counter at fit time; half of the warm-start gate
        #: (:func:`validate_warm_start`).
        self.records_version = getattr(dataset, "_records_version", 0)
        #: Full mutation counter at fit time; lets the warm-start gate ask
        #: the oplog whether the record window since the fit is append-only.
        self.dataset_version = getattr(dataset, "_version", 0)

    def confidence(self, obj: ObjectId) -> Dict[Value, float]:
        """Normalised ``value -> confidence`` for ``obj``."""
        vec = self.confidences[obj]
        total = float(vec.sum())
        values = self.dataset.context(obj).values
        if total <= 0:
            uniform = 1.0 / len(values)
            return {value: uniform for value in values}
        return {value: float(p) / total for value, p in zip(values, vec)}

    def truth(self, obj: ObjectId) -> Value:
        """The estimated truth for ``obj`` (argmax confidence, Eq. 12)."""
        vec = self.confidences[obj]
        return self.dataset.context(obj).values[int(np.argmax(vec))]

    def truths(self) -> Dict[ObjectId, Value]:
        """Estimated truth for every object."""
        return {obj: self.truth(obj) for obj in self.confidences}

    def truth_sets(self) -> Dict[ObjectId, Set[Value]]:
        """Multi-truth view; single-truth algorithms return singletons."""
        return {obj: {self.truth(obj)} for obj in self.confidences}


class ColumnarInferenceResult(InferenceResult):
    """An :class:`InferenceResult` backed by a flat per-slot array.

    The columnar fast paths produce one ``(n_slots,)`` confidence array; both
    dict views are lazy wrappers over it (:class:`LazyConfidences` /
    :class:`LazyTruths`), so constructing and publishing a result is O(1) in
    the number of objects — per-publish cost scales with the frontier, not
    the corpus.
    """

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        columnar,
        flat: np.ndarray,
        iterations: int = 0,
        converged: bool = True,
    ) -> None:
        self.dataset = dataset
        self._columnar = columnar
        self.flat = np.asarray(flat, dtype=float)
        self.iterations = iterations
        self.converged = converged
        self.records_version = getattr(dataset, "_records_version", 0)
        self.dataset_version = getattr(dataset, "_version", 0)
        self._confidences: Optional[LazyConfidences] = None

    @property
    def confidences(self) -> Mapping[ObjectId, np.ndarray]:
        if self._confidences is None:
            self._confidences = LazyConfidences(self._columnar, self.flat)
        return self._confidences

    def truths(self) -> Mapping[ObjectId, Value]:
        return LazyTruths(self._columnar, self.flat)


class TruthInferenceAlgorithm(abc.ABC):
    """Base class for truth-inference algorithms.

    Subclasses set :attr:`name` (the label used in the paper's tables) and
    implement :meth:`fit`. Algorithms that model crowd answers consume both
    records and answers; the rest fold answers in as extra single-claim
    sources, which is how the paper combines source-only baselines with task
    assignment (``X+ME`` rows in Table 4).
    """

    name: str = "base"
    supports_workers: bool = False
    #: ``True`` when ``fit`` accepts ``warm_start=`` and (with the model's
    #: ``incremental`` knob on) can re-converge only the dirty frontier of a
    #: previous result — the round-loop callers key on this to thread the
    #: previous round's result through.
    supports_incremental: bool = False

    @abc.abstractmethod
    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        """Run inference and return confidences over candidate values."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class WarmStartDegradation(RuntimeWarning):
    """A warm start was refused and the fit degraded to a cold start.

    Carries a machine-readable :attr:`reason` (``"clone"`` or
    ``"unservable-record-window"``) so the serving worker can tally
    degradations per cause structurally; the message still begins with
    :data:`WARM_START_DEGRADED_PREFIX` for anything matching on text.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


def validate_warm_start(
    dataset: TruthDiscoveryDataset, warm_start: Optional[InferenceResult]
) -> Optional[InferenceResult]:
    """Refuse a warm start whose claimant/value keys cannot be trusted.

    A previous result seeds trust/reliability/confidence state keyed by this
    dataset's claimants and candidate values. Fitted on a *clone* — even a
    claim-identical one — those keys silently mismatch (clones renumber
    independently), so the gate requires dataset identity. Record *appends*
    are accepted: candidate sets only ever grow under an append, every
    full-fit consumer seeds by claimant/value key (robust to growth), and
    the incremental paths re-validate the op window themselves via
    :func:`repro.data.columnar.incremental_frontier`. What still degrades —
    with a :class:`WarmStartDegradation` carrying a structured reason — is a
    record window the oplog cannot vouch for: an in-place overwrite, or a
    window trimmed past the fit (``MAX_OPLOG``), either of which may have
    changed candidate sets in place.
    """
    if warm_start is None:
        return None
    label = repr(dataset.name) if getattr(dataset, "name", "") else "<unnamed>"
    if warm_start.dataset is not dataset:
        warnings.warn(
            WarmStartDegradation(
                warm_start_degradation_message(
                    label,
                    "it was fitted on a different dataset object (a clone?), so"
                    " its claimant/slot keys cannot be trusted",
                ),
                reason="clone",
            ),
            stacklevel=3,
        )
        return None
    current = getattr(dataset, "_records_version", 0)
    if warm_start.records_version != current:
        fitted_version = getattr(warm_start, "dataset_version", None)
        ops_since = getattr(dataset, "_ops_since", None)
        window = (
            ops_since(fitted_version)
            if ops_since is not None and fitted_version is not None
            else None
        )
        if window is None:
            warnings.warn(
                WarmStartDegradation(
                    warm_start_degradation_message(
                        label,
                        f"it was fitted at records_version"
                        f" {warm_start.records_version} but the record window"
                        f" to the current records_version {current} is not an"
                        " append-only op log (an in-place overwrite, or a"
                        " window trimmed past the fit), so candidate sets may"
                        " have changed in place",
                    ),
                    reason="unservable-record-window",
                ),
                stacklevel=3,
            )
            return None
    return warm_start


#: Shared prefix of every warm-start degradation warning. The serving layer's
#: EM worker counts degradations structurally (``isinstance(...,
#: WarmStartDegradation)``, per :attr:`WarmStartDegradation.reason`); the
#: prefix remains for log grepping, and ``tests/test_incremental_em.py``
#: asserts the exact composed messages.
WARM_START_DEGRADED_PREFIX = "warm_start degraded to a cold fit for dataset "


def warm_start_degradation_message(dataset_label: str, reason: str) -> str:
    """The exact warning text for a refused warm start (one format, two gates)."""
    return f"{WARM_START_DEGRADED_PREFIX}{dataset_label}: {reason}"


def initial_confidences(dataset: TruthDiscoveryDataset) -> Dict[ObjectId, np.ndarray]:
    """Vote-proportion initial confidence for every object.

    Counts both records and answers; this is the standard EM initialisation
    used across the probabilistic algorithms in this package.
    """
    out: Dict[ObjectId, np.ndarray] = {}
    for obj in dataset.objects:
        ctx = dataset.context(obj)
        counts = np.zeros(ctx.size, dtype=float)
        for value in dataset.records_for(obj).values():
            counts[ctx.index[value]] += 1.0
        for value in dataset.answers_for(obj).values():
            counts[ctx.index[value]] += 1.0
        total = counts.sum()
        out[obj] = counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
    return out


def claim_counts(dataset: TruthDiscoveryDataset, obj: ObjectId) -> np.ndarray:
    """Number of *source* claims per candidate value of ``obj``."""
    ctx = dataset.context(obj)
    counts = np.zeros(ctx.size, dtype=float)
    for value in dataset.records_for(obj).values():
        counts[ctx.index[value]] += 1.0
    return counts

"""Web-link-analysis truth discovery: Sums, AverageLog, Investment,
PooledInvestment (Pasternack & Roth, COLING 2010) and TruthFinder (Yin, Han
& Yu, TKDE 2008).

These are the classic fixed-point algorithms the paper's related work builds
on — ASUMS [2] is SUMS adapted to hierarchies, and the survey the paper cites
([40]) evaluates this whole family. They share one iteration scheme:

    trust(s)  <- combine(beliefs of s's claims)
    belief(v) <- combine(trusts of v's claimants)

with per-algorithm combine rules and normalisation. All operate on records
and answers alike (answers count as single-claim sources).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import InferenceResult, TruthInferenceAlgorithm


def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId) -> Dict[Hashable, object]:
    claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
    for worker, value in dataset.answers_for(obj).items():
        claims[("worker", worker)] = value
    return claims


class _LinkAnalysisBase(TruthInferenceAlgorithm):
    """Shared fixed-point loop for the link-analysis family."""

    supports_workers = True

    def __init__(self, max_iter: int = 20, tol: float = 1e-6) -> None:
        self.max_iter = max_iter
        self.tol = tol

    # hooks -------------------------------------------------------------
    def _trust_update(
        self, claim_beliefs: List[float]
    ) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _belief_update(self, claimant_trusts: List[float]) -> float:
        return float(sum(claimant_trusts))

    # main loop ----------------------------------------------------------
    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claims_cache = {obj: _claims_of(dataset, obj) for obj in dataset.objects}
        claimants = sorted(
            {c for claims in claims_cache.values() for c in claims}, key=repr
        )
        trust: Dict[Hashable, float] = {c: 0.9 for c in claimants}
        beliefs: Dict[ObjectId, np.ndarray] = {
            obj: np.full(dataset.context(obj).size, 0.5) for obj in dataset.objects
        }
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            # Belief step.
            new_beliefs: Dict[ObjectId, np.ndarray] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                supporters: List[List[float]] = [[] for _ in range(ctx.size)]
                for claimant, value in claims.items():
                    supporters[ctx.index[value]].append(trust[claimant])
                new_beliefs[obj] = np.array(
                    [self._belief_update(ts) if ts else 0.0 for ts in supporters]
                )
            peak = max(
                (float(vec.max()) for vec in new_beliefs.values()), default=1.0
            )
            peak = max(peak, 1e-12)
            for obj in new_beliefs:
                new_beliefs[obj] = new_beliefs[obj] / peak

            # Trust step.
            new_trust: Dict[Hashable, float] = {}
            for claimant in claimants:
                claim_beliefs: List[float] = []
                for obj, claims in claims_cache.items():
                    if claimant in claims:
                        ctx = dataset.context(obj)
                        claim_beliefs.append(
                            float(new_beliefs[obj][ctx.index[claims[claimant]]])
                        )
                new_trust[claimant] = self._trust_update(claim_beliefs)
            peak_trust = max(new_trust.values(), default=1.0)
            peak_trust = max(peak_trust, 1e-12)
            new_trust = {c: t / peak_trust for c, t in new_trust.items()}

            delta = max(
                float(np.max(np.abs(new_beliefs[obj] - beliefs[obj])))
                for obj in beliefs
            ) if beliefs else 0.0
            beliefs = new_beliefs
            trust = new_trust
            if delta < self.tol:
                converged = True
                break

        confidences = {}
        for obj, vec in beliefs.items():
            total = float(vec.sum())
            confidences[obj] = (
                vec / total if total > 0 else np.full(len(vec), 1.0 / len(vec))
            )
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.trust = trust  # type: ignore[attr-defined]
        return result


class Sums(_LinkAnalysisBase):
    """SUMS / Hubs-and-Authorities: trust = sum of claim beliefs."""

    name = "SUMS"

    def _trust_update(self, claim_beliefs: List[float]) -> float:
        return float(sum(claim_beliefs))


class AverageLog(_LinkAnalysisBase):
    """AverageLog: average belief scaled by log of the claim count."""

    name = "AVGLOG"

    def _trust_update(self, claim_beliefs: List[float]) -> float:
        n = len(claim_beliefs)
        if n == 0:
            return 0.0
        return math.log(n + 1.0) * float(np.mean(claim_beliefs))


class Investment(_LinkAnalysisBase):
    """Investment: sources invest trust evenly; claims pay back non-linearly."""

    name = "INVEST"

    def __init__(self, growth: float = 1.2, **kwargs) -> None:
        super().__init__(**kwargs)
        self.growth = growth

    def _trust_update(self, claim_beliefs: List[float]) -> float:
        n = len(claim_beliefs)
        if n == 0:
            return 0.0
        return float(sum(b ** self.growth for b in claim_beliefs)) / n

    def _belief_update(self, claimant_trusts: List[float]) -> float:
        return float(sum(claimant_trusts)) ** self.growth


class PooledInvestment(Investment):
    """PooledInvestment: Investment with per-object belief pooling."""

    name = "POOLED"

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        result = super().fit(dataset)
        # Pool: renormalise beliefs within each object (linear pooling).
        for obj, vec in result.confidences.items():
            total = float(vec.sum())
            if total > 0:
                result.confidences[obj] = vec / total
        return result


class TruthFinder(TruthInferenceAlgorithm):
    """TruthFinder (Yin et al., TKDE 2008): probabilistic link analysis.

    Source trust is its claims' average confidence; a claim's confidence is
    ``1 - prod_s (1 - trust(s))`` over its claimants, passed through a
    dampened sigmoid to keep the fixed point stable. Claims of *similar*
    values reinforce each other; here similarity is hierarchy adjacency
    (a claim supports its parent/children candidates with weight ``rho``).
    """

    name = "TRUTHFINDER"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 20,
        tol: float = 1e-6,
        dampening: float = 0.3,
        rho: float = 0.5,
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.dampening = dampening
        self.rho = rho

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claims_cache = {obj: _claims_of(dataset, obj) for obj in dataset.objects}
        claimants = sorted(
            {c for claims in claims_cache.values() for c in claims}, key=repr
        )
        trust: Dict[Hashable, float] = {c: 0.9 for c in claimants}
        confidences: Dict[ObjectId, np.ndarray] = {
            obj: np.full(dataset.context(obj).size, 0.5) for obj in dataset.objects
        }
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            new_conf: Dict[ObjectId, np.ndarray] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                raw = np.zeros(ctx.size)
                for v in range(ctx.size):
                    others = [
                        1.0 - min(trust[c], 1.0 - 1e-9)
                        for c, value in claims.items()
                        if ctx.index[value] == v
                    ]
                    if others:
                        raw[v] = 1.0 - float(np.prod(others))
                # Hierarchy-similarity adjustment: ancestors of a believed
                # value gain implied support.
                adjusted = raw.copy()
                for v in range(ctx.size):
                    for ancestor_pos in ctx.ancestor_sets[v]:
                        adjusted[ancestor_pos] += self.rho * raw[v]
                # Dampened squash into (0, 1).
                squashed = 1.0 / (1.0 + np.exp(-self.dampening * adjusted * 6 + 3))
                new_conf[obj] = squashed
            new_trust = {}
            for claimant in claimants:
                scores: List[float] = []
                for obj, claims in claims_cache.items():
                    if claimant in claims:
                        ctx = dataset.context(obj)
                        scores.append(
                            float(new_conf[obj][ctx.index[claims[claimant]]])
                        )
                new_trust[claimant] = float(np.mean(scores)) if scores else 0.5
            delta = max(
                float(np.max(np.abs(new_conf[obj] - confidences[obj])))
                for obj in confidences
            ) if confidences else 0.0
            confidences = new_conf
            trust = new_trust
            if delta < self.tol:
                converged = True
                break

        normalised = {}
        for obj, vec in confidences.items():
            total = float(vec.sum())
            normalised[obj] = (
                vec / total if total > 0 else np.full(len(vec), 1.0 / len(vec))
            )
        result = InferenceResult(dataset, normalised, iterations, converged)
        result.trust = trust  # type: ignore[attr-defined]
        return result

"""ACCU and POPACCU — Bayesian source-accuracy models with copy detection.

ACCU (Dong, Berti-Equille & Srivastava, PVLDB 2009) models each source with a
single accuracy ``A(s)`` and combines claims through Bayesian vote counts
``A'(s) = ln(n A(s) / (1 - A(s)))``, discounting sources suspected of copying
each other. POPACCU (Dong, Saha & Srivastava, PVLDB 2012) replaces ACCU's
uniform false-value distribution with the observed popularity of false values.

These are the paper's knowledge-fusion baselines; Table 3 and Figure 12 show
they struggle (and slow down) when sources are many and sparse, because the
pairwise dependence analysis needs shared objects to be informative — our
implementation reproduces both effects.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Hashable, List, Mapping, Tuple

import numpy as np

from ..data.model import ObjectId, SourceId, TruthDiscoveryDataset
from .base import InferenceResult, TruthInferenceAlgorithm, claim_counts


class Accu(TruthInferenceAlgorithm):
    """ACCU with pairwise source-dependence discounting.

    Parameters
    ----------
    max_iter / tol:
        Fixed-point stopping rule on source accuracies.
    n_false_values:
        The model's ``n`` — the assumed number of uniformly likely false
        values per object. ``None`` uses ``|Vo| - 1`` per object.
    alpha_dependence:
        Prior probability that a source pair is dependent.
    copy_rate:
        Probability ``c`` that a dependent source copies a particular value.
    detect_dependence:
        Disable to get the independence-assuming variant (used by tests and
        the ablation bench).
    popularity:
        Internal switch used by :class:`PopAccu`.
    """

    name = "ACCU"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 30,
        tol: float = 1e-4,
        n_false_values: int | None = None,
        alpha_dependence: float = 0.2,
        copy_rate: float = 0.8,
        detect_dependence: bool = True,
        popularity: bool = False,
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.n_false_values = n_false_values
        self.alpha_dependence = alpha_dependence
        self.copy_rate = copy_rate
        self.detect_dependence = detect_dependence
        self.popularity = popularity

    # ------------------------------------------------------------------
    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claimants = self._claimants(dataset)
        accuracy: Dict[Hashable, float] = {c: 0.8 for c in claimants}
        confidences: Dict[ObjectId, np.ndarray] = {}
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            weights = (
                self._independence_weights(dataset, accuracy)
                if self.detect_dependence
                else {}
            )
            confidences = self._vote(dataset, accuracy, weights)
            new_accuracy = self._update_accuracy(dataset, confidences)
            delta = max(
                abs(new_accuracy[c] - accuracy[c]) for c in new_accuracy
            ) if new_accuracy else 0.0
            accuracy = new_accuracy
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.source_accuracy = accuracy  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _claimants(dataset: TruthDiscoveryDataset) -> List[Hashable]:
        """Sources plus workers — answers are treated as single-claim sources."""
        return list(dataset.sources) + [("worker", w) for w in dataset.workers]

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId) -> Dict[Hashable, Hashable]:
        claims: Dict[Hashable, Hashable] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

    def _vote(
        self,
        dataset: TruthDiscoveryDataset,
        accuracy: Mapping[Hashable, float],
        weights: Mapping[Tuple[Hashable, ObjectId], float],
    ) -> Dict[ObjectId, np.ndarray]:
        confidences: Dict[ObjectId, np.ndarray] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            n_false = (
                self.n_false_values
                if self.n_false_values is not None
                else max(ctx.size - 1, 1)
            )
            if self.popularity:
                counts = claim_counts(dataset, obj)
                total = counts.sum()
                pop = counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
            scores = np.zeros(ctx.size)
            for claimant, value in self._claims_of(dataset, obj).items():
                acc = min(max(accuracy.get(claimant, 0.8), 0.01), 0.99)
                if self.popularity:
                    # POPACCU: false values drawn by popularity, not uniformly.
                    false_mass = max(1.0 - pop[ctx.index[value]], 1e-6)
                    vote = math.log(max(acc, 1e-6) / max((1.0 - acc) * false_mass, 1e-9))
                else:
                    vote = math.log(n_false * acc / (1.0 - acc))
                vote *= weights.get((claimant, obj), 1.0)
                scores[ctx.index[value]] += vote
            scores -= scores.max()
            exp_scores = np.exp(scores)
            confidences[obj] = exp_scores / exp_scores.sum()
        return confidences

    def _update_accuracy(
        self, dataset: TruthDiscoveryDataset, confidences: Mapping[ObjectId, np.ndarray]
    ) -> Dict[Hashable, float]:
        sums: Dict[Hashable, float] = {}
        counts: Dict[Hashable, int] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            probs = confidences[obj]
            for claimant, value in self._claims_of(dataset, obj).items():
                sums[claimant] = sums.get(claimant, 0.0) + float(probs[ctx.index[value]])
                counts[claimant] = counts.get(claimant, 0) + 1
        return {
            claimant: min(max(sums[claimant] / counts[claimant], 0.01), 0.99)
            for claimant in sums
        }

    # ------------------------------------------------------------------
    def _independence_weights(
        self, dataset: TruthDiscoveryDataset, accuracy: Mapping[Hashable, float]
    ) -> Dict[Tuple[Hashable, ObjectId], float]:
        """Per-claim independence weight ``I(s, o)`` from copy detection.

        For every source pair sharing objects we compute the posterior
        probability of dependence from the fraction of *identical* claims —
        many shared identical values beyond what their accuracies explain is
        evidence of copying (the kernel of ACCU's Bayesian dependence
        analysis). A claim's weight is the probability that it was produced
        independently, aggregated over suspected providers.
        """
        shared: Dict[Tuple[Hashable, Hashable], Tuple[int, int]] = {}
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        providers: Dict[Hashable, List[ObjectId]] = {}
        for obj, claims in claims_cache.items():
            for claimant in claims:
                providers.setdefault(claimant, []).append(obj)

        for obj, claims in claims_cache.items():
            claimants = list(claims)
            for a, b in combinations(claimants, 2):
                key = (a, b) if repr(a) <= repr(b) else (b, a)
                same, total = shared.get(key, (0, 0))
                shared[key] = (same + (claims[a] == claims[b]), total + 1)

        dependence: Dict[Tuple[Hashable, Hashable], float] = {}
        for (a, b), (same, total) in shared.items():
            if total < 2:
                continue
            acc_a = accuracy.get(a, 0.8)
            acc_b = accuracy.get(b, 0.8)
            p_same_indep = acc_a * acc_b + (1 - acc_a) * (1 - acc_b) * 0.2
            p_same_dep = self.copy_rate + (1 - self.copy_rate) * p_same_indep
            ratio = same / total
            # Bayes factor of observed agreement under dependence vs independence.
            like_dep = p_same_dep ** same * (1 - p_same_dep) ** (total - same)
            like_ind = p_same_indep ** same * (1 - p_same_indep) ** (total - same)
            prior = self.alpha_dependence
            posterior = prior * like_dep / max(
                prior * like_dep + (1 - prior) * like_ind, 1e-300
            )
            if posterior > 0.5 and ratio > 0.5:
                dependence[(a, b)] = posterior

        weights: Dict[Tuple[Hashable, ObjectId], float] = {}
        for (a, b), post in dependence.items():
            # The less accurate party is treated as the copier; its agreeing
            # claims are discounted.
            copier = a if accuracy.get(a, 0.8) <= accuracy.get(b, 0.8) else b
            other = b if copier is a else a
            for obj in providers.get(copier, ()):
                claims = claims_cache[obj]
                if other in claims and claims.get(copier) == claims.get(other):
                    key = (copier, obj)
                    weights[key] = min(
                        weights.get(key, 1.0), 1.0 - post * self.copy_rate
                    )
        return weights


class PopAccu(Accu):
    """POPACCU: ACCU with popularity-weighted false-value distribution."""

    name = "POPACCU"

    def __init__(self, max_iter: int = 30, tol: float = 1e-4, **kwargs) -> None:
        super().__init__(max_iter=max_iter, tol=tol, popularity=True, **kwargs)

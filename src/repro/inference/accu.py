"""ACCU and POPACCU — Bayesian source-accuracy models with copy detection.

ACCU (Dong, Berti-Equille & Srivastava, PVLDB 2009) models each source with a
single accuracy ``A(s)`` and combines claims through Bayesian vote counts
``A'(s) = ln(n A(s) / (1 - A(s)))``, discounting sources suspected of copying
each other. POPACCU (Dong, Saha & Srivastava, PVLDB 2012) replaces ACCU's
uniform false-value distribution with the observed popularity of false values.

These are the paper's knowledge-fusion baselines; Table 3 and Figure 12 show
they struggle (and slow down) when sources are many and sparse, because the
pairwise dependence analysis needs shared objects to be informative — our
implementation reproduces both effects.

Fixed-point updates per round:

* **truth step**: per object, a log-scale Bayesian vote
  ``C(v) = sum_{claims (o,s,v)} I(s,o) A'(s)`` with
  ``A'(s) = ln(n A(s) / (1 - A(s)))`` (POPACCU replaces the uniform ``1/n``
  false-value mass with the observed popularity of the claimed value),
  softmax-normalised into confidences;
* **accuracy step**: ``A(s) = mean of C(v_s)`` over the source's claims,
  clamped to ``[0.01, 0.99]``;
* **dependence step** (``detect_dependence``): for every claimant pair the
  posterior odds of copying given their agreement rate; agreeing claims of
  the suspected copier get the independence weight ``I(s,o) < 1``.

The columnar engine (``use_columnar``) materialises the within-object claim
x claim co-occurrence expansion once (the support of the dependence
analysis), aggregates agreement counts per claimant pair with ``np.unique``
+ ``np.bincount``, and scatters the discounts back onto claims with
``np.minimum.at``; the vote and accuracy steps are plain per-slot bincounts.
The dict loops stay as the reference; parity within 1e-8 is enforced by
``tests/test_columnar_parity.py``.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Hashable, List, Mapping, Tuple, Union

import numpy as np

from ..data.columnar import ColumnarClaims, resolve_engine
from ..data.model import ObjectId, SourceId, TruthDiscoveryDataset
from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    claim_counts,
)


class Accu(TruthInferenceAlgorithm):
    """ACCU with pairwise source-dependence discounting.

    Parameters
    ----------
    max_iter / tol:
        Fixed-point stopping rule on source accuracies.
    n_false_values:
        The model's ``n`` — the assumed number of uniformly likely false
        values per object. ``None`` uses ``|Vo| - 1`` per object.
    alpha_dependence:
        Prior probability that a source pair is dependent.
    copy_rate:
        Probability ``c`` that a dependent source copies a particular value.
    detect_dependence:
        Disable to get the independence-assuming variant (used by tests and
        the ablation bench).
    popularity:
        Internal switch used by :class:`PopAccu`.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    """

    name = "ACCU"
    supports_workers = True

    def __init__(
        self,
        max_iter: int = 30,
        tol: float = 1e-4,
        n_false_values: int | None = None,
        alpha_dependence: float = 0.2,
        copy_rate: float = 0.8,
        detect_dependence: bool = True,
        popularity: bool = False,
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.n_false_values = n_false_values
        self.alpha_dependence = alpha_dependence
        self.copy_rate = copy_rate
        self.detect_dependence = detect_dependence
        self.popularity = popularity
        self.use_columnar = use_columnar

    # ------------------------------------------------------------------
    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    class _CoClaims:
        """Within-object claim x claim co-occurrence, aggregated per pair.

        Row ``r`` joins two claims on the same object. Rows are grouped into
        *claimant pairs* ordered by ``repr`` (the reference's canonical pair
        key); ``pair_index[r]`` maps each row to its pair, and per pair the
        agreement statistics ``same`` / ``total`` feed the Bayesian
        dependence posterior. All arrays are iteration-invariant.
        """

        def __init__(self, col: ColumnarClaims) -> None:
            sizes = np.diff(col.claim_offsets)
            tri_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            ci_parts: List[np.ndarray] = []
            cj_parts: List[np.ndarray] = []
            for oid in range(col.n_objects):
                m = int(sizes[oid])
                if m < 2:
                    continue
                tri = tri_cache.get(m)
                if tri is None:
                    tri = tri_cache[m] = np.triu_indices(m, 1)
                offset = int(col.claim_offsets[oid])
                ci_parts.append(tri[0] + offset)
                cj_parts.append(tri[1] + offset)
            empty = np.zeros(0, dtype=np.int64)
            ci = np.concatenate(ci_parts) if ci_parts else empty
            cj = np.concatenate(cj_parts) if cj_parts else empty

            # Canonical pair order: the reference keys pairs by repr().
            rank_order = sorted(
                range(col.n_claimants), key=lambda c: repr(col.claimants[c])
            )
            rank = np.zeros(col.n_claimants, dtype=np.int64)
            rank[rank_order] = np.arange(col.n_claimants)

            ca, cb = col.claim_claimant[ci], col.claim_claimant[cj]
            a_first = rank[ca] <= rank[cb]
            self.first_claim = np.where(a_first, ci, cj)
            self.second_claim = np.where(a_first, cj, ci)
            first = np.where(a_first, ca, cb)
            second = np.where(a_first, cb, ca)
            self.same = col.claim_vid[ci] == col.claim_vid[cj]

            keys = first * col.n_claimants + second
            pairs, self.pair_index = np.unique(keys, return_inverse=True)
            self.pair_first = (pairs // col.n_claimants).astype(np.int64)
            self.pair_second = (pairs % col.n_claimants).astype(np.int64)
            self.pair_same = np.bincount(
                self.pair_index, weights=self.same, minlength=len(pairs)
            )
            self.pair_total = np.bincount(self.pair_index, minlength=len(pairs))

    def _claim_weights(
        self, co: "Accu._CoClaims", accuracy: np.ndarray, n_claims: int
    ) -> np.ndarray:
        """Per-claim independence weights ``I(s, o)`` from copy detection."""
        weights = np.ones(n_claims, dtype=np.float64)
        if len(co.pair_total) == 0:
            return weights
        acc_a = accuracy[co.pair_first]
        acc_b = accuracy[co.pair_second]
        p_same_indep = acc_a * acc_b + (1 - acc_a) * (1 - acc_b) * 0.2
        p_same_dep = self.copy_rate + (1 - self.copy_rate) * p_same_indep
        same, total = co.pair_same, co.pair_total
        with np.errstate(over="ignore", under="ignore"):
            like_dep = p_same_dep**same * (1 - p_same_dep) ** (total - same)
            like_ind = p_same_indep**same * (1 - p_same_indep) ** (total - same)
        prior = self.alpha_dependence
        posterior = (
            prior
            * like_dep
            / np.maximum(prior * like_dep + (1 - prior) * like_ind, 1e-300)
        )
        dependent = (
            (total >= 2) & (posterior > 0.5) & (same / np.maximum(total, 1) > 0.5)
        )
        if not np.any(dependent):
            return weights
        # The less accurate party copies; repr-order breaks accuracy ties.
        copier_is_first = acc_a <= acc_b
        discount = 1.0 - posterior * self.copy_rate
        rows = dependent[co.pair_index] & co.same
        copier_claim = np.where(
            copier_is_first[co.pair_index], co.first_claim, co.second_claim
        )
        np.minimum.at(
            weights, copier_claim[rows], discount[co.pair_index[rows]]
        )
        return weights

    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        accuracy = np.full(col.n_claimants, 0.8, dtype=np.float64)
        co = self._CoClaims(col) if self.detect_dependence else None
        counts = col.claimant_counts()

        if self.popularity:
            pop = col.segment_normalize(col.record_counts())
            false_mass = np.maximum(1.0 - pop[col.claim_slot], 1e-6)
        else:
            n_false = (
                float(self.n_false_values)
                if self.n_false_values is not None
                else np.maximum(col.sizes[col.claim_obj] - 1, 1).astype(np.float64)
            )

        flat_conf = np.zeros(col.n_slots, dtype=np.float64)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            weights = (
                self._claim_weights(co, accuracy, col.n_claims)
                if co is not None
                else 1.0
            )
            acc = np.clip(accuracy, 0.01, 0.99)[col.claim_claimant]
            if self.popularity:
                vote = np.log(
                    np.maximum(acc, 1e-6)
                    / np.maximum((1.0 - acc) * false_mass, 1e-9)
                )
            else:
                vote = np.log(n_false * acc / (1.0 - acc))
            scores = np.bincount(
                col.claim_slot, weights=vote * weights, minlength=col.n_slots
            )
            flat_conf = col.segment_softmax(scores)

            new_accuracy = np.clip(
                np.bincount(
                    col.claim_claimant,
                    weights=flat_conf[col.claim_slot],
                    minlength=col.n_claimants,
                )
                / np.maximum(counts, 1),
                0.01,
                0.99,
            )
            delta = (
                float(np.max(np.abs(new_accuracy - accuracy)))
                if col.n_claimants
                else 0.0
            )
            accuracy = new_accuracy
            if delta < self.tol:
                converged = True
                break

        result = ColumnarInferenceResult(dataset, col, flat_conf, iterations, converged)
        result.source_accuracy = col.claimant_mapping(accuracy)  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        claimants = self._claimants(dataset)
        accuracy: Dict[Hashable, float] = {c: 0.8 for c in claimants}
        confidences: Dict[ObjectId, np.ndarray] = {}
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            weights = (
                self._independence_weights(dataset, accuracy)
                if self.detect_dependence
                else {}
            )
            confidences = self._vote(dataset, accuracy, weights)
            new_accuracy = self._update_accuracy(dataset, confidences)
            delta = max(
                abs(new_accuracy[c] - accuracy[c]) for c in new_accuracy
            ) if new_accuracy else 0.0
            accuracy = new_accuracy
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, confidences, iterations, converged)
        result.source_accuracy = accuracy  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _claimants(dataset: TruthDiscoveryDataset) -> List[Hashable]:
        """Sources plus workers — answers are treated as single-claim sources."""
        return list(dataset.sources) + [("worker", w) for w in dataset.workers]

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId) -> Dict[Hashable, Hashable]:
        claims: Dict[Hashable, Hashable] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

    def _vote(
        self,
        dataset: TruthDiscoveryDataset,
        accuracy: Mapping[Hashable, float],
        weights: Mapping[Tuple[Hashable, ObjectId], float],
    ) -> Dict[ObjectId, np.ndarray]:
        confidences: Dict[ObjectId, np.ndarray] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            n_false = (
                self.n_false_values
                if self.n_false_values is not None
                else max(ctx.size - 1, 1)
            )
            if self.popularity:
                counts = claim_counts(dataset, obj)
                total = counts.sum()
                pop = counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
            scores = np.zeros(ctx.size)
            for claimant, value in self._claims_of(dataset, obj).items():
                acc = min(max(accuracy.get(claimant, 0.8), 0.01), 0.99)
                if self.popularity:
                    # POPACCU: false values drawn by popularity, not uniformly.
                    false_mass = max(1.0 - pop[ctx.index[value]], 1e-6)
                    vote = math.log(max(acc, 1e-6) / max((1.0 - acc) * false_mass, 1e-9))
                else:
                    vote = math.log(n_false * acc / (1.0 - acc))
                vote *= weights.get((claimant, obj), 1.0)
                scores[ctx.index[value]] += vote
            scores -= scores.max()
            exp_scores = np.exp(scores)
            confidences[obj] = exp_scores / exp_scores.sum()
        return confidences

    def _update_accuracy(
        self, dataset: TruthDiscoveryDataset, confidences: Mapping[ObjectId, np.ndarray]
    ) -> Dict[Hashable, float]:
        sums: Dict[Hashable, float] = {}
        counts: Dict[Hashable, int] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            probs = confidences[obj]
            for claimant, value in self._claims_of(dataset, obj).items():
                sums[claimant] = sums.get(claimant, 0.0) + float(probs[ctx.index[value]])
                counts[claimant] = counts.get(claimant, 0) + 1
        return {
            claimant: min(max(sums[claimant] / counts[claimant], 0.01), 0.99)
            for claimant in sums
        }

    # ------------------------------------------------------------------
    def _independence_weights(
        self, dataset: TruthDiscoveryDataset, accuracy: Mapping[Hashable, float]
    ) -> Dict[Tuple[Hashable, ObjectId], float]:
        """Per-claim independence weight ``I(s, o)`` from copy detection.

        For every source pair sharing objects we compute the posterior
        probability of dependence from the fraction of *identical* claims —
        many shared identical values beyond what their accuracies explain is
        evidence of copying (the kernel of ACCU's Bayesian dependence
        analysis). A claim's weight is the probability that it was produced
        independently, aggregated over suspected providers.
        """
        shared: Dict[Tuple[Hashable, Hashable], Tuple[int, int]] = {}
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        providers: Dict[Hashable, List[ObjectId]] = {}
        for obj, claims in claims_cache.items():
            for claimant in claims:
                providers.setdefault(claimant, []).append(obj)

        for obj, claims in claims_cache.items():
            claimants = list(claims)
            for a, b in combinations(claimants, 2):
                key = (a, b) if repr(a) <= repr(b) else (b, a)
                same, total = shared.get(key, (0, 0))
                shared[key] = (same + (claims[a] == claims[b]), total + 1)

        dependence: Dict[Tuple[Hashable, Hashable], float] = {}
        for (a, b), (same, total) in shared.items():
            if total < 2:
                continue
            acc_a = accuracy.get(a, 0.8)
            acc_b = accuracy.get(b, 0.8)
            p_same_indep = acc_a * acc_b + (1 - acc_a) * (1 - acc_b) * 0.2
            p_same_dep = self.copy_rate + (1 - self.copy_rate) * p_same_indep
            ratio = same / total
            # Bayes factor of observed agreement under dependence vs independence.
            like_dep = p_same_dep ** same * (1 - p_same_dep) ** (total - same)
            like_ind = p_same_indep ** same * (1 - p_same_indep) ** (total - same)
            prior = self.alpha_dependence
            posterior = prior * like_dep / max(
                prior * like_dep + (1 - prior) * like_ind, 1e-300
            )
            if posterior > 0.5 and ratio > 0.5:
                dependence[(a, b)] = posterior

        weights: Dict[Tuple[Hashable, ObjectId], float] = {}
        for (a, b), post in dependence.items():
            # The less accurate party is treated as the copier; its agreeing
            # claims are discounted.
            copier = a if accuracy.get(a, 0.8) <= accuracy.get(b, 0.8) else b
            other = b if copier is a else a
            for obj in providers.get(copier, ()):
                claims = claims_cache[obj]
                if other in claims and claims.get(copier) == claims.get(other):
                    key = (copier, obj)
                    weights[key] = min(
                        weights.get(key, 1.0), 1.0 - post * self.copy_rate
                    )
        return weights


class PopAccu(Accu):
    """POPACCU: ACCU with popularity-weighted false-value distribution."""

    name = "POPACCU"

    def __init__(self, max_iter: int = 30, tol: float = 1e-4, **kwargs) -> None:
        super().__init__(max_iter=max_iter, tol=tol, popularity=True, **kwargs)

"""Numeric truth-discovery baselines: CATD, MEAN (paper Table 6).

These operate on raw numeric claim tables ``object -> {source: value}``
because — unlike the selection-based algorithms — their estimates need not be
claimed values. CATD (Li et al., PVLDB 2014) is the confidence-aware
weighted mean for long-tail sources; MEAN is the naive average. Both are
sensitive to outliers, the property the paper's numeric experiment exposes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping

import numpy as np
from scipy import stats

ObjectId = Hashable
SourceId = Hashable
NumericClaims = Mapping[ObjectId, Mapping[SourceId, float]]


class Mean:
    """The MEAN baseline: per-object arithmetic mean of claims."""

    name = "MEAN"

    def fit(self, claims: NumericClaims) -> Dict[ObjectId, float]:
        return {
            obj: float(np.mean(list(per_obj.values()))) for obj, per_obj in claims.items()
        }


class Median:
    """Per-object median — a robust reference point used in tests."""

    name = "MEDIAN"

    def fit(self, claims: NumericClaims) -> Dict[ObjectId, float]:
        return {
            obj: float(np.median(list(per_obj.values()))) for obj, per_obj in claims.items()
        }


class Catd:
    """CATD: Confidence-Aware Truth Discovery for long-tail data.

    Source weights are the upper bound of the chi-square confidence interval
    on the source's error variance:

    ``w_s = chi2.ppf(alpha/2, n_s) / sum of squared scaled residuals``

    so sources with few claims get wide intervals and small weights. Truths
    are the weighted mean of claims; the two steps iterate to a fixed point.
    """

    name = "CATD"

    def __init__(self, alpha: float = 0.05, max_iter: int = 20, tol: float = 1e-8) -> None:
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, claims: NumericClaims) -> Dict[ObjectId, float]:
        sources = sorted(
            {s for per_obj in claims.values() for s in per_obj}, key=repr
        )
        truths: Dict[ObjectId, float] = {
            obj: float(np.median(list(per_obj.values()))) for obj, per_obj in claims.items()
        }
        scales = {
            obj: max(float(np.std(list(per_obj.values()))), 1e-9)
            for obj, per_obj in claims.items()
        }
        weights: Dict[SourceId, float] = {s: 1.0 for s in sources}

        for _ in range(self.max_iter):
            residual: Dict[SourceId, float] = {s: 0.0 for s in sources}
            counts: Dict[SourceId, int] = {s: 0 for s in sources}
            for obj, per_obj in claims.items():
                truth = truths[obj]
                scale = scales[obj]
                for source, value in per_obj.items():
                    residual[source] += ((value - truth) / scale) ** 2
                    counts[source] += 1
            for source in sources:
                n = counts[source]
                if n == 0:
                    weights[source] = 1e-6
                    continue
                quantile = stats.chi2.ppf(self.alpha / 2.0, df=n)
                weights[source] = float(quantile) / max(residual[source], 1e-12)

            new_truths: Dict[ObjectId, float] = {}
            for obj, per_obj in claims.items():
                wsum = sum(weights[s] for s in per_obj)
                if wsum <= 0:
                    new_truths[obj] = truths[obj]
                    continue
                new_truths[obj] = sum(weights[s] * v for s, v in per_obj.items()) / wsum
            delta = max(abs(new_truths[o] - truths[o]) for o in truths)
            truths = new_truths
            if delta < self.tol:
                break
        self.weights = weights
        return truths

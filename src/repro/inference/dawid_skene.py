"""Dawid-Skene and ZenCrowd — classic crowd-label aggregation models.

Dawid & Skene (1979) is the original confusion-matrix EM the paper's [4]
cites; ZenCrowd (Demartini et al., WWW 2012, [5]) is the two-sided Bernoulli
reliability model. Both are frequent reference points in the truth-inference
survey [40] that the paper leans on, and both fit naturally into this
package's per-object candidate formulation:

* Dawid-Skene keeps, per claimant, a sparse confusion matrix restricted to
  each object's candidate set (structurally the same reduction we use for
  LFC, but with per-claimant class priors as in the original).
* ZenCrowd keeps a single reliability ``r_c``: a claim matches the truth
  with probability ``r_c`` and is uniform otherwise.

Each model ships two engines. The reference engine iterates Python dicts per
object per EM round — the shape the formulas are written in. The columnar
engine (``use_columnar``) runs the same E/M updates over the dataset's
:class:`~repro.data.columnar.ColumnarClaims` encoding: the confusion-cell
scatter and the per-candidate log-likelihood gather both become
``np.bincount`` calls over the precomputed claim x candidate
:class:`~repro.data.columnar.PairExpansion`, whose row order matches the
reference loops so the accumulated sums agree to float round-off.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple, Union

import numpy as np

from ..data.columnar import FrontierView, incremental_frontier, resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from ..data.sharding import ColumnarShards, parallel_plan
from ..hierarchy.tree import Value
from .base import (
    ColumnarInferenceResult,
    InferenceResult,
    TruthInferenceAlgorithm,
    initial_confidences,
    validate_warm_start,
)


def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId) -> Dict[Hashable, Value]:
    claims: Dict[Hashable, Value] = dict(dataset.records_for(obj))
    for worker, value in dataset.answers_for(obj).items():
        claims[("worker", worker)] = value
    return claims


def _confusion_estep_kernel(shard, consts, state):
    """Confusion-matrix E-step over one object-range shard.

    Shared by Dawid-Skene (``with_prior=True``: the current confidences act
    as class priors) and LFC (``with_prior=False``: uniform prior). The
    confusion ``cells`` / ``totals`` are global (their pairs span shards, so
    the caller reduces them once per iteration on the full pair table); the
    shard only performs the per-pair log-likelihood gather and the
    shard-local per-slot reduction + softmax — the transcendental-heavy
    part. Returns ``(posterior_slice, local_delta)``.
    """
    mu = state["mu"][shard.slot_lo : shard.slot_hi]
    smoothing = state["smoothing"]
    contrib = np.log(
        (state["cells"][shard.cell_index] + smoothing)
        / (state["totals"][shard.total_index] + smoothing * shard.pair_size)
    )
    log_post = np.bincount(shard.pair_slot, weights=contrib, minlength=shard.n_slots)
    if consts["with_prior"]:
        log_post = np.log(np.maximum(mu, 1e-12)) + log_post
    posterior = shard.segment_softmax(log_post)
    delta = float(np.max(np.abs(posterior - mu))) if shard.n_slots else 0.0
    return posterior, delta


def _zencrowd_estep_kernel(shard, consts, state):
    """ZenCrowd E-step over one shard: per-claim hit/miss log-likelihoods,
    per-slot posterior, plus each claim's posterior mass on its claimed slot
    (the caller's global per-claimant reliability reduction needs it in
    claim order). Returns ``(posterior_slice, claim_correct, local_delta)``."""
    mu = state["mu"][shard.slot_lo : shard.slot_hi]
    r = state["r"]  # clipped reliability per (global) claimant id
    log_hit = np.log(r[shard.claim_claimant])
    log_miss = np.log((1.0 - r[shard.claim_claimant]) / consts["miss_denom"])
    contrib = np.where(
        shard.pair_is_claimed,
        log_hit[shard.pair_claim],
        log_miss[shard.pair_claim],
    )
    log_post = np.log(np.maximum(mu, 1e-12)) + np.bincount(
        shard.pair_slot, weights=contrib, minlength=shard.n_slots
    )
    posterior = shard.segment_softmax(log_post)
    delta = float(np.max(np.abs(posterior - mu))) if shard.n_slots else 0.0
    return posterior, posterior[shard.claim_slot], delta


def _incremental_confusion_fit(model, dataset, warm, with_prior):
    """Shared dirty-frontier fit for the confusion-E-step family (DS / LFC).

    Re-converges only the frontier's posteriors, holding clean objects at the
    warm-start values. The global confusion reductions are patched per
    iteration as ``base + frontier``: ``base`` is one full-pair-table
    bincount at the warm posteriors minus the frontier's contribution at the
    same posteriors — computed once, O(claims); each EM iteration then only
    re-reduces the frontier's pairs and runs the unmodified
    :func:`_confusion_estep_kernel` over a
    :class:`~repro.data.columnar.FrontierView`. Returns ``None`` when the
    delta cannot be served (caller falls back to a cold fit), or delegates to
    ``model._fit_columnar`` when the frontier saturates (bitwise parity).
    """
    if not isinstance(warm, ColumnarInferenceResult):
        return None
    plan = incremental_frontier(
        dataset,
        warm._columnar,
        hops=model.frontier_hops,
        reuse=getattr(warm, "frontier_state", None),
    )
    if plan is None:
        return None
    col, frontier, _ops = plan
    if len(frontier) >= col.n_objects:
        return model._fit_columnar(dataset)

    pairs = col.pairs
    fv = FrontierView(col, frontier)
    # Slot growth (appended objects / brand-new candidates) scatter-expands
    # the warm posteriors into the new layout; new slots get weight 0.0, so
    # the base reductions below — which use ``mu`` only as bincount weights —
    # subtract exactly the mass the warm totals contained. Every new slot
    # belongs to a frontier object, so its posterior is re-converged from
    # the vote-proportion init like any other frontier slot.
    mu = plan.expand_slots(warm.flat)
    # Re-initialise the frontier's posteriors from vote proportions (the
    # cold fit's starting point, now including the new answers) instead of
    # the warm values: a converged posterior is near-one-hot, and with it
    # as the E-step prior the appended answers can never overcome a
    # ~log(1e-12) margin — the fit would "converge" in one iteration
    # without moving. Clean objects stay frozen at the warm values.
    mu_f = col.initial_confidences_flat()[fv.slot_ids]
    w_all = mu[pairs.pair_slot]
    base_cells = np.bincount(pairs.cell_index, weights=w_all, minlength=pairs.n_cells)
    base_totals = np.bincount(
        pairs.total_index, weights=w_all, minlength=pairs.n_totals
    )
    w_warm = mu[fv.slot_ids][fv.pair_slot]
    base_cells -= np.bincount(fv.cell_index, weights=w_warm, minlength=pairs.n_cells)
    base_totals -= np.bincount(
        fv.total_index, weights=w_warm, minlength=pairs.n_totals
    )

    consts = {"with_prior": with_prior}
    iterations = 0
    converged = False
    for iterations in range(1, model.max_iter + 1):
        w_f = mu_f[fv.pair_slot]
        cells = base_cells + np.bincount(
            fv.cell_index, weights=w_f, minlength=pairs.n_cells
        )
        totals = base_totals + np.bincount(
            fv.total_index, weights=w_f, minlength=pairs.n_totals
        )
        posterior, delta = _confusion_estep_kernel(
            fv,
            consts,
            {
                "mu": mu_f,
                "cells": cells,
                "totals": totals,
                "smoothing": model.smoothing,
            },
        )
        mu_f = posterior
        if delta < model.tol:
            converged = True
            break
    mu[fv.slot_ids] = mu_f
    result = ColumnarInferenceResult(dataset, col, mu, iterations, converged)
    result.frontier_size = len(frontier)
    result.frontier_state = plan.frontier_state
    return result


class DawidSkene(TruthInferenceAlgorithm):
    """Dawid-Skene EM with sparse per-claimant confusion matrices.

    Parameters
    ----------
    smoothing:
        Laplace pseudo-count per confusion cell.
    max_iter / tol:
        EM stopping rule on confidence change.
    use_columnar:
        Engine selector (``True`` / ``False`` / ``"auto"``); see
        :func:`repro.data.columnar.resolve_engine`.
    n_jobs, shards, parallel_backend:
        Parallel-execution knobs for the columnar engine (object-range
        shards, bitwise-identical results; see :mod:`repro.data.sharding`).
        ``parallel_backend="auto"`` downgrades to serial on 1-core hosts or
        small shards.
    incremental / frontier_hops:
        With ``incremental=True`` and a ``warm_start=`` result from the same
        dataset, re-converge only the dirty frontier (touched objects plus
        claimant-sharing neighbours up to ``frontier_hops``); falls back to
        a cold fit whenever the delta cannot be served exactly.
    """

    name = "DS"
    supports_workers = True
    supports_incremental = True

    def __init__(
        self,
        smoothing: float = 0.5,
        max_iter: int = 40,
        tol: float = 1e-5,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "auto",
        incremental: bool = False,
        frontier_hops: int = 1,
    ) -> None:
        self.smoothing = smoothing
        self.max_iter = max_iter
        self.tol = tol
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend
        self.incremental = incremental
        if frontier_hops < 0:
            raise ValueError("frontier_hops must be >= 0")
        self.frontier_hops = frontier_hops

    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[InferenceResult] = None,
    ) -> InferenceResult:
        warm_start = validate_warm_start(dataset, warm_start)
        if resolve_engine(self.use_columnar, dataset):
            if self.incremental and warm_start is not None:
                result = _incremental_confusion_fit(
                    self, dataset, warm_start, with_prior=True
                )
                if result is not None:
                    return result
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        pairs = col.pairs
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        shards.ensure_pairs()
        mu = col.initial_confidences_flat()
        iterations = 0
        converged = False
        consts = [{"with_prior": True} for _ in shards]

        with executor.session(shards, consts) as sess:
            for iterations in range(1, self.max_iter + 1):
                # M-step: every pair (claim j, candidate slot s) adds mu[s] to
                # the claimant's confusion cell (truth value of s, claimed
                # value of j) and to the (claimant, truth) marginal. Cells
                # span shards, so this reduction stays global (one pass over
                # the pair table in its original order — the merge contract's
                # reduction half).
                weight = mu[pairs.pair_slot]
                cells = np.bincount(
                    pairs.cell_index, weights=weight, minlength=pairs.n_cells
                )
                totals = np.bincount(
                    pairs.total_index, weights=weight, minlength=pairs.n_totals
                )

                # E-step per shard: log-likelihood gather + per-slot softmax.
                parts = sess.map(
                    _confusion_estep_kernel,
                    {
                        "mu": mu,
                        "cells": cells,
                        "totals": totals,
                        "smoothing": self.smoothing,
                    },
                )
                posterior = ColumnarShards.concat([p[0] for p in parts])
                delta = max((p[1] for p in parts), default=0.0)
                mu = posterior
                if delta < self.tol:
                    converged = True
                    break
        return ColumnarInferenceResult(dataset, col, mu, iterations, converged)

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        claims_cache = {obj: _claims_of(dataset, obj) for obj in dataset.objects}
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            # M-step: confusion cells and per-truth totals.
            cells: Dict[Hashable, Dict[Tuple[Value, Value], float]] = {}
            totals: Dict[Hashable, Dict[Value, float]] = {}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                probs = mu[obj]
                for claimant, claimed in claims.items():
                    cell = cells.setdefault(claimant, {})
                    total = totals.setdefault(claimant, {})
                    for pos, truth in enumerate(ctx.values):
                        weight = float(probs[pos])
                        if weight <= 0:
                            continue
                        cell[(truth, claimed)] = cell.get((truth, claimed), 0.0) + weight
                        total[truth] = total.get(truth, 0.0) + weight

            # Class prior per object from current confidences (the original's
            # marginal class probabilities, localised to the candidate set).
            new_mu: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                log_post = np.log(np.maximum(mu[obj], 1e-12))
                for claimant, claimed in claims.items():
                    cell = cells.get(claimant, {})
                    total = totals.get(claimant, {})
                    for pos, truth in enumerate(ctx.values):
                        numerator = cell.get((truth, claimed), 0.0) + self.smoothing
                        denominator = total.get(truth, 0.0) + self.smoothing * n
                        log_post[pos] += np.log(numerator / denominator)
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
            mu = new_mu
            if delta < self.tol:
                converged = True
                break
        return InferenceResult(dataset, mu, iterations, converged)


class ZenCrowd(TruthInferenceAlgorithm):
    """ZenCrowd: single Bernoulli reliability per claimant, EM-estimated."""

    name = "ZENCROWD"
    supports_workers = True
    supports_incremental = True

    def __init__(
        self,
        prior_reliability: float = 0.7,
        max_iter: int = 40,
        tol: float = 1e-5,
        use_columnar: Union[bool, str] = "auto",
        n_jobs: int = 1,
        shards: Optional[int] = None,
        parallel_backend: str = "auto",
        incremental: bool = False,
        frontier_hops: int = 1,
    ) -> None:
        self.prior_reliability = prior_reliability
        self.max_iter = max_iter
        self.tol = tol
        self.use_columnar = use_columnar
        self.n_jobs = n_jobs
        self.shards = shards
        self.parallel_backend = parallel_backend
        self.incremental = incremental
        if frontier_hops < 0:
            raise ValueError("frontier_hops must be >= 0")
        self.frontier_hops = frontier_hops

    def fit(
        self,
        dataset: TruthDiscoveryDataset,
        warm_start: Optional[InferenceResult] = None,
    ) -> InferenceResult:
        warm_start = validate_warm_start(dataset, warm_start)
        if resolve_engine(self.use_columnar, dataset):
            if self.incremental and warm_start is not None:
                result = self._fit_incremental(dataset, warm_start)
                if result is not None:
                    return result
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    # ------------------------------------------------------------------
    # incremental engine (dirty-object frontier)
    # ------------------------------------------------------------------
    def _fit_incremental(
        self, dataset: TruthDiscoveryDataset, warm: InferenceResult
    ) -> Optional[InferenceResult]:
        """Frontier-only ZenCrowd EM; ``None`` -> run the full fit.

        Needs no pair expansion: the global per-claimant correct-mass
        reduction is patched as ``base + frontier`` where ``base`` is one
        full claim-table bincount at the warm posteriors minus the
        frontier's claims at the same posteriors. Reliability is seeded
        from the warm result (prior for unseen claimants).
        """
        if not isinstance(warm, ColumnarInferenceResult):
            return None
        reliability_map = getattr(warm, "reliability", None)
        if reliability_map is None:
            return None
        plan = incremental_frontier(
            dataset,
            warm._columnar,
            hops=self.frontier_hops,
            reuse=getattr(warm, "frontier_state", None),
        )
        if plan is None:
            return None
        col, frontier, _ops = plan
        if len(frontier) >= col.n_objects:
            return self._fit_columnar(dataset)

        fv = FrontierView(col, frontier)
        # Slot growth: scatter-expand the warm posteriors (new slots 0.0 —
        # ``mu`` only weights the base bincount below, and the frontier's
        # contribution is subtracted at the same values, so the base is the
        # clean objects' exact correct-mass either way).
        mu = plan.expand_slots(warm.flat)
        # Vote-proportion re-init for the frontier, as in the confusion fit:
        # the warm posterior as a prior is too saturated for new answers to
        # move.
        mu_f = col.initial_confidences_flat()[fv.slot_ids]
        counts = col.claimant_counts()
        reliability = np.full(
            col.n_claimants, self.prior_reliability, dtype=np.float64
        )
        for cid, key in enumerate(col.claimants):
            prev = reliability_map.get(key)
            if prev is not None:
                reliability[cid] = prev
        base_correct = np.bincount(
            col.claim_claimant,
            weights=mu[col.claim_slot],
            minlength=col.n_claimants,
        )
        base_correct -= np.bincount(
            fv.claim_claimant,
            weights=mu[fv.slot_ids][fv.claim_slot],
            minlength=col.n_claimants,
        )
        consts = {
            "miss_denom": np.maximum(fv.sizes[fv.claim_obj] - 1, 1).astype(
                np.float64
            )
        }
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            r = np.clip(reliability, 1e-3, 1.0 - 1e-3)
            posterior, claim_correct, delta = _zencrowd_estep_kernel(
                fv, consts, {"mu": mu_f, "r": r}
            )
            mu_f = posterior
            correct_mass = base_correct + np.bincount(
                fv.claim_claimant,
                weights=claim_correct,
                minlength=col.n_claimants,
            )
            reliability = (correct_mass + 1.0) / (counts + 2.0)
            if delta < self.tol:
                converged = True
                break
        mu[fv.slot_ids] = mu_f
        result = ColumnarInferenceResult(dataset, col, mu, iterations, converged)
        result.reliability = col.claimant_mapping(reliability)  # type: ignore[attr-defined]
        result.frontier_size = len(frontier)
        result.frontier_state = plan.frontier_state
        return result

    # ------------------------------------------------------------------
    # columnar engine
    # ------------------------------------------------------------------
    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        shards, executor = parallel_plan(
            col, self.n_jobs, self.shards, self.parallel_backend
        )
        shards.ensure_pairs()
        mu = col.initial_confidences_flat()
        reliability = np.full(col.n_claimants, self.prior_reliability, dtype=np.float64)
        counts = col.claimant_counts()
        # Per-claim uniform-miss denominator max(|Vo| - 1, 1).
        miss_denom = np.maximum(col.sizes[col.claim_obj] - 1, 1).astype(np.float64)
        consts = [{"miss_denom": m} for m in shards.slice_claims(miss_denom)]
        iterations = 0
        converged = False

        with executor.session(shards, consts) as sess:
            for iterations in range(1, self.max_iter + 1):
                r = np.clip(reliability, 1e-3, 1.0 - 1e-3)
                parts = sess.map(_zencrowd_estep_kernel, {"mu": mu, "r": r})
                posterior = ColumnarShards.concat([p[0] for p in parts])
                claim_correct = ColumnarShards.concat([p[1] for p in parts])
                delta = max((p[2] for p in parts), default=0.0)
                mu = posterior
                # Per-claimant reliability: the global bincount over the
                # concatenated per-claim posterior mass (claimants span
                # shards; reducing here keeps the accumulation order).
                correct_mass = np.bincount(
                    col.claim_claimant,
                    weights=claim_correct,
                    minlength=col.n_claimants,
                )
                reliability = (correct_mass + 1.0) / (counts + 2.0)
                if delta < self.tol:
                    converged = True
                    break
        result = ColumnarInferenceResult(dataset, col, mu, iterations, converged)
        result.reliability = col.claimant_mapping(reliability)  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # reference engine
    # ------------------------------------------------------------------
    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        mu = initial_confidences(dataset)
        claims_cache = {obj: _claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        reliability: Dict[Hashable, float] = {
            c: self.prior_reliability for c in claimants
        }
        iterations = 0
        converged = False

        for iterations in range(1, self.max_iter + 1):
            new_mu: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            correct_mass = {c: 0.0 for c in claimants}
            counts = {c: 0 for c in claimants}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                log_post = np.log(np.maximum(mu[obj], 1e-12))
                for claimant, claimed in claims.items():
                    r = min(max(reliability[claimant], 1e-3), 1 - 1e-3)
                    like = np.full(n, (1.0 - r) / max(n - 1, 1))
                    like[ctx.index[claimed]] = r
                    log_post += np.log(like)
                log_post -= log_post.max()
                posterior = np.exp(log_post)
                posterior /= posterior.sum()
                delta = max(delta, float(np.max(np.abs(posterior - mu[obj]))))
                new_mu[obj] = posterior
                for claimant, claimed in claims.items():
                    correct_mass[claimant] += float(posterior[ctx.index[claimed]])
                    counts[claimant] += 1
            mu = new_mu
            reliability = {
                c: (correct_mass[c] + 1.0) / (counts[c] + 2.0) for c in claimants
            }
            if delta < self.tol:
                converged = True
                break
        result = InferenceResult(dataset, mu, iterations, converged)
        result.reliability = reliability  # type: ignore[attr-defined]
        return result

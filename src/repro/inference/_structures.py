"""Per-object likelihood structures shared by TDH inference and EAI assignment.

For every object ``o`` the EM algorithm repeatedly evaluates the claim
likelihoods of Eq. (1)-(4):

* **Eq. (1)** (sources, ``o in OH``): ``P(claim u | truth v, phi_s)`` is
  ``phi_1`` for ``u = v``, ``phi_2 / |Go(v)|`` for ``u in Go(v)`` and
  ``phi_3 / (|Vo| - |Go(v)| - 1)`` otherwise;
* **Eq. (2)** (sources, flat objects): the case-2 channel collapses onto the
  exact match, giving ``phi_1 + phi_2`` for ``u = v`` and
  ``phi_3 / (|Vo| - 1)`` otherwise;
* **Eq. (3)/(4)** (workers): the same shape with ``psi_w``, except cases 2/3
  redistribute their mass by the source-claim popularity terms
  ``Pop2(u|v) = c(u) / sum_{u' in Go(v)} c(u')`` and
  ``Pop3(u|v) = c(u) / (c(o) - c(v) - sum_{Go(v)} c)``.

These likelihoods feed both TDH's E-step responsibilities ``f`` / ``g`` and
the EAI assigner's incremental one-step EM (Eq. 16-18). Because the candidate
set, the ancestor structure and the source claim counts are fixed during
inference, the value-independent pieces can be pre-assembled into small
matrices, after which a likelihood row is three vector operations.

Conventions: matrices are ``(n, n)`` with **rows = claimed value u** and
**columns = hypothesised truth v**; ``A[u, v]`` is ``True`` iff ``u`` is a
(candidate) ancestor of ``v``, i.e. ``u in Go(v)``.

This module is the *reference-engine* (and EAI) representation. The columnar
TDH engine evaluates exactly the same case weights, but flattened to one
entry per claim x candidate pair over the CSR arrays of
:class:`~repro.data.columnar.ColumnarHierarchy` — see
``TDHModel._pair_case_arrays``. Keep the two in lock-step: the parity suite
(``tests/test_columnar_parity.py``) will catch any drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value


@dataclass
class ObjectStructure:
    """Precomputed likelihood building blocks for one object.

    Attributes
    ----------
    values / index:
        Candidate values ``Vo`` and their positions.
    counts:
        Source-claim counts per candidate (``|{s : v_s = u}|``).
    exact:
        Identity matrix — selects the case-1 (exact match) entries.
    source_case2 / source_case3:
        Weight matrices such that the source likelihood of Eq. (1)/(2) is
        ``phi1 * exact + phi2 * source_case2 + phi3 * source_case3``.
        For objects outside ``OH`` the case-2 matrix degenerates to the
        identity, which realises the ``phi1 + phi2`` collapse of Eq. (2).
    worker_case2 / worker_case3:
        Same for the worker likelihood of Eq. (3)/(4); case 2/3 are weighted
        by the popularity terms ``Pop2`` / ``Pop3``.
    ancestor_counts:
        ``|Go(v)|`` per column.
    has_hierarchy:
        Whether the object is in ``OH``.
    """

    values: List[Value]
    index: Dict[Value, int]
    counts: np.ndarray
    exact: np.ndarray
    source_case2: np.ndarray
    source_case3: np.ndarray
    worker_case2: np.ndarray
    worker_case3: np.ndarray
    ancestor_counts: np.ndarray
    has_hierarchy: bool

    @property
    def size(self) -> int:
        return len(self.values)

    def source_likelihood(self, phi: np.ndarray) -> np.ndarray:
        """``L[u, v] = P(claim u | truth v, phi)`` per Eq. (1)/(2)."""
        return (
            phi[0] * self.exact
            + phi[1] * self.source_case2
            + phi[2] * self.source_case3
        )

    def worker_likelihood(self, psi: np.ndarray) -> np.ndarray:
        """``L[u, v] = P(answer u | truth v, psi)`` per Eq. (3)/(4)."""
        return (
            psi[0] * self.exact
            + psi[1] * self.worker_case2
            + psi[2] * self.worker_case3
        )

    def source_likelihood_row(self, u: int, phi: np.ndarray) -> np.ndarray:
        """Likelihood of the observed claim ``values[u]`` under each truth."""
        row = phi[1] * self.source_case2[u] + phi[2] * self.source_case3[u]
        row = row.copy()
        row[u] += phi[0]
        return row

    def worker_likelihood_row(self, u: int, psi: np.ndarray) -> np.ndarray:
        """Likelihood of the observed answer ``values[u]`` under each truth."""
        row = psi[1] * self.worker_case2[u] + psi[2] * self.worker_case3[u]
        row = row.copy()
        row[u] += psi[0]
        return row


def build_structure(
    dataset: TruthDiscoveryDataset,
    obj: ObjectId,
    use_hierarchy: bool = True,
    use_popularity: bool = True,
    collapse_flat_objects: bool = True,
) -> ObjectStructure:
    """Assemble the :class:`ObjectStructure` for ``obj`` from the dataset.

    ``use_hierarchy=False`` ignores ancestor relations entirely (the
    two-interpretation ablation: generalized truths count as exact matches of
    nothing, i.e. wrong). ``use_popularity=False`` replaces the worker
    popularity terms ``Pop2``/``Pop3`` with the uniform source weighting.
    ``collapse_flat_objects=False`` disables the Eq. (2)/(4) special case:
    objects outside ``OH`` keep the Eq. (1) likelihood, whose case-2 channel
    then has no support — the paper warns this underestimates ``phi_2``.
    """
    ctx = dataset.context(obj)
    n = ctx.size
    counts = np.zeros(n, dtype=float)
    for value in dataset.records_for(obj).values():
        counts[ctx.index[value]] += 1.0

    ancestor = np.zeros((n, n), dtype=bool)
    if use_hierarchy:
        for v_pos, ancestors in enumerate(ctx.ancestor_sets):
            for u_pos in ancestors:
                ancestor[u_pos, v_pos] = True
    gsize = ancestor.sum(axis=0).astype(float)
    has_hierarchy = bool(
        use_hierarchy and (ctx.has_hierarchy or not collapse_flat_objects)
    )

    exact = np.eye(n)
    off_diagonal = 1.0 - exact
    # Case 3 applies to values that are neither the truth nor its ancestors.
    case3_mask = off_diagonal * (~ancestor)

    if has_hierarchy:
        # Eq. (1): generalized truths picked uniformly from Go(v); wrong values
        # uniformly from the remaining |Vo| - |Go(v)| - 1 candidates.
        with np.errstate(divide="ignore", invalid="ignore"):
            source_case2 = np.where(gsize > 0, ancestor / np.maximum(gsize, 1.0), 0.0)
            wrong_slots = n - gsize - 1.0
            source_case3 = np.where(
                wrong_slots > 0, case3_mask / np.maximum(wrong_slots, 1.0), 0.0
            )
    else:
        # Eq. (2): exact match absorbs phi2; wrong values uniform over the rest.
        source_case2 = exact.copy()
        source_case3 = case3_mask / (n - 1.0) if n > 1 else np.zeros((n, n))

    # Worker popularity terms (Eq. 3): Pop2/Pop3 redistribute the case mass by
    # how often sources claimed each value.
    total = counts.sum()
    pop2_denominator = (ancestor * counts[:, None]).sum(axis=0)  # claims in Go(v)
    pop3_denominator = total - counts - pop2_denominator
    if not use_popularity:
        worker_case2 = source_case2.copy()
        worker_case3 = source_case3.copy()
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            if has_hierarchy:
                worker_case2 = np.where(
                    pop2_denominator > 0,
                    ancestor * counts[:, None] / np.maximum(pop2_denominator, 1.0),
                    0.0,
                )
            else:
                worker_case2 = exact.copy()
            worker_case3 = np.where(
                pop3_denominator > 0,
                case3_mask * counts[:, None] / np.maximum(pop3_denominator, 1.0),
                0.0,
            )

    return ObjectStructure(
        values=list(ctx.values),
        index=dict(ctx.index),
        counts=counts,
        exact=exact,
        source_case2=source_case2,
        source_case3=source_case3,
        worker_case2=worker_case2,
        worker_case3=worker_case3,
        ancestor_counts=gsize,
        has_hierarchy=has_hierarchy,
    )


class StructureCache:
    """Cache of :class:`ObjectStructure` keyed by object.

    Structures depend only on records (not answers), so a cache can persist
    across crowdsourcing rounds as long as records are unchanged. The ablation
    flags are fixed per cache; mixing flags requires separate caches.
    """

    def __init__(
        self,
        dataset: TruthDiscoveryDataset,
        use_hierarchy: bool = True,
        use_popularity: bool = True,
        collapse_flat_objects: bool = True,
    ) -> None:
        self._dataset = dataset
        self.use_hierarchy = use_hierarchy
        self.use_popularity = use_popularity
        self.collapse_flat_objects = collapse_flat_objects
        self._cache: Dict[ObjectId, ObjectStructure] = {}

    def get(self, obj: ObjectId) -> ObjectStructure:
        structure = self._cache.get(obj)
        if structure is None:
            structure = build_structure(
                self._dataset,
                obj,
                use_hierarchy=self.use_hierarchy,
                use_popularity=self.use_popularity,
                collapse_flat_objects=self.collapse_flat_objects,
            )
            self._cache[obj] = structure
        return structure

    def invalidate(self, obj: ObjectId | None = None) -> None:
        """Drop one object's structure (or all of them)."""
        if obj is None:
            self._cache.clear()
        else:
            self._cache.pop(obj, None)

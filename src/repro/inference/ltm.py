"""LTM — Latent Truth Model (Zhao et al., PVLDB 2012), multi-truth baseline.

LTM gives every (object, value) pair a binary latent truth flag and every
source a two-sided quality: *sensitivity* (recall — probability of claiming a
value that is true) and *specificity* (probability of not claiming a value
that is false). The original samples with collapsed Gibbs; we use the
mean-field EM fixed point, which converges to the same posterior means for
this model family and keeps the run deterministic.

A source "claims" value ``v`` of object ``o`` if its claimed value is ``v``;
because our predicates are functional (one claim per source per object),
every other candidate counts as "not claimed" by that source.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from ..hierarchy.tree import Value
from .base import InferenceResult, TruthInferenceAlgorithm


class LtmResult(InferenceResult):
    """LTM result: per-value truth probabilities and thresholded truth sets."""

    def __init__(self, dataset, confidences, truth_probability, threshold, iterations, converged):
        super().__init__(dataset, confidences, iterations, converged)
        self.truth_probability = truth_probability
        self.threshold = threshold

    def truth_sets(self) -> Dict[ObjectId, Set[Value]]:
        out: Dict[ObjectId, Set[Value]] = {}
        for obj, probs in self.truth_probability.items():
            ctx = self.dataset.context(obj)
            chosen = {
                value for value, p in zip(ctx.values, probs) if p >= self.threshold
            }
            if not chosen:
                chosen = {ctx.values[int(np.argmax(probs))]}
            out[obj] = chosen
        return out


class Ltm(TruthInferenceAlgorithm):
    """Mean-field latent truth model.

    Parameters
    ----------
    prior_true:
        Prior probability that a candidate value is true.
    threshold:
        Posterior cut-off for including a value in the truth set.
    max_iter / tol:
        Fixed-point stopping rule.
    smoothing:
        Beta pseudo-counts for sensitivity/specificity updates.
    """

    name = "LTM"
    supports_workers = True

    def __init__(
        self,
        prior_true: float = 0.5,
        threshold: float = 0.5,
        max_iter: int = 40,
        tol: float = 1e-5,
        smoothing: float = 1.0,
    ) -> None:
        self.prior_true = prior_true
        self.threshold = threshold
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing

    def fit(self, dataset: TruthDiscoveryDataset) -> LtmResult:
        claims_cache = {obj: self._claims_of(dataset, obj) for obj in dataset.objects}
        claimants = {c for claims in claims_cache.values() for c in claims}
        sensitivity: Dict[Hashable, float] = {c: 0.7 for c in claimants}
        specificity: Dict[Hashable, float] = {c: 0.9 for c in claimants}
        truth_prob: Dict[ObjectId, np.ndarray] = {
            obj: np.full(dataset.context(obj).size, self.prior_true)
            for obj in dataset.objects
        }

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iter + 1):
            # E-step: per-value posterior of being true.
            new_probs: Dict[ObjectId, np.ndarray] = {}
            delta = 0.0
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                n = ctx.size
                log_true = np.full(n, np.log(max(self.prior_true, 1e-12)))
                log_false = np.full(n, np.log(max(1.0 - self.prior_true, 1e-12)))
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    sens = min(max(sensitivity[claimant], 1e-3), 1 - 1e-3)
                    spec = min(max(specificity[claimant], 1e-3), 1 - 1e-3)
                    for v in range(n):
                        if v == u:
                            log_true[v] += np.log(sens)
                            log_false[v] += np.log(1.0 - spec)
                        else:
                            log_true[v] += np.log(1.0 - sens)
                            log_false[v] += np.log(spec)
                posterior = 1.0 / (1.0 + np.exp(log_false - log_true))
                delta = max(delta, float(np.max(np.abs(posterior - truth_prob[obj]))))
                new_probs[obj] = posterior
            truth_prob = new_probs

            # M-step: sensitivity/specificity from expected truth counts.
            tp: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            pos: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            tn: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            neg: Dict[Hashable, float] = {c: 0.0 for c in claimants}
            for obj, claims in claims_cache.items():
                ctx = dataset.context(obj)
                probs = truth_prob[obj]
                total_true = float(probs.sum())
                total_false = ctx.size - total_true
                for claimant, value in claims.items():
                    u = ctx.index[value]
                    tp[claimant] += float(probs[u])
                    pos[claimant] += total_true
                    tn[claimant] += total_false - (1.0 - float(probs[u]))
                    neg[claimant] += total_false
            s = self.smoothing
            sensitivity = {
                c: (tp[c] + s) / (pos[c] + 2 * s) for c in claimants
            }
            specificity = {
                c: (tn[c] + s) / (neg[c] + 2 * s) for c in claimants
            }
            if delta < self.tol:
                converged = True
                break

        # Single-truth view: normalised truth probabilities.
        confidences = {}
        for obj, probs in truth_prob.items():
            total = float(probs.sum())
            confidences[obj] = probs / total if total > 0 else probs
        result = LtmResult(
            dataset, confidences, truth_prob, self.threshold, iterations, converged
        )
        result.sensitivity = sensitivity  # type: ignore[attr-defined]
        result.specificity = specificity  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _claims_of(dataset: TruthDiscoveryDataset, obj: ObjectId):
        claims: Dict[Hashable, object] = dict(dataset.records_for(obj))
        for worker, value in dataset.answers_for(obj).items():
            claims[("worker", worker)] = value
        return claims

"""NumericTDH — TDH over the implicit rounding hierarchy (Section 3.2).

Convenience wrapper that takes raw numeric claim tables
(``object -> {source: value}``), builds the significant-digit hierarchy,
runs :class:`~repro.inference.tdh.TDHModel` and returns float truths — the
exact pipeline of the paper's stock-dataset experiment, packaged for reuse.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from ..datasets.stock import claims_to_dataset
from .numeric import NumericClaims
from .tdh import TDHModel, TDHResult


class NumericTdh:
    """TDH for numeric attributes via the implicit rounding hierarchy.

    Parameters
    ----------
    model:
        Optional preconfigured :class:`TDHModel`; defaults to the paper's
        hyperparameters with a bounded iteration count.
    max_digits:
        Precision cap of the rounding hierarchy — claims are canonicalised to
        this many significant digits.
    """

    name = "TDH"

    def __init__(
        self, model: Optional[TDHModel] = None, max_digits: int = 6
    ) -> None:
        self.model = model if model is not None else TDHModel(max_iter=30, tol=1e-4)
        self.max_digits = max_digits
        self.last_result: Optional[TDHResult] = None

    def fit(self, claims: NumericClaims) -> Dict[Hashable, float]:
        """Estimate a float truth per object by hierarchical selection.

        The returned values are always claimed values (possibly at reduced
        precision), never averages — which is what makes the estimator robust
        to scale outliers.
        """
        if not claims:
            raise ValueError("claims table is empty")
        # Gold is unknown at fit time; pass claim medians only as *names* for
        # the dataset wrapper's gold slot, then discard the evaluation side.
        dataset = claims_to_dataset(
            claims,
            gold={obj: next(iter(per_obj.values())) for obj, per_obj in claims.items()},
            name="numeric-tdh",
            max_digits=self.max_digits,
        )
        dataset.gold.clear()  # no ground truth during inference
        result = self.model.fit(dataset)
        self.last_result = result
        return {obj: float(value) for obj, value in result.truths().items()}

    def confidence(self, obj: Hashable) -> Dict[float, float]:
        """Confidence distribution over the claimed (canonical) values."""
        if self.last_result is None:
            raise RuntimeError("call fit() first")
        return {
            float(value): probability
            for value, probability in self.last_result.confidence(obj).items()
        }

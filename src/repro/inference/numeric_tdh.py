"""NumericTDH — TDH over the implicit rounding hierarchy (Section 3.2).

Convenience wrapper that takes raw numeric claim tables
(``object -> {source: value}``), builds the significant-digit hierarchy,
runs :class:`~repro.inference.tdh.TDHModel` and returns float truths — the
exact pipeline of the paper's stock-dataset experiment, packaged for reuse.

The E/M updates are exactly TDH's (see :mod:`repro.inference.tdh`): the
rounding chains become ancestor paths, so "generalized" means "claimed at
coarser precision". Both of TDH's execution engines are therefore available
here too — ``use_columnar`` is forwarded to the underlying model, and the
CSR ancestor arrays of :class:`~repro.data.columnar.ColumnarHierarchy` are
built over the rounding hierarchy like over any other tree.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Union

from ..datasets.stock import claims_to_dataset
from .numeric import NumericClaims
from .tdh import TDHModel, TDHResult


class NumericTdh:
    """TDH for numeric attributes via the implicit rounding hierarchy.

    Parameters
    ----------
    model:
        Optional preconfigured :class:`TDHModel`; defaults to the paper's
        hyperparameters with a bounded iteration count.
    max_digits:
        Precision cap of the rounding hierarchy — claims are canonicalised to
        this many significant digits.
    use_columnar:
        Engine selector for the default model (ignored when ``model`` is
        given); see :func:`repro.data.columnar.resolve_engine`.
    """

    name = "TDH"

    def __init__(
        self,
        model: Optional[TDHModel] = None,
        max_digits: int = 6,
        use_columnar: Union[bool, str] = "auto",
    ) -> None:
        self.model = (
            model
            if model is not None
            else TDHModel(max_iter=30, tol=1e-4, use_columnar=use_columnar)
        )
        self.max_digits = max_digits
        self.last_result: Optional[TDHResult] = None

    def fit(self, claims: NumericClaims) -> Dict[Hashable, float]:
        """Estimate a float truth per object by hierarchical selection.

        The returned values are always claimed values (possibly at reduced
        precision), never averages — which is what makes the estimator robust
        to scale outliers.
        """
        if not claims:
            raise ValueError("claims table is empty")
        # Gold is unknown at fit time; pass claim medians only as *names* for
        # the dataset wrapper's gold slot, then discard the evaluation side.
        dataset = claims_to_dataset(
            claims,
            gold={obj: next(iter(per_obj.values())) for obj, per_obj in claims.items()},
            name="numeric-tdh",
            max_digits=self.max_digits,
        )
        dataset.gold.clear()  # no ground truth during inference
        result = self.model.fit(dataset)
        self.last_result = result
        return {obj: float(value) for obj, value in result.truths().items()}

    def confidence(self, obj: Hashable) -> Dict[float, float]:
        """Confidence distribution over the claimed (canonical) values."""
        if self.last_result is None:
            raise RuntimeError("call fit() first")
        return {
            float(value): probability
            for value, probability in self.last_result.confidence(obj).items()
        }

"""VOTE — majority voting baseline (paper Section 5.1).

Selects the value with the highest claim frequency; records and worker
answers count equally. Ties break toward the first-claimed value, which keeps
the algorithm deterministic.

Two interchangeable execution engines: the per-object dict loop (reference)
and a columnar one-liner over the dataset's flat claim table (one
``np.bincount`` plus a segment normalize). ``use_columnar="auto"`` picks the
columnar path once the claim table is large enough to pay for the encoding.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..data.columnar import resolve_engine
from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import ColumnarInferenceResult, InferenceResult, TruthInferenceAlgorithm


class Vote(TruthInferenceAlgorithm):
    """Majority vote over records and answers."""

    name = "VOTE"
    supports_workers = True

    def __init__(self, use_columnar: Union[bool, str] = "auto") -> None:
        self.use_columnar = use_columnar

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        if resolve_engine(self.use_columnar, dataset):
            return self._fit_columnar(dataset)
        return self._fit_reference(dataset)

    def _fit_columnar(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        col = dataset.columnar()
        flat = col.segment_normalize(col.vote_counts())
        return ColumnarInferenceResult(dataset, col, flat, iterations=1, converged=True)

    def _fit_reference(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        confidences: Dict[ObjectId, np.ndarray] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            counts = np.zeros(ctx.size, dtype=float)
            for value in dataset.records_for(obj).values():
                counts[ctx.index[value]] += 1.0
            for value in dataset.answers_for(obj).values():
                counts[ctx.index[value]] += 1.0
            total = counts.sum()
            confidences[obj] = (
                counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
            )
        return InferenceResult(dataset, confidences, iterations=1, converged=True)

"""VOTE — majority voting baseline (paper Section 5.1).

Selects the value with the highest claim frequency; records and worker
answers count equally. Ties break toward the first-claimed value, which keeps
the algorithm deterministic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data.model import ObjectId, TruthDiscoveryDataset
from .base import InferenceResult, TruthInferenceAlgorithm


class Vote(TruthInferenceAlgorithm):
    """Majority vote over records and answers."""

    name = "VOTE"
    supports_workers = True

    def fit(self, dataset: TruthDiscoveryDataset) -> InferenceResult:
        confidences: Dict[ObjectId, np.ndarray] = {}
        for obj in dataset.objects:
            ctx = dataset.context(obj)
            counts = np.zeros(ctx.size, dtype=float)
            for value in dataset.records_for(obj).values():
                counts[ctx.index[value]] += 1.0
            for value in dataset.answers_for(obj).values():
                counts[ctx.index[value]] += 1.0
            total = counts.sum()
            confidences[obj] = (
                counts / total if total > 0 else np.full(ctx.size, 1.0 / ctx.size)
            )
        return InferenceResult(dataset, confidences, iterations=1, converged=True)

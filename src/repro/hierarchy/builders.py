"""Builders that construct :class:`~repro.hierarchy.tree.Hierarchy` objects.

The paper derives its geographical hierarchies from IMDb-style location
strings such as ``"LA, California, USA"`` (Section 5, Datasets). These helpers
mirror that construction.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

from .tree import Hierarchy, HierarchyError, Value


def from_paths(paths: Iterable[Sequence[Value]], root: Value = None) -> Hierarchy:
    """Build a hierarchy from root-first paths.

    ``from_paths([["USA", "California", "LA"], ["USA", "NY"]])`` yields a tree
    where ``LA`` is under ``California`` under ``USA``.
    """
    hierarchy = Hierarchy() if root is None else Hierarchy(root)
    for path in paths:
        hierarchy.add_path(list(path))
    return hierarchy


def from_location_strings(
    locations: Iterable[str], separator: str = ",", root: Value = None
) -> Hierarchy:
    """Build a hierarchy from most-specific-first location strings.

    Mirrors the paper's IMDb construction: ``"LA, California, USA"`` assigns
    ``LA`` as a child of ``California`` and ``California`` as a child of
    ``USA``. Whitespace around separators is stripped, empty segments dropped.
    """
    paths = []
    for location in locations:
        parts = [part.strip() for part in location.split(separator)]
        parts = [part for part in parts if part]
        if not parts:
            continue
        paths.append(list(reversed(parts)))
    return from_paths(paths, root=root)


def from_child_parent_edges(
    edges: Iterable[Tuple[Value, Value]], root: Value = None
) -> Hierarchy:
    """Build a hierarchy from ``(child, parent)`` edges.

    Edges may arrive in any order; unresolved edges are retried until a fixed
    point, and leftovers indicate a parent never connected to the root.
    """
    hierarchy = Hierarchy() if root is None else Hierarchy(root)
    pending = list(edges)
    while pending:
        made_progress = False
        deferred = []
        for child, parent in pending:
            if parent in hierarchy:
                hierarchy.add_edge(child, parent)
                made_progress = True
            else:
                deferred.append((child, parent))
        if not made_progress:
            missing = sorted({repr(parent) for _, parent in deferred})
            raise HierarchyError(
                f"edges reference parents unreachable from the root: {missing}"
            )
        pending = deferred
    return hierarchy


def from_parent_map(parent_of: Mapping[Value, Value], root: Value = None) -> Hierarchy:
    """Build a hierarchy from a ``child -> parent`` mapping."""
    return from_child_parent_edges(parent_of.items(), root=root)

"""Rooted hierarchy tree over claimed values.

The paper assumes a hierarchy tree ``H`` over the claimed values (Section 2.1),
e.g. a geographical containment hierarchy ``Earth > USA > California > LA``.
This module provides :class:`Hierarchy`, an immutable-after-freeze rooted tree
with O(1) parent lookup, cached depth, ancestor/descendant queries and the
tree distance ``d(u, v)`` used by the *AvgDistance* quality measure.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

Value = Hashable

ROOT = "__ROOT__"
"""Default label for the implicit root node ("Earth" in the paper's example).

The root carries no information; the paper assumes no source or worker ever
claims it (Section 2.1).
"""


class HierarchyError(ValueError):
    """Raised for structurally invalid hierarchy operations."""


class Hierarchy:
    """A rooted tree of values with ancestor/descendant/distance queries.

    Parameters
    ----------
    root:
        Label of the root node. The root is excluded from ``ancestors`` results
        because a claimed value equal to the root is uninformative.

    Examples
    --------
    >>> h = Hierarchy()
    >>> h.add_edge("USA", h.root)
    >>> h.add_edge("California", "USA")
    >>> h.add_edge("LA", "California")
    >>> h.is_ancestor("USA", "LA")
    True
    >>> h.distance("LA", "USA")
    2
    """

    def __init__(self, root: Value = ROOT) -> None:
        self._root = root
        self._parent: Dict[Value, Value] = {}
        self._children: Dict[Value, List[Value]] = {root: []}
        self._depth: Dict[Value, int] = {root: 0}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def root(self) -> Value:
        """The root node label."""
        return self._root

    def add_edge(self, child: Value, parent: Value) -> None:
        """Attach ``child`` under ``parent``.

        ``parent`` must already be in the tree (the root always is). Re-adding
        an identical edge is a no-op; moving a node raises
        :class:`HierarchyError` since hierarchies here are append-only.
        """
        if parent not in self._children:
            raise HierarchyError(f"parent {parent!r} is not in the hierarchy")
        if child == self._root:
            raise HierarchyError("the root cannot be a child")
        existing = self._parent.get(child)
        if existing is not None:
            if existing == parent:
                return
            raise HierarchyError(
                f"{child!r} already has parent {existing!r}; nodes cannot move"
            )
        self._parent[child] = parent
        self._children[parent].append(child)
        self._children[child] = []
        self._depth[child] = self._depth[parent] + 1

    def add_path(self, path: Sequence[Value]) -> None:
        """Add a root-to-leaf path, most general value first.

        ``add_path(["USA", "California", "LA"])`` creates/extends the chain
        ``root > USA > California > LA``. Existing prefixes are reused; a
        conflicting parent raises :class:`HierarchyError`.
        """
        parent = self._root
        for value in path:
            if value in self._parent:
                if self._parent[value] != parent:
                    raise HierarchyError(
                        f"{value!r} already attached under {self._parent[value]!r},"
                        f" conflicting with requested parent {parent!r}"
                    )
            else:
                self.add_edge(value, parent)
            parent = value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, value: Value) -> bool:
        return value in self._children

    def __len__(self) -> int:
        """Number of nodes including the root."""
        return len(self._children)

    def __iter__(self) -> Iterator[Value]:
        return iter(self._children)

    def nodes(self) -> Iterator[Value]:
        """Iterate over all nodes including the root."""
        return iter(self._children)

    def non_root_nodes(self) -> Iterator[Value]:
        """Iterate over all nodes except the root (the claimable values)."""
        return iter(self._parent)

    def parent(self, value: Value) -> Optional[Value]:
        """Parent of ``value``, or ``None`` for the root.

        Raises :class:`KeyError` for unknown values.
        """
        if value == self._root:
            return None
        return self._parent[value]

    def children(self, value: Value) -> Tuple[Value, ...]:
        """Immediate children of ``value``."""
        return tuple(self._children[value])

    def depth(self, value: Value) -> int:
        """Number of edges from the root (root has depth 0)."""
        return self._depth[value]

    @property
    def height(self) -> int:
        """Maximum depth over all nodes (paper: BirthPlaces 5, Heritages 6)."""
        return max(self._depth.values(), default=0)

    def ancestors(self, value: Value) -> List[Value]:
        """Proper ancestors of ``value``, nearest first, **excluding** the root.

        This matches the paper's convention for ``Go(v)``: the root conveys no
        information so it never counts as a (generalized) correct value.
        """
        out: List[Value] = []
        node = self._parent.get(value)
        while node is not None and node != self._root:
            out.append(node)
            node = self._parent.get(node)
        return out

    def ancestors_with_self(self, value: Value) -> List[Value]:
        """``value`` followed by its proper non-root ancestors, nearest first."""
        return [value, *self.ancestors(value)]

    def is_ancestor(self, candidate: Value, value: Value) -> bool:
        """``True`` iff ``candidate`` is a proper non-root ancestor of ``value``."""
        if candidate == self._root or candidate == value:
            return False
        node = self._parent.get(value)
        cand_depth = self._depth.get(candidate)
        if cand_depth is None:
            return False
        while node is not None and node != self._root:
            if node == candidate:
                return True
            if self._depth[node] <= cand_depth:
                return False
            node = self._parent.get(node)
        return False

    def is_descendant(self, candidate: Value, value: Value) -> bool:
        """``True`` iff ``candidate`` is a proper descendant of ``value``."""
        return self.is_ancestor(value, candidate)

    def descendants(self, value: Value) -> List[Value]:
        """All proper descendants of ``value`` in BFS order."""
        out: List[Value] = []
        queue = deque(self._children.get(value, ()))
        while queue:
            node = queue.popleft()
            out.append(node)
            queue.extend(self._children[node])
        return out

    def subtree_size(self, value: Value) -> int:
        """Number of nodes in the subtree rooted at ``value`` (inclusive)."""
        return 1 + len(self.descendants(value))

    def lowest_common_ancestor(self, u: Value, v: Value) -> Value:
        """Lowest common ancestor of ``u`` and ``v`` (may be the root)."""
        du, dv = self._node_depth(u), self._node_depth(v)
        while du > dv:
            u = self._strict_parent(u)
            du -= 1
        while dv > du:
            v = self._strict_parent(v)
            dv -= 1
        while u != v:
            u = self._strict_parent(u)
            v = self._strict_parent(v)
        return u

    def distance(self, u: Value, v: Value) -> int:
        """Number of edges between ``u`` and ``v`` (AvgDistance metric, Sec 5)."""
        if u == v:
            return 0
        lca = self.lowest_common_ancestor(u, v)
        return self._node_depth(u) + self._node_depth(v) - 2 * self._node_depth(lca)

    def path_to_root(self, value: Value) -> List[Value]:
        """Path from ``value`` up to (and including) the root."""
        out = [value]
        node = value
        while node != self._root:
            node = self._strict_parent(node)
            out.append(node)
        return out

    def leaves(self) -> List[Value]:
        """All nodes without children."""
        return [node for node, kids in self._children.items() if not kids]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`HierarchyError` on failure.

        Verifies that every node is reachable from the root (no orphans or
        cycles, which the append-only construction should already prevent).
        """
        seen: Set[Value] = set()
        queue = deque([self._root])
        while queue:
            node = queue.popleft()
            if node in seen:
                raise HierarchyError(f"cycle detected at {node!r}")
            seen.add(node)
            queue.extend(self._children[node])
        if len(seen) != len(self._children):
            orphans = set(self._children) - seen
            raise HierarchyError(f"unreachable nodes: {sorted(map(repr, orphans))}")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _node_depth(self, value: Value) -> int:
        try:
            return self._depth[value]
        except KeyError:
            raise KeyError(f"{value!r} is not in the hierarchy") from None

    def _strict_parent(self, value: Value) -> Value:
        if value == self._root:
            raise HierarchyError("root has no parent")
        return self._parent[value]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Hierarchy(nodes={len(self)}, height={self.height}, "
            f"root={self._root!r})"
        )


def generalization_chain(hierarchy: Hierarchy, value: Value) -> List[Value]:
    """Values that are acceptable generalizations of ``value``: itself + ancestors."""
    return hierarchy.ancestors_with_self(value)

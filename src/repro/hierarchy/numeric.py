"""Implicit hierarchies for numerical data (paper Section 3.2, extension).

The paper treats significant digits as an implicit hierarchy: ``va`` is an
ancestor of ``vd`` when ``va`` can be obtained from ``vd`` by rounding off
trailing digits (e.g. ``605.196 -> 605.2 -> 605``). This lets the categorical
TDH machinery run unchanged over numeric claims and makes the estimator robust
to outliers, because the truth is *selected* from claimed values rather than
averaged.

The chains produced here round *iteratively* (each level rounds the previous
level), so a value's parent is a function of that value alone and merged
chains always agree — a requirement for the tree to be well-formed.
"""

from __future__ import annotations

import math
from decimal import Decimal, InvalidOperation
from typing import Dict, Iterable, List, Tuple

from .tree import Hierarchy


def significant_digits(value: float | str) -> int:
    """Number of significant digits in the decimal rendering of ``value``.

    Strings preserve trailing zeros (``"605.20"`` has 5); floats are rendered
    via ``str`` so ``605.2`` has 4.
    """
    try:
        dec = Decimal(str(value))
    except InvalidOperation as exc:
        raise ValueError(f"not a decimal value: {value!r}") from exc
    if isinstance(value, float):
        # Floats carry no trailing-zero information ("94550.0" could be 4 or
        # 5 significant digits); normalise to the shortest form.
        dec = dec.normalize()
    digits = dec.as_tuple().digits
    i = 0
    while i < len(digits) - 1 and digits[i] == 0:
        i += 1
    return len(digits) - i


def round_to_significant(value: float, ndigits: int) -> float:
    """Round ``value`` to ``ndigits`` significant digits.

    ``round_to_significant(605.196, 4) == 605.2``. Zero and non-finite values
    are returned unchanged.
    """
    if ndigits < 1:
        raise ValueError("ndigits must be >= 1")
    if value == 0 or not math.isfinite(value):
        return value
    # Decimal-string based rounding avoids the binary-float dirt that
    # multiply-round-divide schemes produce at powers of ten.
    return float(format(value, f".{ndigits}g"))


def rounding_chain(
    value: float, max_digits: int = 6, min_digits: int = 1
) -> List[float]:
    """Successive round-offs of ``value``, most specific first.

    The head is ``value`` canonicalised to ``max_digits`` significant digits;
    each subsequent entry rounds the *previous* entry one digit coarser, with
    no-op roundings collapsed. The final entry has ``min_digits`` precision.
    """
    if max_digits < min_digits:
        raise ValueError("max_digits must be >= min_digits")
    current = round_to_significant(value, max_digits)
    chain = [current]
    for ndigits in range(max_digits - 1, min_digits - 1, -1):
        current = round_to_significant(current, ndigits)
        if current != chain[-1]:
            chain.append(current)
    return chain


def is_rounding_ancestor(
    ancestor: float, descendant: float, max_digits: int = 6
) -> bool:
    """``True`` iff ``ancestor`` appears above ``descendant`` in its chain.

    This is exactly the tree relation used by :func:`build_numeric_hierarchy`,
    i.e. the paper's "``va`` can be obtained by rounding off ``vd``" rule.
    """
    chain = rounding_chain(descendant, max_digits=max_digits)
    return ancestor in chain[1:]


def build_numeric_hierarchy(
    claims: Iterable[float], max_digits: int = 6
) -> Tuple[Hierarchy, Dict[float, float]]:
    """Build the implicit rounding hierarchy over distinct numeric claims.

    Each distinct claim contributes its rounding chain as a root-first path;
    chains sharing coarse round-offs merge. Returns ``(hierarchy, canonical)``
    where ``canonical`` maps each input claim to its node in the tree (inputs
    are canonicalised to ``max_digits`` significant digits, so ``605.1961``
    and ``605.19612`` coincide at ``max_digits=6``).
    """
    hierarchy = Hierarchy()
    canonical: Dict[float, float] = {}
    for raw in claims:
        value = float(raw)
        if value in canonical:
            continue
        chain = rounding_chain(value, max_digits=max_digits)
        hierarchy.add_path(list(reversed(chain)))
        canonical[value] = chain[0]
    return hierarchy, canonical

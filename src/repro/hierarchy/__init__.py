"""Hierarchy substrate: value trees, builders and numeric implicit hierarchies."""

from .tree import Hierarchy, HierarchyError, ROOT, generalization_chain
from .builders import (
    from_child_parent_edges,
    from_location_strings,
    from_parent_map,
    from_paths,
)
from .numeric import (
    build_numeric_hierarchy,
    is_rounding_ancestor,
    round_to_significant,
    rounding_chain,
    significant_digits,
)

__all__ = [
    "Hierarchy",
    "HierarchyError",
    "ROOT",
    "generalization_chain",
    "from_paths",
    "from_location_strings",
    "from_child_parent_edges",
    "from_parent_map",
    "build_numeric_hierarchy",
    "rounding_chain",
    "round_to_significant",
    "significant_digits",
    "is_rounding_ancestor",
]

"""I/O: CSV and JSON (de)serialisation in the paper's published format."""

from .formats import (
    FormatError,
    dataset_from_json,
    dataset_to_json,
    load_dataset_csv,
    load_dataset_file,
    read_answers_csv,
    read_gold_csv,
    read_hierarchy_csv,
    read_records_csv,
    save_dataset,
    write_answers_csv,
    write_hierarchy_csv,
    write_records_csv,
    write_truths_csv,
)

__all__ = [
    "FormatError",
    "read_records_csv",
    "read_answers_csv",
    "read_gold_csv",
    "read_hierarchy_csv",
    "write_records_csv",
    "write_answers_csv",
    "write_hierarchy_csv",
    "write_truths_csv",
    "dataset_to_json",
    "dataset_from_json",
    "save_dataset",
    "load_dataset_file",
    "load_dataset_csv",
]

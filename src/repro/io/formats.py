"""Dataset and hierarchy (de)serialisation.

The paper's published datasets (kdd.snu.ac.kr/home/datasets/tdh.php) ship as
flat claim triples plus a hierarchy file. This module reads and writes that
shape so users who obtain the original crawls — or export their own — can run
the library on them directly:

* **records CSV** — header ``object,source,value``; one claim per row;
* **answers CSV** — header ``object,worker,value``;
* **gold CSV** — header ``object,value``;
* **hierarchy CSV** — header ``child,parent``; the root may be named
  explicitly or inferred (a parent that never appears as a child);
* **JSON bundle** — a single self-contained document with all of the above.

All functions accept paths or open file objects.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from ..data.model import Answer, Record, TruthDiscoveryDataset
from ..hierarchy.builders import from_child_parent_edges
from ..hierarchy.tree import Hierarchy, ROOT

PathOrFile = Union[str, Path, IO[str]]


class FormatError(ValueError):
    """Raised for malformed input files."""


def _open_read(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "r", encoding="utf-8", newline="")
    return _NonClosing(target)


def _open_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8", newline="")
    return _NonClosing(target)


class _NonClosing:
    """Context manager that leaves caller-owned file objects open."""

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle

    def __enter__(self) -> IO[str]:
        return self._handle

    def __exit__(self, *exc) -> None:
        return None


def _check_header(row: List[str], expected: Tuple[str, ...], kind: str) -> None:
    normalized = tuple(cell.strip().lower() for cell in row)
    if normalized != expected:
        raise FormatError(
            f"{kind} file must start with header {','.join(expected)!r};"
            f" got {','.join(row)!r}"
        )


# ---------------------------------------------------------------------------
# CSV readers
# ---------------------------------------------------------------------------
def read_records_csv(target: PathOrFile) -> List[Record]:
    """Read claim triples from an ``object,source,value`` CSV."""
    out: List[Record] = []
    with _open_read(target) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise FormatError("records file is empty")
        _check_header(header, ("object", "source", "value"), "records")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise FormatError(f"records line {line_no}: expected 3 columns")
            out.append(Record(row[0], row[1], row[2]))
    return out


def read_answers_csv(target: PathOrFile) -> List[Answer]:
    """Read worker answers from an ``object,worker,value`` CSV."""
    out: List[Answer] = []
    with _open_read(target) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise FormatError("answers file is empty")
        _check_header(header, ("object", "worker", "value"), "answers")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise FormatError(f"answers line {line_no}: expected 3 columns")
            out.append(Answer(row[0], row[1], row[2]))
    return out


def read_gold_csv(target: PathOrFile) -> Dict[str, str]:
    """Read the gold standard from an ``object,value`` CSV."""
    out: Dict[str, str] = {}
    with _open_read(target) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise FormatError("gold file is empty")
        _check_header(header, ("object", "value"), "gold")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise FormatError(f"gold line {line_no}: expected 2 columns")
            out[row[0]] = row[1]
    return out


def read_hierarchy_csv(target: PathOrFile, root: Optional[str] = None) -> Hierarchy:
    """Read a ``child,parent`` edge list into a :class:`Hierarchy`.

    If ``root`` is not given, it is inferred: the unique parent that never
    appears as a child. Multiple root candidates raise :class:`FormatError`.
    """
    edges: List[Tuple[str, str]] = []
    with _open_read(target) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise FormatError("hierarchy file is empty")
        _check_header(header, ("child", "parent"), "hierarchy")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise FormatError(f"hierarchy line {line_no}: expected 2 columns")
            edges.append((row[0], row[1]))
    if not edges:
        raise FormatError("hierarchy file has no edges")

    if root is None:
        children = {child for child, _ in edges}
        parents = {parent for _, parent in edges}
        candidates = parents - children
        if len(candidates) != 1:
            raise FormatError(
                f"cannot infer the root: candidates {sorted(candidates)};"
                " pass root= explicitly"
            )
        root = candidates.pop()
    return from_child_parent_edges(edges, root=root)


# ---------------------------------------------------------------------------
# CSV writers
# ---------------------------------------------------------------------------
def write_records_csv(dataset: TruthDiscoveryDataset, target: PathOrFile) -> None:
    """Write the dataset's records as an ``object,source,value`` CSV."""
    with _open_write(target) as handle:
        writer = csv.writer(handle)
        writer.writerow(("object", "source", "value"))
        for record in dataset.iter_records():
            writer.writerow((record.object, record.source, record.value))


def write_answers_csv(dataset: TruthDiscoveryDataset, target: PathOrFile) -> None:
    """Write the dataset's answers as an ``object,worker,value`` CSV."""
    with _open_write(target) as handle:
        writer = csv.writer(handle)
        writer.writerow(("object", "worker", "value"))
        for answer in dataset.iter_answers():
            writer.writerow((answer.object, answer.worker, answer.value))


def write_hierarchy_csv(hierarchy: Hierarchy, target: PathOrFile) -> None:
    """Write the hierarchy as a ``child,parent`` edge list."""
    with _open_write(target) as handle:
        writer = csv.writer(handle)
        writer.writerow(("child", "parent"))
        for node in hierarchy.non_root_nodes():
            writer.writerow((node, hierarchy.parent(node)))


def write_truths_csv(truths: Dict, target: PathOrFile) -> None:
    """Write inferred truths as an ``object,value`` CSV."""
    with _open_write(target) as handle:
        writer = csv.writer(handle)
        writer.writerow(("object", "value"))
        for obj, value in truths.items():
            writer.writerow((obj, value))


# ---------------------------------------------------------------------------
# JSON bundle
# ---------------------------------------------------------------------------
def dataset_to_json(dataset: TruthDiscoveryDataset) -> str:
    """Serialise a dataset (hierarchy + records + answers + gold) to JSON."""
    hierarchy = dataset.hierarchy
    payload = {
        "name": dataset.name,
        "root": hierarchy.root,
        "edges": [
            [node, hierarchy.parent(node)] for node in hierarchy.non_root_nodes()
        ],
        "records": [
            [r.object, r.source, r.value] for r in dataset.iter_records()
        ],
        "answers": [
            [a.object, a.worker, a.value] for a in dataset.iter_answers()
        ],
        "gold": {str(k): v for k, v in dataset.gold.items()},
    }
    return json.dumps(payload)


def dataset_from_json(document: str) -> TruthDiscoveryDataset:
    """Rebuild a dataset from :func:`dataset_to_json` output."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON: {exc}") from exc
    for key in ("root", "edges", "records"):
        if key not in payload:
            raise FormatError(f"JSON bundle missing {key!r}")
    hierarchy = from_child_parent_edges(
        [tuple(edge) for edge in payload["edges"]], root=payload["root"]
    )
    dataset = TruthDiscoveryDataset(
        hierarchy,
        (Record(*row) for row in payload["records"]),
        gold=payload.get("gold", {}),
        name=payload.get("name", ""),
    )
    for row in payload.get("answers", ()):
        dataset.add_answer(Answer(*row))
    return dataset


def save_dataset(dataset: TruthDiscoveryDataset, path: Union[str, Path]) -> None:
    """Write a dataset to a ``.json`` bundle on disk."""
    Path(path).write_text(dataset_to_json(dataset), encoding="utf-8")


def load_dataset_file(path: Union[str, Path]) -> TruthDiscoveryDataset:
    """Read a dataset from a ``.json`` bundle on disk."""
    return dataset_from_json(Path(path).read_text(encoding="utf-8"))


def load_dataset_csv(
    records: PathOrFile,
    hierarchy: PathOrFile,
    answers: Optional[PathOrFile] = None,
    gold: Optional[PathOrFile] = None,
    root: Optional[str] = None,
    name: str = "",
) -> TruthDiscoveryDataset:
    """Assemble a dataset from the paper-format CSV files."""
    tree = read_hierarchy_csv(hierarchy, root=root)
    dataset = TruthDiscoveryDataset(
        tree, read_records_csv(records), name=name,
        gold=read_gold_csv(gold) if gold is not None else None,
    )
    if answers is not None:
        for answer in read_answers_csv(answers):
            dataset.add_answer(answer)
    return dataset

"""Object-range sharding + parallel execution for the columnar engine.

The columnar encoding (:mod:`repro.data.columnar`) already stores every
per-object quantity in contiguous CSR runs — object ``oid`` owns slots
``value_offsets[oid]:value_offsets[oid+1]``, claims
``claim_offsets[oid]:claim_offsets[oid+1]`` and (since claims are grouped by
object) a contiguous run of the claim x candidate pair expansion. A
*shard* is therefore nothing more exotic than a contiguous object range
``[obj_lo, obj_hi)`` viewed in local coordinates: :class:`ColumnarShard`
rebases the slot/claim/pair indices to the shard and shares the decode
tables (claimant ids, value ids, the hierarchy's value-level CSR and Euler
labels) globally, so every per-shard array is a zero-copy slice except for
the rebased index arrays.

**Merge contract.** The vectorized E/M steps partition cleanly along the
object axis:

* every per-pair / per-claim / per-slot / per-object quantity of an EM
  iteration (likelihoods, responsibilities ``f``/``g``, posteriors, losses)
  depends only on the claims of *one* object, so a shard computes exactly
  the slice the unsharded path would — same inputs, same operations, same
  accumulation order within each bin — and the executor's job is only to
  concatenate the per-shard outputs back in shard order (which *is* object
  order). The concatenated arrays are **bitwise-equal** to the unsharded
  path's, not merely close.
* cross-object reductions (per-source / per-worker trust and confusion
  counts, global deltas) are *not* reduced per shard: the partial sums
  would re-associate floating-point addition across the shard boundary.
  Instead the shards return their per-claim (or per-pair) contributions,
  and the single global ``np.bincount`` over claimant / confusion-cell ids
  runs on the concatenated arrays — O(claims), a sliver of the O(pairs)
  work that was parallelized — reproducing the unsharded accumulation
  order exactly. ``max``-style convergence deltas are the one exception:
  ``max`` is associative, so per-shard maxima are folded directly.

:class:`ParallelExecutor` runs shard kernels under three backends:

* ``"serial"`` — a plain loop (also what ``n_jobs=1`` resolves to); useful
  to exercise the sharded code path deterministically in tests;
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; the
  kernels spend their time in NumPy ufuncs / ``bincount`` / ``reduceat``
  over large arrays, which release the GIL, so threads scale on multicore
  machines with zero serialization cost (the default);
* ``"process"`` — a ``fork``-based :class:`multiprocessing.Pool` for large
  K: the shards and per-shard constants are inherited copy-on-write at
  fork time, per-iteration state arrays travel through
  :mod:`multiprocessing.shared_memory` blocks (never pickled), and only
  the per-shard results are serialized back. Kernels must be module-level
  functions for this backend. Falls back to threads (with a warning) where
  ``fork`` is unavailable.

Because a shard kernel must be importable for the process backend, every
algorithm keeps its kernels at module level (see e.g.
``repro.inference.tdh._tdh_estep_kernel``) and passes loop state through
the ``state`` dict rather than closures.
"""

from __future__ import annotations

import importlib
import logging
import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .columnar import ColumnarClaims, SegmentOps

#: Arrays at or above this many bytes travel through shared memory in the
#: process backend; smaller ones ride the (cheaper) pickle of the task.
SHM_MIN_BYTES = 1 << 15

#: Below this many claims the per-iteration kernel work is smaller than the
#: pool dispatch overhead (ROADMAP: 0.05-0.42x on tiny shards), so
#: ``backend="auto"`` picks serial.
AUTO_MIN_PARALLEL_CLAIMS = 8192

_log = logging.getLogger(__name__)
#: One-shot flag so the auto->serial downgrade is logged once per process,
#: not once per EM fit inside a crowd-round loop.
_auto_downgrade_logged = False

Kernel = Callable[["ColumnarShard", Dict[str, Any], Dict[str, Any]], Any]


def resolve_backend(backend: str, n_claims: Optional[int] = None) -> str:
    """Resolve the ``"auto"`` backend knob to a concrete backend.

    Non-``"auto"`` values pass through untouched. ``"auto"`` picks
    ``"serial"`` — logging the downgrade once — when the host has a single
    core (``os.cpu_count() <= 1``: pools only add dispatch overhead there)
    or when ``n_claims`` is below :data:`AUTO_MIN_PARALLEL_CLAIMS`;
    otherwise it picks ``"thread"``, the GIL-releasing default.
    """
    global _auto_downgrade_logged
    if backend != "auto":
        return backend
    cores = os.cpu_count() or 1
    too_small = n_claims is not None and n_claims < AUTO_MIN_PARALLEL_CLAIMS
    if cores <= 1 or too_small:
        if not _auto_downgrade_logged:
            reason = (
                f"os.cpu_count()={cores}"
                if cores <= 1
                else f"{n_claims} claims < {AUTO_MIN_PARALLEL_CLAIMS}"
            )
            _log.info(
                "parallel_backend='auto' downgraded to serial (%s)", reason
            )
            _auto_downgrade_logged = True
        return "serial"
    return "thread"


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Worker count for an ``n_jobs`` knob, joblib-style.

    ``None`` / ``0`` / ``1`` mean serial; positive counts are taken as-is;
    negative counts wrap from the machine size (``-1`` = all cores, ``-2`` =
    all but one, ...), floored at 1.
    """
    if n_jobs is None:
        return 1
    n = int(n_jobs)
    if n == 0:
        return 1
    if n < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n)
    return n


class ColumnarShard(SegmentOps):
    """A contiguous object range of a :class:`ColumnarClaims` in local ids.

    Slot / claim / pair indices are rebased so ``0`` is the shard's first
    slot / claim; object ids are rebased so ``0`` is ``obj_lo``. Claimant
    ids, value ids and the confusion-cell ids stay **global** — they are the
    merge keys of the cross-shard reductions. The hierarchy's slot-level
    ancestor CSR is sliced per shard (:attr:`slot_anc_offsets` /
    :attr:`slot_anc_slots`, local slots); the value-level CSR, depths and
    Euler intervals are shared unchanged via :attr:`hierarchy`, because they
    are keyed by global value ids.
    """

    def __init__(self, col: ColumnarClaims, obj_lo: int, obj_hi: int) -> None:
        self.col = col
        self.obj_lo = int(obj_lo)
        self.obj_hi = int(obj_hi)
        self.slot_lo = int(col.value_offsets[obj_lo])
        self.slot_hi = int(col.value_offsets[obj_hi])
        self.claim_lo = int(col.claim_offsets[obj_lo])
        self.claim_hi = int(col.claim_offsets[obj_hi])

        self.objects = col.objects[obj_lo:obj_hi]
        self.value_offsets = col.value_offsets[obj_lo : obj_hi + 1] - self.slot_lo
        self.claim_offsets = col.claim_offsets[obj_lo : obj_hi + 1] - self.claim_lo
        self.sizes = col.sizes[obj_lo:obj_hi]
        self.slot_obj = col.slot_obj[self.slot_lo : self.slot_hi] - obj_lo
        self.slot_vid = col.slot_vid[self.slot_lo : self.slot_hi]  # global vids

        sl = slice(self.claim_lo, self.claim_hi)
        self.claim_obj = col.claim_obj[sl] - obj_lo
        self.claim_claimant = col.claim_claimant[sl]  # global claimant ids
        self.claim_slot = col.claim_slot[sl] - self.slot_lo
        self.claim_is_answer = col.claim_is_answer[sl]
        self._pairs_done = False

    @property
    def n_claims(self) -> int:
        return self.claim_hi - self.claim_lo

    # ------------------------------------------------------------------
    # lazy pair-expansion slice (CRH-style fits never pay for it)
    # ------------------------------------------------------------------
    def ensure_pairs(self) -> None:
        """Materialize the shard's slice of ``col.pairs`` (idempotent).

        Called by the sharded fits *before* a process-backend session forks,
        so children inherit the arrays instead of each rebuilding them.
        """
        if self._pairs_done:
            return
        pairs = self.col.pairs
        self.pair_lo = int(np.searchsorted(pairs.pair_claim, self.claim_lo, "left"))
        self.pair_hi = int(np.searchsorted(pairs.pair_claim, self.claim_hi, "left"))
        pl = slice(self.pair_lo, self.pair_hi)
        self.pair_claim = pairs.pair_claim[pl] - self.claim_lo
        self.pair_slot = pairs.pair_slot[pl] - self.slot_lo
        self.pair_size = pairs.pair_size[pl]
        self.pair_is_claimed = pairs.pair_is_claimed[pl]
        self.cell_index = pairs.cell_index[pl]  # global confusion-cell ids
        self.total_index = pairs.total_index[pl]
        self._pairs_done = True

    @property
    def n_pairs(self) -> int:
        self.ensure_pairs()
        return self.pair_hi - self.pair_lo

    # ------------------------------------------------------------------
    # hierarchy views
    # ------------------------------------------------------------------
    @property
    def hierarchy(self):
        """The (global) encoded hierarchy — value-level arrays and Euler
        intervals are keyed by global value ids, hence shared, not sliced."""
        return self.col.hierarchy

    @property
    def slot_anc_offsets(self) -> np.ndarray:
        """``Go(v)`` CSR offsets for the shard's slots, rebased to 0."""
        base = self.col._slot_anc_offsets[self.slot_lo]
        return self.col._slot_anc_offsets[self.slot_lo : self.slot_hi + 1] - base

    @property
    def slot_anc_slots(self) -> np.ndarray:
        """``Go(v)`` candidate-ancestor entries as *local* slots."""
        lo = self.col._slot_anc_offsets[self.slot_lo]
        hi = self.col._slot_anc_offsets[self.slot_hi]
        return self.col._slot_anc_slots[lo:hi] - self.slot_lo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarShard(objects=[{self.obj_lo},{self.obj_hi}),"
            f" slots=[{self.slot_lo},{self.slot_hi}),"
            f" claims=[{self.claim_lo},{self.claim_hi}))"
        )


class ColumnarShards:
    """A partition of an encoding into ``<= k`` contiguous object ranges.

    Ranges are cut at object boundaries nearest to equal *claim* counts
    (claims approximate the pair workload closely), so shard kernels get
    balanced work even when candidate-set sizes are skewed. Tiny datasets
    may yield fewer than ``k`` non-empty ranges — never empty ones.

    See the module docstring for the merge contract; :meth:`concat` is its
    concatenation half, the global ``np.bincount`` over claimant / cell ids
    (run by the caller on concatenated per-claim arrays) the reduction half.
    """

    def __init__(self, col: ColumnarClaims, k: int) -> None:
        self.col = col
        n_obj = col.n_objects
        k = max(1, min(int(k), n_obj)) if n_obj else 1
        if k <= 1 or n_obj == 0:
            cuts: List[int] = []
        else:
            targets = np.arange(1, k) * col.n_claims // k
            bounds = np.searchsorted(col.claim_offsets, targets, side="left")
            bounds = np.clip(bounds, 1, n_obj - 1)
            cuts = sorted(set(int(b) for b in bounds))
        edges = [0, *cuts, n_obj]
        self.shards: List[ColumnarShard] = [
            ColumnarShard(col, lo, hi) for lo, hi in zip(edges[:-1], edges[1:])
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[ColumnarShard]:
        return iter(self.shards)

    def __getitem__(self, i: int) -> ColumnarShard:
        return self.shards[i]

    def ensure_pairs(self) -> None:
        """Materialize every shard's pair slice (see shard.ensure_pairs)."""
        for shard in self.shards:
            shard.ensure_pairs()

    # ------------------------------------------------------------------
    # slicing helpers for per-fit constants
    # ------------------------------------------------------------------
    def slice_pairs(self, arr: np.ndarray) -> List[np.ndarray]:
        """A global per-pair array -> one (view) slice per shard."""
        self.ensure_pairs()
        return [arr[s.pair_lo : s.pair_hi] for s in self.shards]

    def slice_claims(self, arr: np.ndarray) -> List[np.ndarray]:
        """A global per-claim array -> one (view) slice per shard."""
        return [arr[s.claim_lo : s.claim_hi] for s in self.shards]

    def slice_slots(self, arr: np.ndarray) -> List[np.ndarray]:
        """A global per-slot array -> one (view) slice per shard."""
        return [arr[s.slot_lo : s.slot_hi] for s in self.shards]

    @staticmethod
    def concat(parts: Sequence[np.ndarray]) -> np.ndarray:
        """Merge per-shard outputs back into the global (object-order) array."""
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)


def parallel_plan(
    col: ColumnarClaims,
    n_jobs: Optional[int] = 1,
    shards: Optional[int] = None,
    backend: str = "thread",
) -> Tuple[ColumnarShards, "ParallelExecutor"]:
    """The ``(ColumnarShards, ParallelExecutor)`` pair behind an ``n_jobs``
    knob: ``shards`` overrides the shard count (default: one per worker),
    the worker count follows :func:`resolve_jobs`. ``shards=K, n_jobs=1``
    runs the sharded code path serially — the deterministic configuration
    the bitwise-parity property tests pin down. ``backend="auto"`` resolves
    via :func:`resolve_backend` against the encoding's claim count.
    """
    jobs = resolve_jobs(n_jobs)
    k = int(shards) if shards is not None else jobs
    backend = resolve_backend(backend, col.n_claims)
    return col.shards(k), ParallelExecutor(jobs, backend=backend)


# ---------------------------------------------------------------------------
# process-backend plumbing (fork: payload inherited, state via shared memory)
# ---------------------------------------------------------------------------
#: Set in the parent immediately before forking the pool; children inherit
#: it copy-on-write and read it in :func:`_process_entry`.
_FORK_PAYLOAD: Optional[Tuple[Sequence[ColumnarShard], Sequence[Dict[str, Any]]]] = None


def _process_entry(task):
    """Pool task: run one shard's kernel against shm-backed state."""
    from multiprocessing import shared_memory

    module, qualname, idx, small_state, shm_specs = task
    kernel = importlib.import_module(module)
    for name in qualname.split("."):
        kernel = getattr(kernel, name)
    shards, consts = _FORK_PAYLOAD  # inherited at fork time
    state = dict(small_state)
    blocks = []
    try:
        for key, shm_name, shape, dtype in shm_specs:
            shm = shared_memory.SharedMemory(name=shm_name)
            blocks.append(shm)
            state[key] = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        result = kernel(shards[idx], consts[idx], state)
        # Results must not alias the shared blocks once they are closed;
        # kernels return fresh arrays, but copy defensively if one leaks a
        # view (the copy is O(result), never O(state)).
        if isinstance(result, tuple):
            result = tuple(_unshared(r, blocks) for r in result)
        else:
            result = _unshared(result, blocks)
        return result
    finally:
        for shm in blocks:
            shm.close()


def _unshared(value, blocks):
    if isinstance(value, np.ndarray) and any(
        np.shares_memory(value, np.ndarray((b.size,), dtype=np.uint8, buffer=b.buf))
        for b in blocks
    ):
        return value.copy()
    return value


class _SerialSession:
    def __init__(self, shards, consts):
        self.shards = shards
        self.consts = consts

    def map(self, kernel: Kernel, state: Optional[Dict[str, Any]] = None) -> List[Any]:
        state = state or {}
        return [kernel(s, c, state) for s, c in zip(self.shards, self.consts)]

    def close(self) -> None:
        pass


class _ThreadSession(_SerialSession):
    def __init__(self, shards, consts, n_jobs):
        super().__init__(shards, consts)
        self.pool = ThreadPoolExecutor(max_workers=n_jobs)

    def map(self, kernel: Kernel, state: Optional[Dict[str, Any]] = None) -> List[Any]:
        state = state or {}
        futures = [
            self.pool.submit(kernel, s, c, state)
            for s, c in zip(self.shards, self.consts)
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        self.pool.shutdown(wait=True)


class _ProcessSession:
    def __init__(self, shards, consts, n_jobs):
        import multiprocessing

        global _FORK_PAYLOAD
        ctx = multiprocessing.get_context("fork")
        _FORK_PAYLOAD = (list(shards), list(consts))
        try:
            self.pool = ctx.Pool(processes=min(n_jobs, max(len(shards), 1)))
        finally:
            _FORK_PAYLOAD = None
        self.n_shards = len(shards)

    def map(self, kernel: Kernel, state: Optional[Dict[str, Any]] = None) -> List[Any]:
        from multiprocessing import shared_memory

        state = state or {}
        small: Dict[str, Any] = {}
        shm_specs = []
        blocks = []
        try:
            for key, value in state.items():
                arr = value if isinstance(value, np.ndarray) else None
                if arr is not None and arr.nbytes >= SHM_MIN_BYTES:
                    arr = np.ascontiguousarray(arr)
                    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
                    blocks.append(shm)
                    np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
                    shm_specs.append((key, shm.name, arr.shape, str(arr.dtype)))
                else:
                    small[key] = value
            tasks = [
                (kernel.__module__, kernel.__qualname__, i, small, shm_specs)
                for i in range(self.n_shards)
            ]
            return self.pool.map(_process_entry, tasks)
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()

    def close(self) -> None:
        self.pool.close()
        self.pool.join()


class ParallelExecutor:
    """Runs shard kernels under a serial / thread / process backend.

    Usage (one *session* per fit, one ``map`` per EM iteration)::

        shards, executor = parallel_plan(col, n_jobs=4)
        with executor.session(shards, consts_per_shard) as sess:
            for _ in range(max_iter):
                parts = sess.map(kernel, {"mu": mu, "trust": trust})
                ...  # concatenate parts, run the global reductions

    ``n_jobs <= 1`` always yields the serial backend. The process backend
    requires the ``fork`` start method (children must inherit the shard
    arrays); elsewhere it degrades to threads with a warning. ``"auto"``
    resolves via :func:`resolve_backend` (core count only — use
    :func:`parallel_plan` to also weigh the workload size).
    """

    BACKENDS = ("serial", "thread", "process")

    def __init__(self, n_jobs: int = 1, backend: str = "thread") -> None:
        if backend == "auto":
            backend = resolve_backend(backend)
        if backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}; got {backend!r}"
            )
        self.n_jobs = resolve_jobs(n_jobs)
        if self.n_jobs <= 1:
            backend = "serial"
        elif backend == "process":
            import multiprocessing

            if "fork" not in multiprocessing.get_all_start_methods():
                warnings.warn(
                    "process backend needs the 'fork' start method; falling"
                    " back to threads",
                    RuntimeWarning,
                    stacklevel=2,
                )
                backend = "thread"
        self.backend = backend

    def session(
        self,
        shards: ColumnarShards,
        consts: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> "_ExecutorSession":
        consts = list(consts) if consts is not None else [{} for _ in shards]
        if len(consts) != len(shards):
            raise ValueError(
                f"got {len(consts)} consts dicts for {len(shards)} shards"
            )
        if self.backend == "thread" and len(shards) > 1:
            inner = _ThreadSession(list(shards), consts, self.n_jobs)
        elif self.backend == "process" and len(shards) > 1:
            inner = _ProcessSession(list(shards), consts, self.n_jobs)
        else:
            inner = _SerialSession(list(shards), consts)
        return _ExecutorSession(inner)


class _ExecutorSession:
    """Context-manager wrapper so fits cannot leak pools on early returns."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def map(self, kernel: Kernel, state: Optional[Dict[str, Any]] = None) -> List[Any]:
        return self._inner.map(kernel, state)

    def __enter__(self) -> "_ExecutorSession":
        return self

    def __exit__(self, *exc) -> None:
        self._inner.close()

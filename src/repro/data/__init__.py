"""Data model: records, answers and truth-discovery datasets."""

from .columnar import (
    AUTO_MIN_CLAIMS,
    ColumnarClaims,
    ColumnarHierarchy,
    PairExpansion,
    StaleEncodingError,
    resolve_engine,
)
from .model import (
    Answer,
    DatasetError,
    ObjectContext,
    Record,
    TruthDiscoveryDataset,
)
from .sharding import (
    ColumnarShard,
    ColumnarShards,
    ParallelExecutor,
    parallel_plan,
    resolve_jobs,
)

__all__ = [
    "Record",
    "Answer",
    "TruthDiscoveryDataset",
    "ObjectContext",
    "DatasetError",
    "ColumnarClaims",
    "ColumnarHierarchy",
    "PairExpansion",
    "StaleEncodingError",
    "resolve_engine",
    "AUTO_MIN_CLAIMS",
    "ColumnarShard",
    "ColumnarShards",
    "ParallelExecutor",
    "parallel_plan",
    "resolve_jobs",
]

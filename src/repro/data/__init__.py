"""Data model: records, answers and truth-discovery datasets."""

from .model import (
    Answer,
    DatasetError,
    ObjectContext,
    Record,
    TruthDiscoveryDataset,
)

__all__ = [
    "Record",
    "Answer",
    "TruthDiscoveryDataset",
    "ObjectContext",
    "DatasetError",
]

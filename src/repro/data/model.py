"""Core data model: records, answers and the truth-discovery dataset.

Terminology follows the paper (Section 2.1):

* a **record** ``(o, s, v)`` is a claim by web *source* ``s`` that object
  ``o`` has value ``v``;
* an **answer** ``(o, w, v)`` is the same, from a crowd *worker* ``w``;
* ``Vo`` is the candidate value set of ``o`` (values claimed by sources);
* ``So`` / ``Wo`` are the sources / workers that claimed about ``o``;
* ``Go(v)`` / ``Do(v)`` are ``v``'s ancestors / descendants *within* ``Vo``
  (root excluded);
* ``OH`` is the set of objects whose candidate set contains at least one
  ancestor-descendant pair — for the rest, the degenerate likelihoods in
  Eq. (2) and (4) apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..hierarchy.tree import Hierarchy, Value

ObjectId = Hashable
SourceId = Hashable
WorkerId = Hashable


@dataclass(frozen=True)
class Record:
    """A claim ``(o, s, v)`` from a web source."""

    object: ObjectId
    source: SourceId
    value: Value


@dataclass(frozen=True)
class Answer:
    """A claim ``(o, w, v)`` from a crowd worker."""

    object: ObjectId
    worker: WorkerId
    value: Value


class DatasetError(ValueError):
    """Raised for structurally invalid datasets or claims."""


@dataclass
class ObjectContext:
    """Cached per-object candidate structure used by the inference algorithms.

    Attributes
    ----------
    values:
        The candidate values ``Vo`` in deterministic (insertion) order.
    index:
        ``value -> position`` in :attr:`values`.
    ancestor_sets:
        ``ancestor_sets[i]`` lists positions of candidates in ``Go(values[i])``
        — ancestors of candidate ``i`` present in ``Vo`` (root excluded).
    descendant_sets:
        ``descendant_sets[i]`` lists positions in ``Do(values[i])``.
    has_hierarchy:
        ``True`` iff the object belongs to ``OH`` (some candidate pair is in
        an ancestor-descendant relationship).
    """

    values: List[Value]
    index: Dict[Value, int]
    ancestor_sets: List[List[int]]
    descendant_sets: List[List[int]]
    has_hierarchy: bool

    @property
    def size(self) -> int:
        """``|Vo|``."""
        return len(self.values)


class TruthDiscoveryDataset:
    """A hierarchy plus conflicting claims from sources and (optionally) workers.

    Parameters
    ----------
    hierarchy:
        The value hierarchy ``H``. Every claimed value must be a non-root node.
    records:
        Source claims. Duplicate ``(o, s)`` pairs keep the last value, matching
        the functional-predicate setting (one claim per source per object).
    answers:
        Optional initial worker answers.
    gold:
        Optional ground-truth mapping ``object -> value`` for evaluation.
    name:
        Human-readable dataset label.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        records: Iterable[Record],
        answers: Iterable[Answer] = (),
        gold: Optional[Mapping[ObjectId, Value]] = None,
        name: str = "",
    ) -> None:
        self.hierarchy = hierarchy
        self.name = name
        self.gold: Dict[ObjectId, Value] = dict(gold or {})

        self._records_by_object: Dict[ObjectId, Dict[SourceId, Value]] = {}
        self._answers_by_object: Dict[ObjectId, Dict[WorkerId, Value]] = {}
        self._objects_by_source: Dict[SourceId, List[ObjectId]] = {}
        self._objects_by_worker: Dict[WorkerId, List[ObjectId]] = {}
        self._contexts: Dict[ObjectId, ObjectContext] = {}
        self._columnar = None  # lazily built ColumnarClaims, see columnar()
        self._version = 0  # mutation counter stamped onto every encoding
        self._records_version = 0  # bumped by add_record only (slot layout)
        # Lineage identity: version counters only order THIS dataset's
        # history — sibling clones advance their own counters, so equal
        # numbers do not mean equal claims. Encodings are stamped with this
        # token; `_owns_encoding` is the cross-clone guard.
        self._lineage: object = object()
        self._carried: Optional[tuple] = None  # (token, version) from copy()
        # Append log for incremental encoding catch-up (ColumnarAppender).
        # ``None`` until the first encoding exists — before that there is
        # nothing to catch up, so bulk ingestion costs no log memory. Entry
        # i covers dataset version ``_oplog_base + i + 1``. Non-appendable
        # mutations (in-place claim overwrites) are not logged: they clear
        # the log and advance ``_oplog_base``, so windows reaching across
        # them are detected by the base check in ``_ops_since``.
        self._oplog: Optional[List[tuple]] = None
        self._oplog_base = 0

        for record in records:
            self.add_record(record)
        for answer in answers:
            self.add_answer(answer)

    @classmethod
    def from_trusted_claims(
        cls,
        hierarchy: Hierarchy,
        records: Iterable[Tuple[ObjectId, SourceId, Value]],
        answers: Iterable[Tuple[ObjectId, WorkerId, Value]] = (),
        gold: Optional[Mapping[ObjectId, Value]] = None,
        name: str = "",
    ) -> "TruthDiscoveryDataset":
        """Bulk-load claims that already passed this class's mutators once.

        The fast restore path for journal bases and snapshot dumps: the
        claims were dumped from a dataset that enforced every invariant
        (hierarchy membership, candidate-set answers) when they were first
        added, so re-validating each one here is pure overhead — restore
        cost should be bounded by data size with a small constant, which is
        what makes journal compaction actually bound recovery time. Claims
        are inserted straight into the indexes; version counters end up as
        if each claim had been appended fresh (callers restoring a journal
        base pin them to the journaled stamps afterwards).

        Only for claims that round-tripped through a trusted dump — feeding
        unchecked input here bypasses :class:`DatasetError` validation.
        ``records``/``answers`` are ``(object, claimant, value)`` triples,
        at most one per ``(object, claimant)`` pair (dumps satisfy this by
        construction: they iterate the claim dicts).
        """
        dataset = cls(hierarchy, (), (), gold=gold, name=name)
        n_records = 0
        for obj, source, value in records:
            dataset._records_by_object.setdefault(obj, {})[source] = value
            dataset._objects_by_source.setdefault(source, []).append(obj)
            n_records += 1
        n_answers = 0
        for obj, worker, value in answers:
            dataset._answers_by_object.setdefault(obj, {})[worker] = value
            dataset._objects_by_worker.setdefault(worker, []).append(obj)
            n_answers += 1
        dataset._records_version = n_records
        dataset._version = n_records + n_answers
        return dataset

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    #: Log-size cap: beyond this the oldest entries are dropped (encodings
    #: that fall behind the remaining window cold-rebuild instead).
    MAX_OPLOG = 65536

    def add_record(self, record: Record) -> None:
        """Add (or overwrite) a source claim."""
        self._check_value(record.value)
        claims = self._records_by_object.setdefault(record.object, {})
        if record.source not in claims:
            self._objects_by_source.setdefault(record.source, []).append(record.object)
            op = ("record", record.object, record.source, record.value)
        elif claims[record.source] == record.value:
            op = ("noop",)  # identical overwrite: the encoding is unchanged
        else:
            op = None  # in-place overwrite: not expressible as an append
        claims[record.source] = record.value
        if op is None or op[0] == "record":
            # Identical re-adds leave counts and slot layout untouched; not
            # bumping records_version keeps per-records state (contexts, EAI
            # likelihood tables) cached through them.
            self._contexts.pop(record.object, None)
            self._records_version += 1
        self._bump_version(op)

    def add_answer(self, answer: Answer) -> None:
        """Add (or overwrite) a worker answer.

        Workers answer by selecting among ``Vo`` (Section 2.1), so an answer
        with a value outside the candidate set raises :class:`DatasetError`.
        """
        self._check_value(answer.value)
        candidates = self.candidates(answer.object)
        if answer.value not in candidates:
            raise DatasetError(
                f"answer value {answer.value!r} is not a candidate of object"
                f" {answer.object!r}"
            )
        claims = self._answers_by_object.setdefault(answer.object, {})
        if answer.worker not in claims:
            self._objects_by_worker.setdefault(answer.worker, []).append(answer.object)
            op = ("answer", answer.object, answer.worker, answer.value)
        elif claims[answer.worker] == answer.value:
            op = ("noop",)
        else:
            op = None
        claims[answer.worker] = answer.value
        self._bump_version(op)

    def _bump_version(self, op: Optional[tuple]) -> None:
        """Bump the mutation counter and log the op for incremental catch-up.

        The version bump is what detects stale *held* encodings. The cached
        encoding object is deliberately **kept**: it is an immutable snapshot
        that :class:`~repro.data.columnar.ColumnarAppender` extends by the
        logged delta on the next :meth:`columnar` call, so crowdsourcing
        rounds amortise to O(new answers) instead of O(claims) rebuilds.
        """
        self._version += 1
        if self._oplog is None:
            return  # no encoding yet -> nothing to catch up, keep ingestion free
        if op is None:
            # In-place overwrite: no encoding can be extended across this
            # point, so free the cached snapshot eagerly (a mutate-heavy
            # overwrite loop must not pin the old arrays) and restart the
            # log window here.
            self._columnar = None
            self._oplog.clear()
            self._oplog_base = self._version
            return
        self._oplog.append(op)
        if len(self._oplog) > self.MAX_OPLOG:
            drop = len(self._oplog) - self.MAX_OPLOG
            del self._oplog[:drop]
            self._oplog_base += drop
            if self._columnar is not None and self._columnar.version < self._oplog_base:
                self._columnar = None  # can no longer catch up incrementally

    def _ops_since(self, version: int) -> Optional[List[tuple]]:
        """Appendable mutations covering ``(version, self._version]``.

        Returns ``None`` when the window is not servable — logging had not
        started by ``version``, or the window start was trimmed away (log
        cap, or a non-appendable overwrite resetting the log) — in which
        case callers must re-fetch a full encoding. No-op entries are
        filtered out of the returned list.
        """
        if self._oplog is None or version < self._oplog_base:
            return None
        ops = self._oplog[version - self._oplog_base:]
        return [op for op in ops if op[0] != "noop"]

    def dirty_objects_since(
        self, version: int
    ) -> Optional[Tuple[List[ObjectId], List[tuple]]]:
        """Objects touched by appendable mutations in ``(version, _version]``.

        The oplog -> dirty-object extraction behind the incremental EM fits:
        returns ``(objects, ops)`` with the touched objects in first-touch
        order and the raw appendable ops of the window, or ``None`` when the
        window is unservable (same rules as :meth:`_ops_since` — logging not
        started, an in-place overwrite poisoned the window, or the
        ``MAX_OPLOG`` cap trimmed past ``version``). Every returned op is a
        genuine append of a new ``(object, claimant)`` claim.
        """
        ops = self._ops_since(version)
        if ops is None:
            return None
        seen: Dict[ObjectId, None] = {}
        for op in ops:
            seen.setdefault(op[1], None)
        return list(seen), ops

    def _owns_encoding(self, col) -> bool:
        """Whether ``col`` is a snapshot of *this* dataset's history.

        True for encodings this dataset built (or extended), and for the
        carried-forward snapshot lineage of :meth:`copy` up to the version
        at which the copy was taken — beyond that the histories may have
        diverged even though the version counters keep coinciding.
        """
        token = getattr(col, "_lineage_token", None)
        if token is self._lineage:
            return True
        if self._carried is not None:
            carried_token, carried_version = self._carried
            return token is carried_token and col.version <= carried_version
        return False

    def _check_value(self, value: Value) -> None:
        if value == self.hierarchy.root:
            raise DatasetError("claims with the root value carry no information")
        if value not in self.hierarchy:
            raise DatasetError(f"claimed value {value!r} is not in the hierarchy")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The mutation counter: bumped by every effective claim mutation.

        This is the stamp carried by columnar encodings and published serving
        snapshots — comparing a held stamp against the live counter is the
        cheap dirty-set handoff (``dirty_objects_since`` names the objects a
        window of appends touched).
        """
        return self._version

    @property
    def records_version(self) -> int:
        """The record-mutation counter: bumped by ``add_record`` only.

        Answers never move candidate slots, so state keyed by this counter
        (warm starts, EAI likelihood tables) survives whole crowd rounds; see
        :func:`repro.inference.base.validate_warm_start`.
        """
        return self._records_version

    @property
    def objects(self) -> List[ObjectId]:
        """All objects with at least one record, in first-seen order."""
        return list(self._records_by_object)

    @property
    def sources(self) -> List[SourceId]:
        """All sources, in first-seen order."""
        return list(self._objects_by_source)

    @property
    def workers(self) -> List[WorkerId]:
        """All workers that answered at least once."""
        return list(self._objects_by_worker)

    @property
    def num_records(self) -> int:
        """Total number of source claims."""
        return sum(len(claims) for claims in self._records_by_object.values())

    @property
    def num_answers(self) -> int:
        """Total number of worker answers."""
        return sum(len(claims) for claims in self._answers_by_object.values())

    def records_for(self, obj: ObjectId) -> Dict[SourceId, Value]:
        """``source -> claimed value`` for ``obj`` (empty if unknown)."""
        return dict(self._records_by_object.get(obj, {}))

    def answers_for(self, obj: ObjectId) -> Dict[WorkerId, Value]:
        """``worker -> answered value`` for ``obj``."""
        return dict(self._answers_by_object.get(obj, {}))

    def sources_of(self, obj: ObjectId) -> List[SourceId]:
        """``So`` — the sources claiming about ``obj``."""
        return list(self._records_by_object.get(obj, {}))

    def workers_of(self, obj: ObjectId) -> List[WorkerId]:
        """``Wo`` — the workers that answered about ``obj``."""
        return list(self._answers_by_object.get(obj, {}))

    def objects_of_source(self, source: SourceId) -> List[ObjectId]:
        """``Os`` — objects claimed by ``source``."""
        return list(self._objects_by_source.get(source, ()))

    def objects_of_worker(self, worker: WorkerId) -> List[ObjectId]:
        """``Ow`` — objects answered by ``worker``."""
        return list(self._objects_by_worker.get(worker, ()))

    def candidates(self, obj: ObjectId) -> List[Value]:
        """``Vo`` — distinct source-claimed values, in first-claimed order."""
        return list(self.context(obj).values)

    def iter_records(self) -> Iterable[Record]:
        """Iterate over all records."""
        for obj, claims in self._records_by_object.items():
            for source, value in claims.items():
                yield Record(obj, source, value)

    def iter_answers(self) -> Iterable[Answer]:
        """Iterate over all answers."""
        for obj, claims in self._answers_by_object.items():
            for worker, value in claims.items():
                yield Answer(obj, worker, value)

    # ------------------------------------------------------------------
    # candidate structure
    # ------------------------------------------------------------------
    def context(self, obj: ObjectId) -> ObjectContext:
        """Cached candidate structure ``(Vo, Go, Do, o in OH)`` for ``obj``."""
        ctx = self._contexts.get(obj)
        if ctx is None:
            ctx = self._build_context(obj)
            self._contexts[obj] = ctx
        return ctx

    def _build_context(self, obj: ObjectId) -> ObjectContext:
        claims = self._records_by_object.get(obj)
        if not claims:
            raise DatasetError(f"object {obj!r} has no records")
        values: List[Value] = []
        index: Dict[Value, int] = {}
        for value in claims.values():
            if value not in index:
                index[value] = len(values)
                values.append(value)
        n = len(values)
        ancestor_sets: List[List[int]] = [[] for _ in range(n)]
        descendant_sets: List[List[int]] = [[] for _ in range(n)]
        hierarchy = self.hierarchy
        for i, value in enumerate(values):
            for ancestor in hierarchy.ancestors(value):
                j = index.get(ancestor)
                if j is not None:
                    ancestor_sets[i].append(j)
                    descendant_sets[j].append(i)
        has_hierarchy = any(ancestor_sets[i] for i in range(n))
        return ObjectContext(values, index, ancestor_sets, descendant_sets, has_hierarchy)

    def columnar(self):
        """The cached :class:`~repro.data.columnar.ColumnarClaims` encoding.

        Built on first use. Every encoding is stamped with the dataset's
        mutation counter; :meth:`add_record` / :meth:`add_answer` bump it, so
        an access after a mutation transparently catches up — *incrementally*
        when the mutations were appends (new claims, candidates, objects; see
        :class:`~repro.data.columnar.ColumnarAppender`), via a cold rebuild
        otherwise (in-place overwrites). Callers that hold the returned
        object across possible mutations can detect staleness with
        :meth:`~repro.data.columnar.ColumnarClaims.assert_fresh` (raises
        :class:`~repro.data.columnar.StaleEncodingError`).
        """
        from .columnar import ColumnarAppender, ColumnarClaims

        cached = self._columnar
        if cached is not None and cached.version != self._version:
            ops = self._ops_since(cached.version)
            cached = (
                ColumnarAppender.extend(cached, self, ops) if ops is not None else None
            )
        if cached is None:
            cached = ColumnarClaims(self)
        self._columnar = cached
        # The encoding is current: start/curtail the append log here. Held
        # external appenders older than this point fall back to a rebuild.
        if self._oplog:
            del self._oplog[: self._version - self._oplog_base]
        elif self._oplog is None:
            self._oplog = []
        self._oplog_base = self._version
        return cached

    @property
    def hierarchical_objects(self) -> List[ObjectId]:
        """``OH`` — objects with an ancestor-descendant pair among candidates."""
        return [obj for obj in self._records_by_object if self.context(obj).has_hierarchy]

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self, include_answers: bool = True) -> "TruthDiscoveryDataset":
        """Deep-enough copy sharing the (immutable-in-practice) hierarchy.

        Per-object contexts are carried over (they depend on records only,
        which are copied verbatim, and are never mutated once built). A fresh
        cached columnar encoding is carried too when the copy is
        claim-identical (``include_answers=True``): encodings are immutable
        snapshots, so sharing is safe — each side's later mutations extend
        its *own* cache pointer, never the shared arrays — and the clone
        starts a crowdsourcing run without paying a rebuild.
        """
        clone = TruthDiscoveryDataset(self.hierarchy, (), (), gold=self.gold, name=self.name)
        clone._records_by_object = {o: dict(c) for o, c in self._records_by_object.items()}
        clone._objects_by_source = {s: list(v) for s, v in self._objects_by_source.items()}
        clone._contexts = dict(self._contexts)
        if include_answers:
            clone._answers_by_object = {
                o: dict(c) for o, c in self._answers_by_object.items()
            }
            clone._objects_by_worker = {
                w: list(v) for w, v in self._objects_by_worker.items()
            }
            if self._columnar is not None and self._columnar.version == self._version:
                clone._columnar = self._columnar
                clone._version = self._version
                clone._records_version = self._records_version
                clone._oplog = []  # encoding exists: log appends from here on
                clone._oplog_base = clone._version
                # Accept the carried snapshot's lineage up to this version
                # (the carried encoding may itself have been carried, so
                # record its own token, not ours).
                clone._carried = (self._columnar._lineage_token, self._version)
        return clone

    def scaled(self, factor: int) -> "TruthDiscoveryDataset":
        """Duplicate objects ``factor`` times (paper Fig 13 scalability setup).

        Copy ``k`` of object ``o`` becomes ``(o, k)`` with the same claims and
        gold truth; sources are shared across copies, as when duplicating rows.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        clone = TruthDiscoveryDataset(
            self.hierarchy, (), (), name=f"{self.name}x{factor}"
        )
        for k in range(factor):
            for obj, claims in self._records_by_object.items():
                new_obj = obj if k == 0 else (obj, k)
                for source, value in claims.items():
                    clone.add_record(Record(new_obj, source, value))
                if obj in self.gold:
                    clone.gold[new_obj] = self.gold[obj]
        return clone

    def stats(self) -> Dict[str, float]:
        """Summary statistics (used by the experiment harness banner)."""
        n_obj = len(self._records_by_object)
        sizes = [len(self.context(o).values) for o in self._records_by_object]
        return {
            "objects": n_obj,
            "sources": len(self._objects_by_source),
            "workers": len(self._objects_by_worker),
            "records": self.num_records,
            "answers": self.num_answers,
            "hierarchy_nodes": len(self.hierarchy),
            "hierarchy_height": self.hierarchy.height,
            "mean_candidates": sum(sizes) / n_obj if n_obj else 0.0,
            "objects_in_OH": len(self.hierarchical_objects),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TruthDiscoveryDataset(name={self.name!r}, objects={len(self.objects)},"
            f" sources={len(self.sources)}, records={self.num_records},"
            f" answers={self.num_answers})"
        )

"""Columnar claim encoding: the array backbone of the vectorized fast paths.

The dict-based :class:`~repro.data.model.TruthDiscoveryDataset` is the
reference representation — easy to mutate, easy to read, and exactly the shape
the paper's per-object formulas are written in. But every EM round over it
costs one Python-level loop per claim per candidate, which dominates runtime
long before the datasets reach the paper's Fig-12/Fig-13 scales.

:class:`ColumnarClaims` integer-encodes the whole dataset once:

* **objects** ``o`` -> ``oid`` (dense, in first-seen order);
* **claimants** (sources and ``("worker", w)`` pairs) -> ``cid``;
* **candidate values**: each object's ``Vo`` occupies a contiguous run of
  global *slots*; ``value_offsets[oid]:value_offsets[oid+1]`` is the CSR
  slice of object ``oid``, so any per-candidate quantity lives in one flat
  ``(n_slots,)`` array;
* **claims** (records followed by answers, grouped by object) become four
  parallel arrays ``claim_obj / claim_claimant / claim_pos / claim_slot``
  with their own CSR ``claim_offsets`` per object (``claim_is_answer``
  distinguishes worker answers from source records).

On top of the encoding the class offers the segment primitives the vectorized
algorithms share — per-object normalize / argmax / log-softmax via
``np.add.reduceat`` and friends — plus two lazily built companions:

* :class:`PairExpansion`, the claim x candidate cross-join used by the
  confusion-matrix EM steps (Dawid-Skene, ZenCrowd, LFC) and by every
  algorithm whose E-step evaluates a likelihood row per claim (TDH, LCA,
  DOCS);
* :class:`ColumnarHierarchy`, the integer-encoded view of the value
  hierarchy: per-value and per-slot ancestor/descendant CSR index arrays,
  depths, Euler-tour intervals for O(1) vectorized ancestor tests, and the
  depth-1 "domain" ancestor used by DOCS. This is what lets the
  hierarchy-aware algorithms (TDH, ASUMS) run without touching the Python
  :class:`~repro.hierarchy.tree.Hierarchy` object inside EM loops.

The encoding is built once and cached on the dataset
(:meth:`TruthDiscoveryDataset.columnar`). Every encoding is stamped with the
dataset's mutation :attr:`version`; ``add_record`` / ``add_answer`` bump the
version, so a later ``dataset.columnar()`` call transparently rebuilds, and a
*held* stale encoding can be detected with :meth:`ColumnarClaims.assert_fresh`
(raises :class:`StaleEncodingError`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .model import ObjectId, TruthDiscoveryDataset

ClaimantKey = Hashable

#: Claims-table size above which ``use_columnar="auto"`` switches to the
#: vectorized path. Below it the dict loops win on constant factors and the
#: reference implementation stays exercised by the ordinary test suite.
AUTO_MIN_CLAIMS = 2048


class StaleEncodingError(RuntimeError):
    """A held :class:`ColumnarClaims` no longer matches its dataset.

    Raised by :meth:`ColumnarClaims.assert_fresh` when ``add_record`` /
    ``add_answer`` mutated the dataset after the encoding was built. Callers
    should drop the stale object and re-fetch ``dataset.columnar()`` (which
    rebuilds automatically).
    """


def resolve_engine(
    use_columnar: Union[bool, str], dataset: "TruthDiscoveryDataset"
) -> bool:
    """Decide whether to take the columnar fast path.

    ``use_columnar`` accepts ``True`` / ``False``, the strings ``"columnar"``
    / ``"reference"`` (the experiment CLI's ``--engine`` values), or
    ``"auto"`` — columnar once the claim table reaches
    :data:`AUTO_MIN_CLAIMS` rows.
    """
    if use_columnar is True or use_columnar == "columnar":
        return True
    if use_columnar is False or use_columnar == "reference":
        return False
    if use_columnar == "auto":
        return dataset.num_records + dataset.num_answers >= AUTO_MIN_CLAIMS
    raise ValueError(
        "use_columnar must be True, False, 'auto', 'columnar' or 'reference';"
        f" got {use_columnar!r}"
    )


def csr_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated index ranges ``starts[i] : starts[i] + counts[i]``.

    The gather pattern behind every CSR cross-join here (claim x candidate,
    claim x candidate-ancestor): ``out[k]`` walks each segment ``i`` in order,
    offset by that segment's start.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


class PairExpansion:
    """The claim x candidate cross-join used by confusion-matrix EM steps.

    Row ``p`` pairs claim ``pair_claim[p]`` with candidate slot
    ``pair_slot[p]`` of the claimed object, ordered by object, then claim,
    then candidate position — the exact iteration order of the reference
    loops, so ``np.bincount`` accumulates partial sums in the same sequence.

    ``cell_index`` / ``total_index`` give each row a dense id for its
    Dawid-Skene confusion cell ``(claimant, truth value, claimed value)`` and
    marginal ``(claimant, truth value)``; both are iteration-invariant, so the
    (relatively expensive) ``np.unique`` runs once per encoding.
    """

    def __init__(self, col: "ColumnarClaims") -> None:
        sizes_per_claim = col.sizes[col.claim_obj]
        self.pair_claim = np.repeat(
            np.arange(len(col.claim_obj), dtype=np.int64), sizes_per_claim
        )
        # pair_slot[p] = value_offsets[claim_obj[j]] + (rank of p within claim j)
        self.pair_slot = csr_expand(
            col.value_offsets[col.claim_obj], sizes_per_claim
        )
        #: ``|Vo|`` of the object behind each pair (Laplace denominators).
        self.pair_size = sizes_per_claim[self.pair_claim].astype(np.float64)
        #: True where the pair's candidate is the claimed value itself.
        self.pair_is_claimed = self.pair_slot == col.claim_slot[self.pair_claim]

        n_values = max(len(col.values), 1)
        claimant = col.claim_claimant[self.pair_claim].astype(np.int64)
        truth_vid = col.slot_vid[self.pair_slot].astype(np.int64)
        claimed_vid = col.claim_vid[self.pair_claim].astype(np.int64)
        total_key = claimant * n_values + truth_vid
        cell_key = total_key * n_values + claimed_vid
        cells, self.cell_index = np.unique(cell_key, return_inverse=True)
        totals, self.total_index = np.unique(total_key, return_inverse=True)
        self.n_cells = len(cells)
        self.n_totals = len(totals)


class ColumnarClaims:
    """Flat integer-array view of a :class:`TruthDiscoveryDataset`.

    Attributes
    ----------
    objects / claimants / values:
        Decoding tables: dense id -> original object id, claimant key
        (source, or ``("worker", w)``), hierarchy value.
    value_offsets:
        ``(n_objects + 1,)`` CSR offsets into the slot arrays; object ``oid``
        owns slots ``value_offsets[oid]:value_offsets[oid + 1]``, one per
        candidate in ``Vo`` order.
    slot_vid / slot_obj:
        Per-slot global value id and owning object id.
    claim_obj / claim_claimant / claim_pos / claim_slot:
        The claim table (records then answers, grouped by object).
        ``claim_pos`` is the candidate position within the object,
        ``claim_slot`` the global slot.
    claim_offsets:
        ``(n_objects + 1,)`` CSR offsets into the claim table per object.
    claim_is_answer:
        ``(n_claims,)`` bool — ``True`` for worker answers, ``False`` for
        source records (TDH learns separate trust priors per claim kind).
    claimant_is_worker:
        ``(n_claimants,)`` bool — ``True`` for ``("worker", w)`` claimants.
    version:
        The dataset's mutation counter at build time; see
        :meth:`assert_fresh`.
    """

    def __init__(self, dataset: "TruthDiscoveryDataset") -> None:
        self.objects: List["ObjectId"] = list(dataset.objects)
        self.object_index: Dict["ObjectId", int] = {
            obj: i for i, obj in enumerate(self.objects)
        }
        self.version = getattr(dataset, "_version", 0)

        claimant_index: Dict[ClaimantKey, int] = {}
        claimants: List[ClaimantKey] = []
        claimant_is_worker: List[bool] = []
        value_index: Dict[Hashable, int] = {}
        values: List[Hashable] = []

        value_offsets = [0]
        claim_offsets = [0]
        slot_vid: List[int] = []
        claim_obj: List[int] = []
        claim_claimant: List[int] = []
        claim_pos: List[int] = []
        claim_is_answer: List[bool] = []
        # Slot-level candidate-ancestor CSR (Go(v) within Vo, as global
        # slots), harvested from the per-object contexts while we are already
        # walking them; ColumnarHierarchy packages these.
        slot_anc_offsets = [0]
        slot_anc_slots: List[int] = []
        obj_has_hierarchy: List[bool] = []

        for oid, obj in enumerate(self.objects):
            ctx = dataset.context(obj)
            start = value_offsets[-1]
            for i, value in enumerate(ctx.values):
                vid = value_index.get(value)
                if vid is None:
                    vid = value_index[value] = len(values)
                    values.append(value)
                slot_vid.append(vid)
                slot_anc_slots.extend(start + j for j in ctx.ancestor_sets[i])
                slot_anc_offsets.append(len(slot_anc_slots))
            value_offsets.append(start + ctx.size)
            obj_has_hierarchy.append(ctx.has_hierarchy)

            # Records first, answers second — the claimant order every
            # reference ``_claims_of`` helper uses.
            for source, value in dataset.records_for(obj).items():
                cid = claimant_index.get(source)
                if cid is None:
                    cid = claimant_index[source] = len(claimants)
                    claimants.append(source)
                    claimant_is_worker.append(False)
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
                claim_is_answer.append(False)
            for worker, value in dataset.answers_for(obj).items():
                key: ClaimantKey = ("worker", worker)
                cid = claimant_index.get(key)
                if cid is None:
                    cid = claimant_index[key] = len(claimants)
                    claimants.append(key)
                    claimant_is_worker.append(True)
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
                claim_is_answer.append(True)
            claim_offsets.append(len(claim_obj))

        self.claimants = claimants
        self.claimant_index = claimant_index
        self.values = values
        self.value_index = value_index

        self.value_offsets = np.asarray(value_offsets, dtype=np.int64)
        self.claim_offsets = np.asarray(claim_offsets, dtype=np.int64)
        self.slot_vid = np.asarray(slot_vid, dtype=np.int64)
        self.claim_obj = np.asarray(claim_obj, dtype=np.int64)
        self.claim_claimant = np.asarray(claim_claimant, dtype=np.int64)
        self.claim_pos = np.asarray(claim_pos, dtype=np.int64)
        self.claim_is_answer = np.asarray(claim_is_answer, dtype=bool)
        self.claimant_is_worker = np.asarray(claimant_is_worker, dtype=bool)

        self.sizes = np.diff(self.value_offsets)
        self.slot_obj = np.repeat(
            np.arange(len(self.objects), dtype=np.int64), self.sizes
        )
        self.claim_slot = self.value_offsets[self.claim_obj] + self.claim_pos
        self.claim_vid = self.slot_vid[self.claim_slot]

        self._slot_anc_offsets = np.asarray(slot_anc_offsets, dtype=np.int64)
        self._slot_anc_slots = np.asarray(slot_anc_slots, dtype=np.int64)
        self._obj_has_hierarchy = np.asarray(obj_has_hierarchy, dtype=bool)
        self._tree = dataset.hierarchy
        self._pairs: Optional[PairExpansion] = None
        self._hierarchy: Optional["ColumnarHierarchy"] = None

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_claimants(self) -> int:
        return len(self.claimants)

    @property
    def n_slots(self) -> int:
        return int(self.value_offsets[-1])

    @property
    def n_claims(self) -> int:
        return len(self.claim_obj)

    @property
    def pairs(self) -> PairExpansion:
        """The claim x candidate expansion, built on first use and cached."""
        if self._pairs is None:
            self._pairs = PairExpansion(self)
        return self._pairs

    @property
    def hierarchy(self) -> "ColumnarHierarchy":
        """The integer-encoded hierarchy view, built on first use and cached."""
        if self._hierarchy is None:
            self._hierarchy = ColumnarHierarchy(self, self._tree)
        return self._hierarchy

    def assert_fresh(self, dataset: "TruthDiscoveryDataset") -> None:
        """Raise :class:`StaleEncodingError` if ``dataset`` mutated since build.

        ``dataset.columnar()`` always returns a fresh encoding; this guard is
        for callers that *hold* a :class:`ColumnarClaims` across code that may
        call ``add_record`` / ``add_answer`` (e.g. crowdsourcing rounds).
        """
        if getattr(dataset, "_version", 0) != self.version:
            raise StaleEncodingError(
                f"columnar encoding built at dataset version {self.version} but"
                f" the dataset is now at version {getattr(dataset, '_version', 0)};"
                " re-fetch dataset.columnar()"
            )

    # ------------------------------------------------------------------
    # segment primitives (one segment per object)
    # ------------------------------------------------------------------
    def segment_sum(self, flat: np.ndarray) -> np.ndarray:
        """Per-object sum of a ``(n_slots,)`` array -> ``(n_objects,)``."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=flat.dtype)
        return np.add.reduceat(flat, self.value_offsets[:-1])

    def segment_normalize(self, flat: np.ndarray) -> np.ndarray:
        """Normalize per object; all-zero (or negative-total) segments become
        uniform, matching the reference algorithms' fallback."""
        totals = self.segment_sum(flat)
        safe = np.where(totals > 0, totals, 1.0)
        out = flat / safe[self.slot_obj]
        bad = totals <= 0
        if np.any(bad):
            uniform = 1.0 / self.sizes.astype(np.float64)
            out = np.where(bad[self.slot_obj], uniform[self.slot_obj], out)
        return out

    def segment_argmax_slot(self, flat: np.ndarray) -> np.ndarray:
        """Per-object argmax -> global slot, first-max tie-break like
        ``np.argmax`` over each segment."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.int64)
        seg_max = np.maximum.reduceat(flat, self.value_offsets[:-1])
        slot_ids = np.arange(self.n_slots, dtype=np.int64)
        candidates = np.where(flat == seg_max[self.slot_obj], slot_ids, self.n_slots)
        return np.minimum.reduceat(candidates, self.value_offsets[:-1])

    def segment_softmax(self, log_flat: np.ndarray) -> np.ndarray:
        """Per-object ``exp(x - max) / sum`` over a log-score array."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.float64)
        seg_max = np.maximum.reduceat(log_flat, self.value_offsets[:-1])
        shifted = np.exp(log_flat - seg_max[self.slot_obj])
        totals = np.add.reduceat(shifted, self.value_offsets[:-1])
        return shifted / totals[self.slot_obj]

    # ------------------------------------------------------------------
    # claim aggregations
    # ------------------------------------------------------------------
    def vote_counts(self) -> np.ndarray:
        """Claims per slot (records + answers) -> ``(n_slots,)`` floats."""
        return np.bincount(self.claim_slot, minlength=self.n_slots).astype(np.float64)

    def record_counts(self) -> np.ndarray:
        """*Source* claims per slot (answers excluded) -> ``(n_slots,)`` floats.

        The flat counterpart of :func:`repro.inference.base.claim_counts`;
        TDH's popularity terms and DOCS's domain extraction are defined over
        source claims only.
        """
        return np.bincount(
            self.claim_slot[~self.claim_is_answer], minlength=self.n_slots
        ).astype(np.float64)

    def weighted_counts(self, claimant_weights: np.ndarray) -> np.ndarray:
        """Per-slot sum of claimant weights -> ``(n_slots,)``."""
        return np.bincount(
            self.claim_slot,
            weights=claimant_weights[self.claim_claimant],
            minlength=self.n_slots,
        )

    def claimant_counts(self) -> np.ndarray:
        """Claims per claimant -> ``(n_claimants,)`` ints."""
        return np.bincount(self.claim_claimant, minlength=self.n_claimants)

    def initial_confidences_flat(self) -> np.ndarray:
        """Vote-proportion EM initialisation, flat counterpart of
        :func:`repro.inference.base.initial_confidences`."""
        return self.segment_normalize(self.vote_counts())

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def to_confidences(self, flat: np.ndarray) -> Dict["ObjectId", np.ndarray]:
        """Split a ``(n_slots,)`` array back into the per-object dict shape
        that :class:`~repro.inference.base.InferenceResult` expects.

        The per-object arrays are views into ``flat`` (no copies); callers
        own ``flat`` by construction, so aliasing is safe.
        """
        return dict(zip(self.objects, np.split(flat, self.value_offsets[1:-1])))

    def claimant_mapping(self, values: np.ndarray) -> Dict[ClaimantKey, float]:
        """Zip a per-claimant array into a ``claimant -> value`` dict."""
        return {key: float(values[cid]) for cid, key in enumerate(self.claimants)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarClaims(objects={self.n_objects}, claimants={self.n_claimants},"
            f" slots={self.n_slots}, claims={self.n_claims})"
        )


class ColumnarHierarchy:
    """Integer-encoded view of the value hierarchy, keyed by the encoding's ids.

    Two granularities, both CSR:

    * **value level** (global, keyed by ``vid``): ``anc_offsets`` /
      ``anc_vids`` list each encoded value's proper non-root ancestors
      (nearest first) *that are themselves encoded values*;
      ``desc_offsets`` / ``desc_vids`` are the inverse (encoded proper
      descendants, no order guarantee). ``depth[vid]`` is the tree depth and
      ``top_code[vid]`` a dense id for the depth-1 ancestor (the value itself
      at depth 1) — DOCS's "domain".
    * **slot level** (per object, keyed by global slot): ``slot_anc_offsets``
      / ``slot_anc_slots`` encode ``Go(v)`` — the candidate ancestors of each
      slot's value *within the same object's* ``Vo`` — in the exact order of
      ``ObjectContext.ancestor_sets``; ``slot_desc_offsets`` /
      ``slot_desc_slots`` encode ``Do(v)``. ``slot_gsize`` is ``|Go(v)|``
      and ``obj_has_hierarchy`` flags the objects in ``OH``.

    For arbitrary vectorized ancestor tests the tree is additionally labelled
    with an Euler tour: ``tin[vid]`` / ``tout[vid]`` bound each value's
    subtree interval, so ``u`` is a proper ancestor of ``v`` iff
    ``tin[u] < tin[v] <= tout[u]`` (:meth:`is_ancestor_vid`). That turns the
    per-claim-per-candidate hierarchy checks of the TDH likelihood (Eq. 1/3)
    into three array comparisons.
    """

    def __init__(self, col: ColumnarClaims, tree) -> None:
        self.n_values = len(col.values)

        # --- Euler tour over the tree (iterative DFS, child order as built).
        tin: Dict[Hashable, int] = {}
        tout: Dict[Hashable, int] = {}
        clock = 0
        stack: List[tuple] = [(tree.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = clock
                continue
            clock += 1
            tin[node] = clock
            stack.append((node, True))
            for child in reversed(tree.children(node)):
                stack.append((child, False))

        self.depth = np.asarray(
            [tree.depth(value) for value in col.values], dtype=np.int64
        )
        self.tin = np.asarray([tin[value] for value in col.values], dtype=np.int64)
        self.tout = np.asarray([tout[value] for value in col.values], dtype=np.int64)

        # --- value-level ancestor CSR (encoded ancestors only, nearest first)
        # plus the depth-1 "domain" ancestor per value.
        anc_offsets = [0]
        anc_vids: List[int] = []
        top_values: List[Hashable] = []
        for value in col.values:
            chain = tree.ancestors(value)  # nearest first, root excluded
            anc_vids.extend(
                col.value_index[a] for a in chain if a in col.value_index
            )
            anc_offsets.append(len(anc_vids))
            top_values.append(chain[-1] if chain else value)
        self.anc_offsets = np.asarray(anc_offsets, dtype=np.int64)
        self.anc_vids = np.asarray(anc_vids, dtype=np.int64)

        top_index: Dict[Hashable, int] = {}
        top_code: List[int] = []
        for top in top_values:
            code = top_index.get(top)
            if code is None:
                code = top_index[top] = len(top_index)
            top_code.append(code)
        self.top_values = top_values
        self.domains: List[Hashable] = list(top_index)
        self.top_code = np.asarray(top_code, dtype=np.int64)

        # --- value-level descendant CSR: invert the ancestor pairs.
        owner = np.repeat(
            np.arange(self.n_values, dtype=np.int64), np.diff(self.anc_offsets)
        )
        order = np.argsort(self.anc_vids, kind="stable")
        self.desc_vids = owner[order]
        desc_counts = np.bincount(self.anc_vids, minlength=self.n_values)
        self.desc_offsets = np.concatenate(
            ([0], np.cumsum(desc_counts))
        ).astype(np.int64)

        # --- slot-level CSR, harvested by ColumnarClaims from the contexts.
        self.slot_anc_offsets = col._slot_anc_offsets
        self.slot_anc_slots = col._slot_anc_slots
        self.slot_gsize = np.diff(self.slot_anc_offsets)
        slot_owner = np.repeat(
            np.arange(col.n_slots, dtype=np.int64), self.slot_gsize
        )
        slot_order = np.argsort(self.slot_anc_slots, kind="stable")
        self.slot_desc_slots = slot_owner[slot_order]
        slot_desc_counts = np.bincount(self.slot_anc_slots, minlength=col.n_slots)
        self.slot_desc_offsets = np.concatenate(
            ([0], np.cumsum(slot_desc_counts))
        ).astype(np.int64)
        self.obj_has_hierarchy = col._obj_has_hierarchy
        self.slot_depth = self.depth[col.slot_vid]

    # ------------------------------------------------------------------
    def ancestors_of_vid(self, vid: int) -> np.ndarray:
        """Encoded ancestor vids of ``vid``, nearest first."""
        return self.anc_vids[self.anc_offsets[vid] : self.anc_offsets[vid + 1]]

    def descendants_of_vid(self, vid: int) -> np.ndarray:
        """Encoded proper-descendant vids of ``vid``."""
        return self.desc_vids[self.desc_offsets[vid] : self.desc_offsets[vid + 1]]

    def ancestors_of_slot(self, slot: int) -> np.ndarray:
        """``Go(v)`` of a slot as global slots of the same object."""
        return self.slot_anc_slots[
            self.slot_anc_offsets[slot] : self.slot_anc_offsets[slot + 1]
        ]

    def descendants_of_slot(self, slot: int) -> np.ndarray:
        """``Do(v)`` of a slot as global slots of the same object."""
        return self.slot_desc_slots[
            self.slot_desc_offsets[slot] : self.slot_desc_offsets[slot + 1]
        ]

    def is_ancestor_vid(self, u_vids: np.ndarray, v_vids: np.ndarray) -> np.ndarray:
        """Elementwise "``u`` is a proper non-root ancestor of ``v``" test."""
        return (self.tin[u_vids] < self.tin[v_vids]) & (
            self.tout[v_vids] <= self.tout[u_vids]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarHierarchy(values={self.n_values},"
            f" anc_pairs={len(self.anc_vids)},"
            f" slot_anc_pairs={len(self.slot_anc_slots)})"
        )

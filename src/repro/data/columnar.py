"""Columnar claim encoding: the array backbone of the vectorized fast paths.

The dict-based :class:`~repro.data.model.TruthDiscoveryDataset` is the
reference representation — easy to mutate, easy to read, and exactly the shape
the paper's per-object formulas are written in. But every EM round over it
costs one Python-level loop per claim per candidate, which dominates runtime
long before the datasets reach the paper's Fig-12/Fig-13 scales.

:class:`ColumnarClaims` integer-encodes the whole dataset once:

* **objects** ``o`` -> ``oid`` (dense, in first-seen order);
* **claimants** (sources and ``("worker", w)`` pairs) -> ``cid``;
* **candidate values**: each object's ``Vo`` occupies a contiguous run of
  global *slots*; ``value_offsets[oid]:value_offsets[oid+1]`` is the CSR
  slice of object ``oid``, so any per-candidate quantity lives in one flat
  ``(n_slots,)`` array;
* **claims** (records followed by answers, grouped by object) become four
  parallel arrays ``claim_obj / claim_claimant / claim_pos / claim_slot``
  with their own CSR ``claim_offsets`` per object.

On top of the encoding the class offers the segment primitives the vectorized
algorithms share — per-object normalize / argmax / log-softmax via
``np.add.reduceat`` and friends — plus a lazily built claim x candidate
:class:`PairExpansion` for the confusion-matrix EM steps (Dawid-Skene,
ZenCrowd), where each claim contributes one term per candidate of its object.

The encoding is built once and cached on the dataset
(:meth:`TruthDiscoveryDataset.columnar`); any mutation invalidates the cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .model import ObjectId, TruthDiscoveryDataset

ClaimantKey = Hashable

#: Claims-table size above which ``use_columnar="auto"`` switches to the
#: vectorized path. Below it the dict loops win on constant factors and the
#: reference implementation stays exercised by the ordinary test suite.
AUTO_MIN_CLAIMS = 2048


def resolve_engine(
    use_columnar: Union[bool, str], dataset: "TruthDiscoveryDataset"
) -> bool:
    """Decide whether to take the columnar fast path.

    ``use_columnar`` accepts ``True`` / ``False``, the strings ``"columnar"``
    / ``"reference"`` (the experiment CLI's ``--engine`` values), or
    ``"auto"`` — columnar once the claim table reaches
    :data:`AUTO_MIN_CLAIMS` rows.
    """
    if use_columnar is True or use_columnar == "columnar":
        return True
    if use_columnar is False or use_columnar == "reference":
        return False
    if use_columnar == "auto":
        return dataset.num_records + dataset.num_answers >= AUTO_MIN_CLAIMS
    raise ValueError(
        "use_columnar must be True, False, 'auto', 'columnar' or 'reference';"
        f" got {use_columnar!r}"
    )


class PairExpansion:
    """The claim x candidate cross-join used by confusion-matrix EM steps.

    Row ``p`` pairs claim ``pair_claim[p]`` with candidate slot
    ``pair_slot[p]`` of the claimed object, ordered by object, then claim,
    then candidate position — the exact iteration order of the reference
    loops, so ``np.bincount`` accumulates partial sums in the same sequence.

    ``cell_index`` / ``total_index`` give each row a dense id for its
    Dawid-Skene confusion cell ``(claimant, truth value, claimed value)`` and
    marginal ``(claimant, truth value)``; both are iteration-invariant, so the
    (relatively expensive) ``np.unique`` runs once per encoding.
    """

    def __init__(self, col: "ColumnarClaims") -> None:
        sizes_per_claim = col.sizes[col.claim_obj]
        n_pairs = int(sizes_per_claim.sum())
        self.pair_claim = np.repeat(
            np.arange(len(col.claim_obj), dtype=np.int64), sizes_per_claim
        )
        # pair_slot[p] = value_offsets[claim_obj[j]] + (rank of p within claim j)
        ends = np.cumsum(sizes_per_claim)
        within = np.arange(n_pairs, dtype=np.int64) - np.repeat(
            ends - sizes_per_claim, sizes_per_claim
        )
        self.pair_slot = (
            np.repeat(col.value_offsets[col.claim_obj], sizes_per_claim) + within
        )
        #: ``|Vo|`` of the object behind each pair (Laplace denominators).
        self.pair_size = sizes_per_claim[self.pair_claim].astype(np.float64)
        #: True where the pair's candidate is the claimed value itself.
        self.pair_is_claimed = self.pair_slot == col.claim_slot[self.pair_claim]

        n_values = max(len(col.values), 1)
        claimant = col.claim_claimant[self.pair_claim].astype(np.int64)
        truth_vid = col.slot_vid[self.pair_slot].astype(np.int64)
        claimed_vid = col.claim_vid[self.pair_claim].astype(np.int64)
        total_key = claimant * n_values + truth_vid
        cell_key = total_key * n_values + claimed_vid
        cells, self.cell_index = np.unique(cell_key, return_inverse=True)
        totals, self.total_index = np.unique(total_key, return_inverse=True)
        self.n_cells = len(cells)
        self.n_totals = len(totals)


class ColumnarClaims:
    """Flat integer-array view of a :class:`TruthDiscoveryDataset`.

    Attributes
    ----------
    objects / claimants / values:
        Decoding tables: dense id -> original object id, claimant key
        (source, or ``("worker", w)``), hierarchy value.
    value_offsets:
        ``(n_objects + 1,)`` CSR offsets into the slot arrays; object ``oid``
        owns slots ``value_offsets[oid]:value_offsets[oid + 1]``, one per
        candidate in ``Vo`` order.
    slot_vid / slot_obj:
        Per-slot global value id and owning object id.
    claim_obj / claim_claimant / claim_pos / claim_slot:
        The claim table (records then answers, grouped by object).
        ``claim_pos`` is the candidate position within the object,
        ``claim_slot`` the global slot.
    claim_offsets:
        ``(n_objects + 1,)`` CSR offsets into the claim table per object.
    """

    def __init__(self, dataset: "TruthDiscoveryDataset") -> None:
        self.objects: List["ObjectId"] = list(dataset.objects)
        self.object_index: Dict["ObjectId", int] = {
            obj: i for i, obj in enumerate(self.objects)
        }

        claimant_index: Dict[ClaimantKey, int] = {}
        claimants: List[ClaimantKey] = []
        value_index: Dict[Hashable, int] = {}
        values: List[Hashable] = []

        value_offsets = [0]
        claim_offsets = [0]
        slot_vid: List[int] = []
        claim_obj: List[int] = []
        claim_claimant: List[int] = []
        claim_pos: List[int] = []

        for oid, obj in enumerate(self.objects):
            ctx = dataset.context(obj)
            for value in ctx.values:
                vid = value_index.get(value)
                if vid is None:
                    vid = value_index[value] = len(values)
                    values.append(value)
                slot_vid.append(vid)
            value_offsets.append(value_offsets[-1] + ctx.size)

            # Records first, answers second — the claimant order every
            # reference ``_claims_of`` helper uses.
            for source, value in dataset.records_for(obj).items():
                cid = claimant_index.get(source)
                if cid is None:
                    cid = claimant_index[source] = len(claimants)
                    claimants.append(source)
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
            for worker, value in dataset.answers_for(obj).items():
                key: ClaimantKey = ("worker", worker)
                cid = claimant_index.get(key)
                if cid is None:
                    cid = claimant_index[key] = len(claimants)
                    claimants.append(key)
                claim_obj.append(oid)
                claim_claimant.append(cid)
                claim_pos.append(ctx.index[value])
            claim_offsets.append(len(claim_obj))

        self.claimants = claimants
        self.claimant_index = claimant_index
        self.values = values
        self.value_index = value_index

        self.value_offsets = np.asarray(value_offsets, dtype=np.int64)
        self.claim_offsets = np.asarray(claim_offsets, dtype=np.int64)
        self.slot_vid = np.asarray(slot_vid, dtype=np.int64)
        self.claim_obj = np.asarray(claim_obj, dtype=np.int64)
        self.claim_claimant = np.asarray(claim_claimant, dtype=np.int64)
        self.claim_pos = np.asarray(claim_pos, dtype=np.int64)

        self.sizes = np.diff(self.value_offsets)
        self.slot_obj = np.repeat(
            np.arange(len(self.objects), dtype=np.int64), self.sizes
        )
        self.claim_slot = self.value_offsets[self.claim_obj] + self.claim_pos
        self.claim_vid = self.slot_vid[self.claim_slot]
        self._pairs: Optional[PairExpansion] = None

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_claimants(self) -> int:
        return len(self.claimants)

    @property
    def n_slots(self) -> int:
        return int(self.value_offsets[-1])

    @property
    def n_claims(self) -> int:
        return len(self.claim_obj)

    @property
    def pairs(self) -> PairExpansion:
        """The claim x candidate expansion, built on first use and cached."""
        if self._pairs is None:
            self._pairs = PairExpansion(self)
        return self._pairs

    # ------------------------------------------------------------------
    # segment primitives (one segment per object)
    # ------------------------------------------------------------------
    def segment_sum(self, flat: np.ndarray) -> np.ndarray:
        """Per-object sum of a ``(n_slots,)`` array -> ``(n_objects,)``."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=flat.dtype)
        return np.add.reduceat(flat, self.value_offsets[:-1])

    def segment_normalize(self, flat: np.ndarray) -> np.ndarray:
        """Normalize per object; all-zero (or negative-total) segments become
        uniform, matching the reference algorithms' fallback."""
        totals = self.segment_sum(flat)
        safe = np.where(totals > 0, totals, 1.0)
        out = flat / safe[self.slot_obj]
        bad = totals <= 0
        if np.any(bad):
            uniform = 1.0 / self.sizes.astype(np.float64)
            out = np.where(bad[self.slot_obj], uniform[self.slot_obj], out)
        return out

    def segment_argmax_slot(self, flat: np.ndarray) -> np.ndarray:
        """Per-object argmax -> global slot, first-max tie-break like
        ``np.argmax`` over each segment."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.int64)
        seg_max = np.maximum.reduceat(flat, self.value_offsets[:-1])
        slot_ids = np.arange(self.n_slots, dtype=np.int64)
        candidates = np.where(flat == seg_max[self.slot_obj], slot_ids, self.n_slots)
        return np.minimum.reduceat(candidates, self.value_offsets[:-1])

    def segment_softmax(self, log_flat: np.ndarray) -> np.ndarray:
        """Per-object ``exp(x - max) / sum`` over a log-score array."""
        if self.n_objects == 0:
            return np.zeros(0, dtype=np.float64)
        seg_max = np.maximum.reduceat(log_flat, self.value_offsets[:-1])
        shifted = np.exp(log_flat - seg_max[self.slot_obj])
        totals = np.add.reduceat(shifted, self.value_offsets[:-1])
        return shifted / totals[self.slot_obj]

    # ------------------------------------------------------------------
    # claim aggregations
    # ------------------------------------------------------------------
    def vote_counts(self) -> np.ndarray:
        """Claims per slot (records + answers) -> ``(n_slots,)`` floats."""
        return np.bincount(self.claim_slot, minlength=self.n_slots).astype(np.float64)

    def weighted_counts(self, claimant_weights: np.ndarray) -> np.ndarray:
        """Per-slot sum of claimant weights -> ``(n_slots,)``."""
        return np.bincount(
            self.claim_slot,
            weights=claimant_weights[self.claim_claimant],
            minlength=self.n_slots,
        )

    def claimant_counts(self) -> np.ndarray:
        """Claims per claimant -> ``(n_claimants,)`` ints."""
        return np.bincount(self.claim_claimant, minlength=self.n_claimants)

    def initial_confidences_flat(self) -> np.ndarray:
        """Vote-proportion EM initialisation, flat counterpart of
        :func:`repro.inference.base.initial_confidences`."""
        return self.segment_normalize(self.vote_counts())

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def to_confidences(self, flat: np.ndarray) -> Dict["ObjectId", np.ndarray]:
        """Split a ``(n_slots,)`` array back into the per-object dict shape
        that :class:`~repro.inference.base.InferenceResult` expects.

        The per-object arrays are views into ``flat`` (no copies); callers
        own ``flat`` by construction, so aliasing is safe.
        """
        return dict(zip(self.objects, np.split(flat, self.value_offsets[1:-1])))

    def claimant_mapping(self, values: np.ndarray) -> Dict[ClaimantKey, float]:
        """Zip a per-claimant array into a ``claimant -> value`` dict."""
        return {key: float(values[cid]) for cid, key in enumerate(self.claimants)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarClaims(objects={self.n_objects}, claimants={self.n_claimants},"
            f" slots={self.n_slots}, claims={self.n_claims})"
        )
